#!/usr/bin/env python3
"""Technology-driven cost analysis (paper Sections 2 and 5).

Walks through the cost argument of the paper:

1. the electrical/optical cable cost lines and their crossover,
2. the packaging/floor-plan model,
3. the $/node comparison of dragonfly vs flattened butterfly vs folded
   Clos vs 3-D torus across machine sizes (Figure 19).

Run:  python examples/cost_analysis.py
"""

from repro.cost import (
    CostConfig,
    DragonflyCost,
    FloorPlan,
    PackagingConfig,
    cable_cost_per_gbps,
    cost_comparison,
    crossover_length_m,
    electrical_cost_per_gbps,
    optical_cost_per_gbps,
)


def show_cable_economics() -> None:
    print("1. Cable economics (Figure 2)")
    print(f"   electrical: $/Gb/s = 1.4*L + 2.16")
    print(f"   optical:    $/Gb/s = 0.364*L + 9.71")
    print(f"   lines cross at {crossover_length_m():.2f} m")
    for length in (1, 5, 10, 25, 50):
        print(
            f"   {length:3d} m: electrical ${electrical_cost_per_gbps(length):6.2f}  "
            f"optical ${optical_cost_per_gbps(length):6.2f}  "
            f"-> pay ${cable_cost_per_gbps(length):6.2f} per Gb/s"
        )
    print()


def show_packaging() -> None:
    print("2. Packaging (a 16K-node machine room)")
    packaging = PackagingConfig()
    plan = FloorPlan.for_terminals(16384, packaging)
    print(
        f"   {plan.num_cabinets} cabinets of {packaging.terminals_per_cabinet} "
        f"nodes on a {plan.rows}x{plan.columns} grid"
    )
    print(f"   longest cable run: {plan.max_cable_length():.1f} m")
    print(f"   average cabinet-pair run: {plan.average_pair_distance():.1f} m")
    print()


def show_dragonfly_anatomy() -> None:
    print("3. Where a 16K dragonfly's money goes")
    model = DragonflyCost(16384, CostConfig())
    breakdown = model.breakdown()
    print(f"   configuration: p={model.p}, a={model.a}, h={model.h}, g={model.g}")
    n = breakdown.num_terminals
    print(f"   routers:            ${breakdown.router_dollars / n:7.2f} /node")
    print(f"   backplane links:    ${breakdown.backplane_dollars / n:7.2f} /node")
    print(f"   electrical cables:  ${breakdown.electrical_cable_dollars / n:7.2f} /node")
    print(f"   optical cables:     ${breakdown.optical_cable_dollars / n:7.2f} /node")
    print(f"   total:              ${breakdown.dollars_per_node:7.2f} /node")
    print()


def show_figure19() -> None:
    print("4. Topology comparison (Figure 19), $/node")
    sizes = [512, 1024, 4096, 8192, 16384, 65536]
    results = cost_comparison(sizes)
    print(f"   {'N':>6} {'dragonfly':>10} {'flat.bfly':>10} {'clos':>10} {'torus':>10}")
    for i, n in enumerate(sizes):
        print(
            f"   {n:>6}"
            f" {results['dragonfly'][i].dollars_per_node:>10.1f}"
            f" {results['flattened_butterfly'][i].dollars_per_node:>10.1f}"
            f" {results['folded_clos'][i].dollars_per_node:>10.1f}"
            f" {results['torus_3d'][i].dollars_per_node:>10.1f}"
        )
    df = results["dragonfly"][-1].dollars_per_node
    fb = results["flattened_butterfly"][-1].dollars_per_node
    clos = results["folded_clos"][-1].dollars_per_node
    print()
    print(
        f"   at 64K nodes the dragonfly saves {1 - df / fb:.0%} vs the "
        f"flattened butterfly and {1 - df / clos:.0%} vs the folded Clos"
    )
    print("   (paper: ~20% and ~52%)")


def main() -> None:
    show_cable_economics()
    show_packaging()
    show_dragonfly_anatomy()
    show_figure19()


if __name__ == "__main__":
    main()
