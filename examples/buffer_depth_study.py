#!/usr/bin/env python3
"""Buffer depth, backpressure stiffness and credit round-trip sensing
(paper Figures 11, 14 and 16).

Demonstrates the indirect-congestion pathology: UGAL-L's minimally
routed packets must fill the buffers between source and congestion point
before the source router notices, so their latency scales with buffer
depth.  The paper's credit round-trip mechanism (UGAL-L_CR) delays
returned credits in proportion to measured congestion, giving the
"appearance of shallower buffers" without losing their capacity.

Run:  python examples/buffer_depth_study.py
"""

from repro import SimulationConfig, make_dragonfly, make_routing
from repro.network.sweep import run_point


def run(topology, routing, depth, load=0.3, warmup=1000):
    config = SimulationConfig(
        load=load,
        warmup_cycles=warmup if depth <= 64 else 5 * warmup,
        measure_cycles=1000,
        drain_max_cycles=20_000,
        vc_buffer_depth=depth,
    )
    return run_point(topology, make_routing(routing), "worst_case", config)


def main() -> None:
    topology = make_dragonfly(p=2, a=4, h=2)
    print("network:", topology.describe())
    print("worst-case traffic at offered load 0.3")
    print()

    print("1. UGAL-L: minimal-packet latency tracks buffer depth (Fig 11/14)")
    print(f"   {'depth':>6} {'avg':>9} {'minimal':>9} {'non-min':>9}")
    for depth in (4, 16, 64, 256):
        result = run(topology, "UGAL-L", depth)
        print(
            f"   {depth:>6} {result.avg_latency:>9.1f} "
            f"{result.avg_minimal_latency:>9.1f} "
            f"{result.avg_nonminimal_latency:>9.1f}"
        )
    print()

    print("2. UGAL-L_CR: credit round-trip sensing damps the effect (Fig 16)")
    print(f"   {'depth':>6} {'VCH avg':>9} {'CR avg':>9} {'reduction':>10}")
    for depth in (16, 64, 256):
        vch = run(topology, "UGAL-L_VCH", depth)
        cr = run(topology, "UGAL-L_CR", depth)
        reduction = 1 - cr.avg_latency / vch.avg_latency
        print(
            f"   {depth:>6} {vch.avg_latency:>9.1f} {cr.avg_latency:>9.1f} "
            f"{reduction:>10.0%}"
        )
    print()
    print("The paper reports a 35% reduction at 16-flit buffers and up to")
    print("20x at 256; the ideal UGAL-G sits near 5.5 cycles throughout.")


if __name__ == "__main__":
    main()
