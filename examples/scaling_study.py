#!/usr/bin/env python3
"""Scaling study: how far the dragonfly reaches (paper Figures 1 and 4).

Shows why high radix matters (the ~2*sqrt(N) port requirement of flat
one-hop networks), how the virtual-router trick sidesteps it, and what
the group variants of Figure 6 buy.

Run:  python examples/scaling_study.py
"""

from repro.core.params import DragonflyParams, required_radix_single_hop
from repro.core.scaling import dragonfly_scalability_curve
from repro.topology.group_variants import FlattenedButterflyGroupDragonfly


def show_flat_network_problem() -> None:
    print("1. The problem (Figure 1): a flat one-global-hop network needs")
    print("   k ~ 2*sqrt(N) router ports")
    for n in (1_000, 10_000, 100_000, 1_000_000):
        print(f"   N = {n:>9,d}  ->  radix {required_radix_single_hop(n):>5d}")
    print()


def show_dragonfly_answer() -> None:
    print("2. The answer (Figure 4): groups as virtual routers")
    print(f"   {'radix':>5} {'(p,a,h)':>12} {'groups':>7} {'N':>9} {'k_eff':>6}")
    for point in dragonfly_scalability_curve([7, 15, 31, 63]):
        params = point.params
        print(
            f"   {point.radix:>5} "
            f"{f'({params.p},{params.a},{params.h})':>12} "
            f"{params.g:>7} {params.num_terminals:>9,d} "
            f"{params.effective_radix:>6}"
        )
    print("   radix-64 routers reach >256K terminals at network diameter 3.")
    print()


def show_group_variants() -> None:
    print("3. Stretching a fixed k=7 router (Figure 6)")
    baseline = DragonflyParams.paper_example_72()
    print(
        f"   figure 5 (fully connected group):    a={baseline.a:<3d} "
        f"k'={baseline.effective_radix:<4d} N={baseline.num_terminals}"
    )
    cube = FlattenedButterflyGroupDragonfly(p=2, group_dims=(2, 2, 2), h=2)
    print(
        f"   figure 6b (2x2x2 cube group):        a={cube.a:<3d} "
        f"k'={cube.effective_radix:<4d} N={cube.num_terminals}"
    )
    print("   a 3-D flattened-butterfly group doubles the effective radix")
    print("   (16 -> 32) with the same radix-7 router, at the cost of up")
    print("   to three local hops inside a group.")
    print()


def show_non_maximal_sizing() -> None:
    print("4. Right-sizing: non-maximal dragonflies")
    full = DragonflyParams(p=4, a=8, h=4)
    partial = DragonflyParams(p=4, a=8, h=4, num_groups=17)
    print(f"   maximum size:  {full.describe()}")
    print(f"   half the groups: {partial.describe()}")
    print(
        f"   with {partial.g} groups every pair gets at least "
        f"{partial.min_channels_between_group_pairs()} parallel global "
        f"channels (vs 1 at maximum size)"
    )


def main() -> None:
    show_flat_network_problem()
    show_dragonfly_answer()
    show_group_variants()
    show_non_maximal_sizing()


if __name__ == "__main__":
    main()
