#!/usr/bin/env python3
"""Application-style workloads on the dragonfly (extension).

The paper motivates interconnects by application-level remote-memory
performance.  This example runs bulk-synchronous communication kernels
(halo exchange, transpose, reduction, adversarial neighbour exchange)
to completion under three routing algorithms and reports the metric
applications actually feel: phase completion time.

Run:  python examples/application_workloads.py
"""

from repro import make_dragonfly
from repro.network.workloads import run_workload, standard_workloads
from repro.viz import bar_chart


def main() -> None:
    topology = make_dragonfly(p=2, a=4, h=2)
    print("network:", topology.describe())
    print()

    algorithms = ("MIN", "UGAL-L", "UGAL-L_CR")
    workloads = standard_workloads(topology.num_terminals)

    print(f"{'workload':22s} " + " ".join(f"{name:>11s}" for name in algorithms))
    totals = {name: 0 for name in algorithms}
    for workload in workloads:
        cells = []
        for name in algorithms:
            result = run_workload(topology, name, workload)
            suffix = "" if result.completed else "*"
            totals[name] += result.total_cycles
            cells.append(f"{result.total_cycles:>10d}{suffix or ' '}")
        print(f"{workload.name:22s} " + " ".join(cells))
    print()

    print(bar_chart(
        {name: totals[name] for name in algorithms},
        title="aggregate completion time over all kernels (cycles, lower is better)",
        unit=" cycles",
    ))
    print()
    print("Adaptive routing pays a small price on benign kernels (extra")
    print("misroutes) and wins decisively on the adversarial exchange --")
    print("the application-level consequence of the paper's Figure 8/16.")


if __name__ == "__main__":
    main()
