#!/usr/bin/env python3
"""Topology variants of Section 3.2: group networks, slicing, tapering.

Shows three ways the dragonfly bends to packaging and bandwidth needs:

1. Figure 6(b): replace the complete intra-group graph with a 3-D
   flattened butterfly to *double* the effective radix of the same
   physical router -- then simulate it.
2. Channel slicing: parallel network copies multiply terminal bandwidth
   without raising router radix.
3. Bandwidth tapering: drop inter-group channels when uniform global
   bandwidth is not needed, trading bisection for cable cost.

Run:  python examples/topology_variants.py
"""

from repro import DragonflyParams, SimulationConfig, make_dragonfly
from repro.analysis.bisection import dragonfly_group_bisection
from repro.network import Simulator, make_pattern
from repro.routing import make_variant_routing
from repro.topology import (
    ChannelKind,
    ChannelSlicedDragonfly,
    FlattenedButterflyGroupDragonfly,
    tapered_dragonfly,
)


def show_cube_groups() -> None:
    print("1. Figure 6(b): cube groups on the same k=7 router")
    baseline = make_dragonfly(p=2, a=4, h=2)
    cube = FlattenedButterflyGroupDragonfly(p=2, group_dims=(2, 2, 2), h=2)
    print(f"   figure 5:  {baseline.describe()}")
    print(f"   figure 6b: {cube.describe()}")
    print("   simulating the cube variant under adversarial traffic:")
    config = SimulationConfig(
        load=0.1, warmup_cycles=600, measure_cycles=600, drain_max_cycles=10_000
    )
    for name in ("VAR-MIN", "VAR-VAL", "VAR-UGAL-L"):
        pattern = make_pattern("worst_case", cube, seed=3)
        result = Simulator(cube, make_variant_routing(name), pattern, config).run()
        status = "saturated" if result.saturated else f"{result.avg_latency:6.2f} cycles"
        print(f"     {name:11s} load 0.10 -> {status} (accepted {result.accepted_load:.3f})")
    print("   MIN's bound dropped to 1/(a*h) = 1/16 -- bigger groups widen")
    print("   the minimal bottleneck too; adaptive routing is still required.")
    print()


def show_channel_slicing() -> None:
    print("2. Channel slicing: parallel copies for terminal bandwidth")
    params = DragonflyParams(p=2, a=4, h=2)
    for slices in (1, 2, 4):
        sliced = ChannelSlicedDragonfly(params, num_slices=slices)
        print(
            f"   {slices} slice(s): {sliced.total_cables():4d} cables, "
            f"terminal bandwidth x{sliced.terminal_bandwidth_multiplier}"
        )
    print()


def show_tapering() -> None:
    print("3. Bandwidth tapering (non-maximal dragonfly, 5 of 9 groups)")
    params = DragonflyParams(p=2, a=4, h=2, num_groups=5)
    for cap in (2, 1):
        topology = tapered_dragonfly(params, max_channels_per_pair=cap)
        cables = topology.fabric.num_cables(ChannelKind.GLOBAL)
        bisection = dragonfly_group_bisection(topology)
        print(
            f"   <= {cap} channel(s)/pair: {cables:2d} global cables, "
            f"group bisection {bisection:2d} channels"
        )
    print("   halving per-pair channels halves global cable cost and")
    print("   bisection together -- spend exactly what the workload needs.")


def main() -> None:
    show_cube_groups()
    show_channel_slicing()
    show_tapering()


if __name__ == "__main__":
    main()
