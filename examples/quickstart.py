#!/usr/bin/env python3
"""Quickstart: build a dragonfly, route on it, and simulate traffic.

Builds the paper's Figure 5 example network (p = h = 2, a = 4: 72
terminals in 9 groups of 4 radix-7 routers), inspects its structure, and
runs the cycle-accurate simulator with adaptive routing under uniform
random traffic.

Run:  python examples/quickstart.py
"""

from repro import (
    DragonflyParams,
    SimulationConfig,
    make_dragonfly,
    make_routing,
)
from repro.network.sweep import run_point


def main() -> None:
    # 1. Describe and build the topology. ------------------------------
    params = DragonflyParams(p=2, a=4, h=2)  # the paper's Figure 5
    print("parameters:", params.describe())
    print("  balanced (a = 2p = 2h):", params.is_balanced)
    print("  router radix k:", params.radix)
    print("  virtual-router radix k':", params.effective_radix)

    topology = make_dragonfly(p=2, a=4, h=2)
    print("topology:  ", topology.describe())
    print("  router-graph diameter:", topology.fabric.router_diameter(), "hops")

    # 2. Configure the simulation methodology. -------------------------
    config = SimulationConfig(
        load=0.5,              # flits/terminal/cycle, Bernoulli injection
        warmup_cycles=1000,
        measure_cycles=1000,
        vc_buffer_depth=16,    # the paper's default input buffers
    )

    # 3. Simulate the routing algorithms of the paper. -----------------
    print()
    print(f"uniform random traffic at offered load {config.load}:")
    for name in ("MIN", "VAL", "UGAL-L", "UGAL-G", "UGAL-L_CR"):
        result = run_point(topology, make_routing(name), "uniform_random", config)
        print(
            f"  {name:10s} avg latency {result.avg_latency:7.2f} cycles, "
            f"accepted {result.accepted_load:.3f}, "
            f"{100 * result.minimal_fraction:5.1f}% routed minimally"
        )

    print()
    print("Key takeaway (paper Figure 8a): on benign traffic MIN and the")
    print("UGAL variants deliver full throughput; VAL wastes half the")
    print("capacity on its detour through a random intermediate group.")


if __name__ == "__main__":
    main()
