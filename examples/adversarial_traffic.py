#!/usr/bin/env python3
"""Adversarial traffic and indirect adaptive routing (paper Sections 4.2/4.3).

Reproduces the paper's central routing story on the worst-case pattern
(every node of group i sends to a random node of group i+1):

* MIN collapses to 1/(a*h) of capacity -- the whole group funnels over
  one global channel;
* VAL recovers ~50% by spreading over random intermediate groups;
* UGAL-L (realisable, local queues only) matches the throughput but
  pays a large latency penalty at intermediate load because congestion
  on a *remote* router's global channel is sensed only via backpressure;
* UGAL-L_CR (the paper's contribution) senses congestion through credit
  round-trip latency and approaches the ideal UGAL-G.

Run:  python examples/adversarial_traffic.py
"""

import math

from repro import SimulationConfig, make_dragonfly, make_routing
from repro.analysis.channel_load import (
    min_worst_case_throughput,
    valiant_worst_case_throughput,
)
from repro.network.sweep import run_point
from repro.viz import line_chart


def main() -> None:
    topology = make_dragonfly(p=2, a=4, h=2)
    params = topology.params
    print("network:", topology.describe())
    print(
        f"analytic bounds on worst-case traffic: "
        f"MIN <= {min_worst_case_throughput(params):.3f}, "
        f"VAL/ideal ~= {valiant_worst_case_throughput(params):.2f}"
    )
    print()

    algorithms = ("MIN", "VAL", "UGAL-L", "UGAL-G", "UGAL-L_VCH", "UGAL-L_CR")
    loads = (0.05, 0.1, 0.2, 0.3, 0.4, 0.45)

    header = f"{'load':>6} | " + " | ".join(f"{name:>10}" for name in algorithms)
    print("average latency (cycles) under worst-case traffic; '-' = saturated")
    print(header)
    print("-" * len(header))
    series = {name: [] for name in algorithms}
    for load in loads:
        config = SimulationConfig(
            load=load,
            warmup_cycles=1000,
            measure_cycles=1000,
            drain_max_cycles=15_000,
        )
        cells = []
        for name in algorithms:
            result = run_point(topology, make_routing(name), "worst_case", config)
            latency = math.inf if result.saturated else result.avg_latency
            series[name].append((load, latency))
            cells.append(f"{'-':>10}" if result.saturated else f"{latency:>10.2f}")
        print(f"{load:>6.2f} | " + " | ".join(cells))

    print()
    print(line_chart(
        {name: series[name] for name in ("UGAL-L", "UGAL-L_CR", "UGAL-G")},
        title="the paper's Figure 16(a) shape: intermediate-load latency",
        x_label="offered load",
        y_label="avg latency (cycles)",
        y_max=40,
    ))

    print()
    print("Reading the table (paper Figure 8b / 16a): MIN saturates at")
    print(f"1/(a*h) = {1 / (params.a * params.h):.3f}; UGAL-L sustains the load but its")
    print("latency at 0.2-0.4 is several times UGAL-G's; UGAL-L_CR closes")
    print("most of that gap with purely local information.")


if __name__ == "__main__":
    main()
