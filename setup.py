"""Shim for environments without the ``wheel`` package (legacy editable
installs via ``pip install -e . --no-use-pep517`` or ``setup.py develop``)."""

from setuptools import setup

setup()
