"""Cost experiment: Figure 19's $/node comparison across topologies."""

from __future__ import annotations

from typing import Sequence

from ..cost.model import CostConfig, cost_comparison
from .base import Experiment, ExperimentResult, register


@register
class Figure19CostComparison(Experiment):
    """Cost per node vs network size for the four topologies."""

    id = "fig19"
    title = "Network cost per node vs size (dragonfly / FB / Clos / torus)"
    paper_claim = (
        "dragonfly == flattened butterfly at <=1K, ~20% cheaper at large "
        "sizes, ~52% cheaper than folded Clos, ~50-62% cheaper than torus"
    )

    def sizes(self, quick: bool = True) -> Sequence[int]:
        if quick:
            return (512, 2048, 8192, 16384, 65536)
        return (512, 784, 1024, 2048, 4096, 8192, 12288, 16384, 20000, 32768, 65536)

    def run(self, quick: bool = True) -> ExperimentResult:
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=[
                "N",
                "dragonfly",
                "flattened_butterfly",
                "folded_clos",
                "torus_3d",
                "df_vs_fb",
                "df_vs_clos",
                "df_vs_torus",
            ],
        )
        sizes = self.sizes(quick)
        comparison = cost_comparison(sizes, CostConfig())
        for i, n in enumerate(sizes):
            dragonfly = comparison["dragonfly"][i].dollars_per_node
            butterfly = comparison["flattened_butterfly"][i].dollars_per_node
            clos = comparison["folded_clos"][i].dollars_per_node
            torus = comparison["torus_3d"][i].dollars_per_node
            result.rows.append(
                {
                    "N": n,
                    "dragonfly": dragonfly,
                    "flattened_butterfly": butterfly,
                    "folded_clos": clos,
                    "torus_3d": torus,
                    "df_vs_fb": 1 - dragonfly / butterfly,
                    "df_vs_clos": 1 - dragonfly / clos,
                    "df_vs_torus": 1 - dragonfly / torus,
                }
            )
        result.notes.append(
            "savings columns are (1 - dragonfly/other); positive means the "
            "dragonfly is cheaper"
        )
        result.notes.append(
            "N=784 sits exactly at the single-fully-connected-layer limit "
            "(49 radix-64 routers spanning two cabinets), a packing "
            "boundary where the direct networks pay maximal crossing-cable "
            "cost; one group/cabinet more (1024) restores the trend"
        )
        return result
