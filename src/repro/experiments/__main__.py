"""Command-line entry point for the experiment registry.

Usage::

    python -m repro.experiments                 # list experiments
    python -m repro.experiments fig09           # run one (quick mode)
    python -m repro.experiments fig19 --full    # paper-scale mode
    python -m repro.experiments --all           # run everything (slow)
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from . import all_experiment_ids, get_experiment
from ..network.backend import BACKEND_ENV_VAR, BACKENDS, resolve_backend
from .base import shared_experiment_executor


def _list_experiments() -> str:
    lines = ["available experiments:"]
    for experiment_id in all_experiment_ids():
        experiment = get_experiment(experiment_id)
        lines.append(f"  {experiment_id:15s} {experiment.title}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help="experiment ids (e.g. fig08 table2); empty lists them",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every registered experiment"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale mode (1056-node simulations; much slower)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help=(
            "simulation engine for every run (default: "
            f"{BACKEND_ENV_VAR} or scalar)"
        ),
    )
    args = parser.parse_args(argv)

    if args.backend is not None:
        # Exported rather than plumbed so sweep-executor workers inherit it.
        os.environ[BACKEND_ENV_VAR] = resolve_backend(args.backend)

    if args.all:
        selected = all_experiment_ids()
    elif args.experiments:
        selected = args.experiments
    else:
        print(_list_experiments())
        return 0

    exit_code = 0
    for experiment_id in selected:
        try:
            experiment = get_experiment(experiment_id)
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            exit_code = 2
            continue
        started = time.perf_counter()
        with shared_experiment_executor() as executor:
            result = experiment.run(quick=not args.full)
        elapsed = time.perf_counter() - started
        print(result.format_table())
        answered = executor.stats["cached"] + executor.stats["simulated"]
        if answered:
            print(f"   sweep: {executor.summary_line()}")
        print(f"   ({elapsed:.1f} s)")
        print()
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
