"""Extension experiments beyond the paper's figures.

These exercise capabilities the paper mentions but does not evaluate:

* ``ext_power`` -- the closing claim of Section 5 that the dragonfly's
  cost reduction "also translates to reduction of power";
* ``ext_fb_routing`` -- the comparison topology *simulated* (DOR /
  Valiant / UGAL-L on a flattened butterfly), showing that adaptive
  routing with local information is unproblematic when the congested
  channel sits on the source router -- the contrast that motivates the
  paper's indirect-adaptive-routing mechanisms;
* ``ext_tapering`` -- bandwidth tapering (Section 3.2): global cable
  count and cost as inter-group bandwidth is reduced.
"""

from __future__ import annotations

import math
from typing import Dict

from ..cost.model import CostConfig
from ..cost.power import power_comparison
from ..core.params import DragonflyParams
from ..network.config import SimulationConfig
from ..network.backend import make_simulator
from ..network.traffic import make_pattern
from ..routing.fb_routing import make_fb_routing
from ..topology.base import ChannelKind
from ..topology.dragonfly import Dragonfly
from ..topology.flattened_butterfly import FlattenedButterfly
from .base import Experiment, ExperimentResult, experiment_executor, register


@register
class PowerComparison(Experiment):
    """W/node across topologies, using Table 1 energy-per-bit figures."""

    id = "ext_power"
    title = "Network power per node vs size (extension)"
    paper_claim = (
        "Section 5 (closing): the dragonfly's network cost reduction "
        "also translates to a power reduction"
    )

    def run(self, quick: bool = True) -> ExperimentResult:
        sizes = (512, 4096, 16384, 65536) if quick else (
            512, 1024, 2048, 4096, 8192, 16384, 32768, 65536
        )
        comparison = power_comparison(sizes)
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=[
                "N",
                "dragonfly_w",
                "flattened_butterfly_w",
                "folded_clos_w",
                "torus_3d_w",
                "df_vs_clos",
                "df_vs_torus",
            ],
        )
        for i, n in enumerate(sizes):
            dragonfly = comparison["dragonfly"][i].watts_per_node
            butterfly = comparison["flattened_butterfly"][i].watts_per_node
            clos = comparison["folded_clos"][i].watts_per_node
            torus = comparison["torus_3d"][i].watts_per_node
            result.rows.append(
                {
                    "N": n,
                    "dragonfly_w": dragonfly,
                    "flattened_butterfly_w": butterfly,
                    "folded_clos_w": clos,
                    "torus_3d_w": torus,
                    "df_vs_clos": 1 - dragonfly / clos,
                    "df_vs_torus": 1 - dragonfly / torus,
                }
            )
        return result


@register
class FlattenedButterflyRouting(Experiment):
    """MIN/VAL/UGAL-L simulated on the flattened butterfly."""

    id = "ext_fb_routing"
    title = "Routing on the flattened butterfly (extension)"
    paper_claim = (
        "implied contrast to Section 4.3: on the FB the congested "
        "channel is local to the source router, so UGAL with local "
        "queues adapts without the dragonfly's indirect-information "
        "pathologies"
    )

    def run(self, quick: bool = True) -> ExperimentResult:
        dims = (4, 4) if quick else (8, 8)
        topology = FlattenedButterfly(dims=dims, concentration=dims[0])
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=["pattern", "load", "FB-MIN", "FB-VAL", "FB-UGAL-L"],
        )
        windows = dict(
            warmup_cycles=800 if quick else 1500,
            measure_cycles=800 if quick else 1500,
            drain_max_cycles=12_000,
        )
        for pattern_name, loads in (
            ("uniform_random", (0.2, 0.5, 0.8)),
            ("fb_adversarial", (0.1, 0.2, 0.35, 0.45)),
        ):
            for load in loads:
                row: Dict[str, object] = {"pattern": pattern_name, "load": load}
                for name in ("FB-MIN", "FB-VAL", "FB-UGAL-L"):
                    config = SimulationConfig(load=load, **windows)
                    pattern = make_pattern(pattern_name, topology, seed=31)
                    run = make_simulator(
                        topology, make_fb_routing(name), pattern, config
                    ).run()
                    row[name] = math.inf if run.saturated else run.avg_latency
                result.rows.append(row)
        result.notes.append(
            f"FB dims {dims}, concentration {dims[0]}; DOR adversarial "
            f"bound: 1/c = {1 / dims[0]:.3f}"
        )
        return result


@register
class BandwidthTapering(Experiment):
    """Global cable count and cost under bandwidth tapering."""

    id = "ext_tapering"
    title = "Bandwidth tapering of inter-group channels (extension)"
    paper_claim = (
        "Section 3.2: if uniform inter-group bandwidth is not needed, "
        "removing inter-group channels reduces (global cable) cost"
    )

    def run(self, quick: bool = True) -> ExperimentResult:
        params = DragonflyParams(p=2, a=4, h=2, num_groups=5)
        full_share = (params.a * params.h) // (params.g - 1)
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=[
                "channels_per_pair",
                "global_cables",
                "bisection_channels",
                "relative_global_cost",
            ],
        )
        baseline_cables = None
        for cap in range(full_share, 0, -1):
            topology = Dragonfly(params, max_channels_per_pair=cap)
            cables = topology.fabric.num_cables(ChannelKind.GLOBAL)
            if baseline_cables is None:
                baseline_cables = cables
            from ..analysis.bisection import dragonfly_group_bisection

            result.rows.append(
                {
                    "channels_per_pair": cap,
                    "global_cables": cables,
                    "bisection_channels": dragonfly_group_bisection(topology),
                    "relative_global_cost": cables / baseline_cables,
                }
            )
        return result


@register
class GroupVariantComparison(Experiment):
    """Figure 6(b) simulated: the cube-group dragonfly vs Figure 5."""

    id = "ext_group_variants"
    title = "Group variants simulated (Figure 6b vs Figure 5)"
    paper_claim = (
        "Section 3.2: a higher-dimensional intra-group network raises "
        "k' (16 -> 32 on the same k=7 router) and with it the scale and "
        "the MIN worst-case bound moves from 1/8 to 1/16"
    )

    def run(self, quick: bool = True) -> ExperimentResult:
        from ..routing.ugal import make_routing
        from ..routing.variant_routing import make_variant_routing
        from ..topology.group_variants import FlattenedButterflyGroupDragonfly

        canonical = Dragonfly(DragonflyParams.paper_example_72())
        cube = FlattenedButterflyGroupDragonfly(p=2, group_dims=(2, 2, 2), h=2)
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=[
                "topology", "k", "k_eff", "N", "groups",
                "min_wc_accepted", "ugal_wc_latency",
            ],
        )
        windows = dict(
            warmup_cycles=400 if quick else 1000,
            measure_cycles=400 if quick else 1000,
        )

        def simulate(topology, routing, load, drain):
            config = SimulationConfig(
                load=load, drain_max_cycles=drain, **windows
            )
            pattern = make_pattern("worst_case", topology, seed=21)
            return make_simulator(topology, routing, pattern, config).run()

        min_run = simulate(canonical, make_routing("MIN"), 0.3, 800)
        ugal_run = simulate(canonical, make_routing("UGAL-L"), 0.1, 8000)
        result.rows.append(
            {
                "topology": "figure5_complete_group",
                "k": canonical.params.radix,
                "k_eff": canonical.params.effective_radix,
                "N": canonical.num_terminals,
                "groups": canonical.g,
                "min_wc_accepted": min_run.accepted_load,
                "ugal_wc_latency": ugal_run.avg_latency,
            }
        )
        min_run = simulate(cube, make_variant_routing("VAR-MIN"), 0.2, 800)
        ugal_run = simulate(cube, make_variant_routing("VAR-UGAL-L"), 0.1, 8000)
        result.rows.append(
            {
                "topology": "figure6b_cube_group",
                "k": cube.radix,
                "k_eff": cube.effective_radix,
                "N": cube.num_terminals,
                "groups": cube.g,
                "min_wc_accepted": min_run.accepted_load,
                "ugal_wc_latency": ugal_run.avg_latency,
            }
        )
        result.notes.append(
            "min_wc_accepted should approach 1/(a*h): 0.125 for figure 5, "
            "0.0625 for the cube variant"
        )
        return result


@register
class CostSensitivity(Experiment):
    """Robustness of the Figure 19 conclusions to cost calibration."""

    id = "ext_cost_sensitivity"
    title = "Cost-model sensitivity analysis (extension)"
    paper_claim = (
        "implied by Section 5: the topology ranking is technology-driven "
        "structure, not calibration -- it must survive variation of the "
        "crossover length, cabinet pitch and router price"
    )

    def run(self, quick: bool = True) -> ExperimentResult:
        import dataclasses

        from ..cost.model import cost_comparison
        from ..cost.packaging import PackagingConfig

        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=["scenario", "df_vs_fb_64k", "df_vs_clos_16k", "df_vs_torus_16k"],
        )
        base = CostConfig()
        scenarios = {
            "baseline": base,
            "crossover_5m": dataclasses.replace(base, crossover_m=5.0),
            "crossover_12m": dataclasses.replace(base, crossover_m=12.0),
            "router_2x": dataclasses.replace(
                base, router_cost_per_gbps=2 * base.router_cost_per_gbps
            ),
            "router_half": dataclasses.replace(
                base, router_cost_per_gbps=base.router_cost_per_gbps / 2
            ),
            "pitch_2x": dataclasses.replace(
                base,
                packaging=PackagingConfig(
                    cabinet_pitch_m=2 * base.packaging.cabinet_pitch_m
                ),
            ),
        }
        sizes = (16384, 65536)
        for name, config in scenarios.items():
            comparison = cost_comparison(sizes, config)
            df16 = comparison["dragonfly"][0].dollars_per_node
            df64 = comparison["dragonfly"][1].dollars_per_node
            fb64 = comparison["flattened_butterfly"][1].dollars_per_node
            clos16 = comparison["folded_clos"][0].dollars_per_node
            torus16 = comparison["torus_3d"][0].dollars_per_node
            result.rows.append(
                {
                    "scenario": name,
                    "df_vs_fb_64k": 1 - df64 / fb64,
                    "df_vs_clos_16k": 1 - df16 / clos16,
                    "df_vs_torus_16k": 1 - df16 / torus16,
                }
            )
        return result


@register
class FourTopologySimulation(Experiment):
    """All four Figure 19 topologies driven by the same simulator."""

    id = "ext_four_topologies"
    title = "Four topologies simulated under benign and adversarial load"
    paper_claim = (
        "substrate completeness: the dragonfly's comparisons rest on how "
        "each topology routes -- here every one of them runs through the "
        "same cycle-accurate engine"
    )

    def run(self, quick: bool = True) -> ExperimentResult:
        from ..routing.clos_routing import make_clos_routing
        from ..routing.torus_routing import make_torus_routing
        from ..routing.ugal import make_routing
        from ..topology.folded_clos import FoldedClos
        from ..topology.torus import Torus

        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=[
                "topology", "routing", "pattern", "load",
                "latency", "accepted",
            ],
        )
        windows = dict(
            warmup_cycles=500 if quick else 1200,
            measure_cycles=500 if quick else 1200,
            drain_max_cycles=10_000,
        )
        dragonfly = Dragonfly(DragonflyParams.paper_example_72())
        butterfly = FlattenedButterfly(dims=(4, 4), concentration=4)
        clos = FoldedClos(num_terminals=64, radix=8)
        # Concentration 2 keeps the small torus balanced (a dimension-4
        # ring sustains c*m/8 = 1.0 of injection bandwidth per channel).
        torus = Torus(dims=(4, 4), concentration=2)
        cases = [
            ("dragonfly", dragonfly, make_routing("UGAL-L_CR"),
             [("uniform_random", 0.5), ("worst_case", 0.3)], 3),
            ("flattened_butterfly", butterfly, make_fb_routing("FB-UGAL-L"),
             [("uniform_random", 0.5), ("fb_adversarial", 0.3)], 3),
            ("folded_clos", clos, make_clos_routing("CLOS-RAND"),
             [("uniform_random", 0.5), ("shift", 0.3)], 3),
            ("torus_3d", torus, make_torus_routing("TORUS-VAL"),
             [("uniform_random", 0.3), ("torus_tornado", 0.3)], 4),
        ]
        for name, topology, routing, patterns, vcs in cases:
            for pattern_name, load in patterns:
                config = SimulationConfig(load=load, num_vcs=vcs, **windows)
                pattern = make_pattern(pattern_name, topology, seed=41)
                run = make_simulator(topology, routing, pattern, config).run()
                result.rows.append(
                    {
                        "topology": name,
                        "routing": routing.name,
                        "pattern": pattern_name,
                        "load": load,
                        "latency": math.inf if run.saturated else run.avg_latency,
                        "accepted": run.accepted_load,
                    }
                )
        return result


@register
class SaturationTable(Experiment):
    """Measured saturation throughput vs the analytic bounds."""

    id = "ext_saturation_table"
    title = "Saturation throughput: measured vs closed-form bounds"
    paper_claim = (
        "Section 4.2's numbers: MIN caps at 1/(a*h) on WC, VAL at ~50% "
        "everywhere, the UGAL family approaches 50% on WC and full "
        "capacity on UR"
    )

    def run(self, quick: bool = True) -> ExperimentResult:
        from ..analysis.channel_load import (
            min_worst_case_throughput,
            ugal_ideal_worst_case_throughput,
            valiant_uniform_throughput,
            valiant_worst_case_throughput,
        )
        from ..network.sweep import saturation_load
        from ..network.config import SimulationConfig as Config

        topology = Dragonfly(DragonflyParams.paper_example_72())
        config = Config(
            load=0.1,
            warmup_cycles=400 if quick else 1000,
            measure_cycles=400 if quick else 1000,
            drain_max_cycles=4000 if quick else 10_000,
        )
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=["routing", "pattern", "measured", "analytic_bound"],
        )
        params = topology.params
        cases = [
            ("MIN", "worst_case", min_worst_case_throughput(params), 60.0),
            ("VAL", "uniform_random", valiant_uniform_throughput(params), 60.0),
            ("VAL", "worst_case", valiant_worst_case_throughput(params), 60.0),
            ("UGAL-G", "worst_case",
             ugal_ideal_worst_case_throughput(params), 60.0),
            ("UGAL-L_VCH", "worst_case",
             ugal_ideal_worst_case_throughput(params), 120.0),
        ]
        executor = experiment_executor()
        for routing_name, pattern_name, bound, latency_limit in cases:
            measured = saturation_load(
                topology, routing_name, pattern_name, config,
                low=0.02, high=0.6 if pattern_name == "worst_case" else 1.0,
                tolerance=0.03, latency_limit=latency_limit,
                executor=executor,
            )
            result.rows.append(
                {
                    "routing": routing_name,
                    "pattern": pattern_name,
                    "measured": measured,
                    "analytic_bound": bound,
                }
            )
        return result
