"""Experiment registry: every table and figure of the paper.

>>> from repro.experiments import get_experiment, all_experiment_ids
>>> all_experiment_ids()
['fig01', 'fig02', 'fig04', 'fig08', ...]
>>> print(get_experiment("fig02").run().format_table())
"""

from . import (  # noqa: F401  (register)
    analytic,
    cost_experiments,
    extensions,
    fault_sweep,
    routing_sim,
)
from .base import (
    REGISTRY,
    Experiment,
    ExperimentResult,
    all_experiment_ids,
    experiment_config,
    experiment_topology,
    get_experiment,
)

__all__ = [
    "REGISTRY",
    "Experiment",
    "ExperimentResult",
    "all_experiment_ids",
    "experiment_config",
    "experiment_topology",
    "get_experiment",
]
