"""Analytic (non-simulation) experiments: Figures 1, 2, 4, 18, Tables 1/2."""

from __future__ import annotations

from ..analysis.comparison import figure18_comparison
from ..analysis.diameter import table2
from ..core.scaling import dragonfly_scalability_curve, radix_requirement_curve
from ..cost.cables import (
    TABLE_1,
    cable_cost_per_gbps,
    crossover_length_m,
    electrical_cost_per_gbps,
    optical_cost_per_gbps,
)
from .base import Experiment, ExperimentResult, register


@register
class Figure1RadixRequirement(Experiment):
    """Radix needed for a one-global-hop flat network vs N (~2 sqrt(N))."""

    id = "fig01"
    title = "Router radix required for single-global-hop networks"
    paper_claim = "radix grows as ~2*sqrt(N); >1000 ports needed near 1M nodes"

    def run(self, quick: bool = True) -> ExperimentResult:
        sizes = [100, 1_000, 10_000, 100_000, 1_000_000]
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=["N", "required_radix", "two_sqrt_N"],
        )
        for point in radix_requirement_curve(sizes):
            result.rows.append(
                {
                    "N": point.num_terminals,
                    "required_radix": point.required_radix,
                    "two_sqrt_N": round(2 * point.num_terminals**0.5),
                }
            )
        return result


@register
class Table1CableTechnology(Experiment):
    """The cable-technology comparison table."""

    id = "table1"
    title = "Cable technology characteristics"
    paper_claim = "active optical cables reach 100-300m at 20-42 Gb/s"

    def run(self, quick: bool = True) -> ExperimentResult:
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=["cable", "distance_m", "rate_gbps", "power_w", "energy_pj_per_bit"],
        )
        for tech in TABLE_1:
            result.rows.append(
                {
                    "cable": tech.name,
                    "distance_m": tech.max_length_m,
                    "rate_gbps": tech.data_rate_gbps,
                    "power_w": tech.power_w,
                    "energy_pj_per_bit": tech.energy_per_bit_pj,
                }
            )
        return result


@register
class Figure2CableCost(Experiment):
    """Cable cost vs length with the electrical/optical crossover."""

    id = "fig02"
    title = "Cable cost ($/Gb/s) vs length"
    paper_claim = "optical has higher fixed cost, lower slope; crossover ~10m"

    def run(self, quick: bool = True) -> ExperimentResult:
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=["length_m", "electrical", "optical", "chosen"],
        )
        for length in (0, 2, 5, 8, 10, 20, 40, 60, 80, 100):
            result.rows.append(
                {
                    "length_m": length,
                    "electrical": electrical_cost_per_gbps(length),
                    "optical": optical_cost_per_gbps(length),
                    "chosen": cable_cost_per_gbps(length),
                }
            )
        result.notes.append(
            f"cost-line crossover at {crossover_length_m():.2f} m "
            "(paper quotes ~10 m and switches technologies at 8 m)"
        )
        return result


@register
class Figure4Scalability(Experiment):
    """Balanced dragonfly size vs router radix."""

    id = "fig04"
    title = "Dragonfly scalability vs router radix"
    paper_claim = "radix-64 routers scale beyond 256K nodes at diameter three"

    def run(self, quick: bool = True) -> ExperimentResult:
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=["radix", "p", "a", "h", "groups", "N"],
        )
        for point in dragonfly_scalability_curve([7, 15, 23, 31, 43, 63, 64]):
            params = point.params
            result.rows.append(
                {
                    "radix": point.radix,
                    "p": params.p,
                    "a": params.a,
                    "h": params.h,
                    "groups": params.g,
                    "N": params.num_terminals,
                }
            )
        return result


@register
class Table2TopologyComparison(Experiment):
    """Diameter and cable-length expressions, dragonfly vs FB."""

    id = "table2"
    title = "Dragonfly vs flattened butterfly: hops and cable lengths"
    paper_claim = (
        "dragonfly trades one global hop (vs two) and half the global "
        "cables for longer average cables (2E/3 vs E/3)"
    )

    def run(self, quick: bool = True) -> ExperimentResult:
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=[
                "topology",
                "minimal_diameter",
                "nonminimal_diameter",
                "avg_cable",
                "max_cable",
            ],
        )
        for row in table2():
            result.rows.append(
                {
                    "topology": row.topology,
                    "minimal_diameter": str(row.minimal_diameter),
                    "nonminimal_diameter": str(row.nonminimal_diameter),
                    "avg_cable": f"{row.avg_cable_fraction:.3f}*E",
                    "max_cable": f"{row.max_cable_fraction:.3f}*E",
                }
            )
        return result


@register
class Figure18Structure(Experiment):
    """64K-node structural comparison: global cable and port counts."""

    id = "fig18"
    title = "64K-node dragonfly vs flattened butterfly structure"
    paper_claim = (
        "same bisection, but the dragonfly needs ~half the global cables "
        "and spends half the port fraction on global channels"
    )

    def run(self, quick: bool = True) -> ExperimentResult:
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=[
                "topology",
                "routers",
                "radix",
                "global_ports",
                "global_port_frac",
                "global_cables",
                "cables_per_node",
            ],
        )
        summaries = figure18_comparison()
        for summary in summaries:
            result.rows.append(
                {
                    "topology": summary.topology,
                    "routers": summary.num_routers,
                    "radix": summary.router_radix,
                    "global_ports": summary.global_ports_per_router,
                    "global_port_frac": summary.global_port_fraction,
                    "global_cables": summary.num_global_cables,
                    "cables_per_node": summary.global_cables_per_node,
                }
            )
        fb, df = summaries
        result.notes.append(
            f"dragonfly global cables / FB global cables = "
            f"{df.num_global_cables / fb.num_global_cables:.3f}"
        )
        return result
