"""Simulation experiments: the routing figures (8, 9, 10, 11, 12, 14, 16).

Each experiment sweeps offered load (or buffer depth) on a dragonfly and
reports the paper's series.  Latency entries are ``inf`` when a run
failed to drain its tagged packets (operating beyond saturation).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..network.config import SimulationConfig

from ..network.parallel import PointSpec, SweepExecutor
from ..network.stats import SimulationResult
from ..topology.dragonfly import Dragonfly
from .base import (
    Experiment,
    ExperimentResult,
    experiment_config,
    experiment_executor,
    experiment_topology,
    register,
    uniform_loads,
    worst_case_loads,
)


def _latency(result: SimulationResult) -> float:
    return math.inf if result.saturated else result.avg_latency


def _sweep_rows(
    topology: Dragonfly,
    routing_names: Sequence[str],
    pattern: str,
    loads: Sequence[float],
    quick: bool,
    vc_buffer_depth: int = 16,
    executor: Optional[SweepExecutor] = None,
) -> List[Dict[str, object]]:
    """One row per load, one column pair per routing algorithm.

    The whole (load x routing) grid is fanned out through the executor
    in a single batch, so every point of a figure runs concurrently when
    workers are available and hits the result cache on re-runs.
    """
    executor = executor or experiment_executor()
    specs = [
        PointSpec(
            name,
            pattern,
            experiment_config(quick, load=load, vc_buffer_depth=vc_buffer_depth),
        )
        for load in loads
        for name in routing_names
    ]
    results = iter(executor.run_points(topology, specs))
    rows: List[Dict[str, object]] = []
    for load in loads:
        row: Dict[str, object] = {"load": load}
        for name in routing_names:
            result = next(results)
            row[name] = _latency(result)
            row[f"{name}:accepted"] = result.accepted_load
        rows.append(row)
    return rows


@register
class Figure8RoutingComparison(Experiment):
    """Latency vs load for MIN/VAL/UGAL-L/UGAL-G on UR and WC traffic."""

    id = "fig08"
    title = "Routing algorithm comparison (UR and WC traffic)"
    paper_claim = (
        "UR: MIN ~= UGAL ~= capacity, VAL ~= half capacity; "
        "WC: MIN caps at 1/(ah), VAL/UGAL-G ~= 50%, UGAL-L degraded latency"
    )

    routing_names = ["MIN", "VAL", "UGAL-L", "UGAL-G"]

    def run(self, quick: bool = True) -> ExperimentResult:
        topology = experiment_topology(quick)
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=["pattern", "load"] + self.routing_names,
        )
        for pattern, loads in (
            ("uniform_random", uniform_loads(quick)),
            ("worst_case", worst_case_loads(quick)),
        ):
            for row in _sweep_rows(topology, self.routing_names, pattern, loads, quick):
                out = {"pattern": pattern, "load": row["load"]}
                out.update({name: row[name] for name in self.routing_names})
                result.rows.append(out)
        min_wc_bound = 1.0 / (topology.a * topology.h)
        result.notes.append(
            f"analytic MIN worst-case bound: 1/(a*h) = {min_wc_bound:.3f}"
        )
        return result


@register
class Figure9ChannelUtilization(Experiment):
    """Global channel utilisation under WC at load 0.2: UGAL-L starves
    the non-minimal channels sharing the minimal channel's router."""

    id = "fig09"
    title = "Global channel utilisation (WC traffic, load 0.2)"
    paper_claim = (
        "UGAL-G balances all non-minimal channels; UGAL-L underutilises "
        "the non-minimal channels on the minimal channel's router"
    )

    def run(self, quick: bool = True) -> ExperimentResult:
        topology = experiment_topology(quick)
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=[
                "routing",
                "minimal_channel",
                "same_router_nonminimal",
                "other_nonminimal",
            ],
        )
        # Classify the global channels leaving group 0 (the WC pattern
        # sends group 0's traffic to group 1).
        min_link = topology.group_links(0, 1)[0]
        all_links = [
            link
            for group in range(1, topology.g)
            for link in topology.group_links(0, group)
        ]
        same_router = [
            link
            for link in all_links
            if link.src_router == min_link.src_router and link != min_link
        ]
        others = [
            link for link in all_links if link.src_router != min_link.src_router
        ]
        executor = experiment_executor()
        for name in ("UGAL-L", "UGAL-G"):
            config = experiment_config(quick, load=0.2)
            run = executor.run_point(topology, name, "worst_case", config)
            util = run.global_channel_utilization()

            def channel_util(link) -> float:
                channel = topology.fabric.out_channel(link.src_router, link.src_port)
                assert channel is not None
                return util.get(channel.index, 0.0)

            result.rows.append(
                {
                    "routing": name,
                    "minimal_channel": channel_util(min_link),
                    "same_router_nonminimal": (
                        sum(channel_util(link) for link in same_router)
                        / max(1, len(same_router))
                    ),
                    "other_nonminimal": (
                        sum(channel_util(link) for link in others)
                        / max(1, len(others))
                    ),
                }
            )
        return result


@register
class Figure10VcDiscrimination(Experiment):
    """UGAL-L_VC vs UGAL-L_VCH vs UGAL-L/UGAL-G on UR and WC."""

    id = "fig10"
    title = "VC-discriminated UGAL variants (UR and WC traffic)"
    paper_claim = (
        "UGAL-L_VC matches UGAL-G on WC but loses ~30% UR throughput; "
        "the hybrid UGAL-L_VCH matches UGAL-G throughput on both"
    )

    routing_names = ["UGAL-L", "UGAL-L_VC", "UGAL-L_VCH", "UGAL-G"]

    def run(self, quick: bool = True) -> ExperimentResult:
        topology = experiment_topology(quick)
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=["pattern", "load"]
            + self.routing_names
            + [f"{name}:accepted" for name in self.routing_names],
        )
        for pattern, loads in (
            ("uniform_random", uniform_loads(quick)),
            ("worst_case", worst_case_loads(quick)),
        ):
            for row in _sweep_rows(topology, self.routing_names, pattern, loads, quick):
                out: Dict[str, object] = {"pattern": pattern, "load": row["load"]}
                for name in self.routing_names:
                    out[name] = row[name]
                    out[f"{name}:accepted"] = row[f"{name}:accepted"]
                result.rows.append(out)
        return result


@register
class Figure11MinimalPacketLatency(Experiment):
    """Minimal vs non-minimal packet latency under UGAL-L as buffers grow."""

    id = "fig11"
    title = "UGAL-L per-class latency vs buffer depth (WC traffic)"
    paper_claim = (
        "minimally-routed packets see latency proportional to buffer "
        "depth; non-minimal packets track UGAL-G"
    )

    def run(self, quick: bool = True) -> ExperimentResult:
        topology = experiment_topology(quick)
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=["buffer_depth", "load", "minimal", "nonminimal", "average"],
        )
        loads = (0.1, 0.2, 0.3, 0.4) if quick else (0.1, 0.2, 0.3, 0.4, 0.5)
        executor = experiment_executor()
        grid: List[Tuple[int, float, SimulationConfig]] = []
        for depth in (16, 256):
            for load in loads:
                config = experiment_config(quick, load=load, vc_buffer_depth=depth)
                if depth >= 256:
                    # Deep buffers need a longer warm-up to fill.
                    config = dataclasses.replace(
                        config, warmup_cycles=config.warmup_cycles * 5
                    )
                grid.append((depth, load, config))
        runs = executor.run_points(
            topology,
            [PointSpec("UGAL-L", "worst_case", config) for _, _, config in grid],
        )
        for (depth, load, _), run in zip(grid, runs):
            result.rows.append(
                {
                    "buffer_depth": depth,
                    "load": load,
                    "minimal": math.inf if run.saturated else run.avg_minimal_latency,
                    "nonminimal": (
                        math.inf if run.saturated else run.avg_nonminimal_latency
                    ),
                    "average": _latency(run),
                }
            )
        return result


@register
class Figure12LatencyHistogram(Experiment):
    """Bimodal latency distribution of UGAL-L at load 0.25."""

    id = "fig12"
    title = "UGAL-L latency histogram (WC traffic, load 0.25)"
    paper_claim = (
        "two distributions: many low-latency non-minimal packets, a tail "
        "of high-latency minimal packets whose latency scales with buffers"
    )

    def run(self, quick: bool = True) -> ExperimentResult:
        topology = experiment_topology(quick)
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=[
                "buffer_depth", "avg_latency", "bin_start", "fraction",
                "minimal_fraction_in_bin",
            ],
        )
        executor = experiment_executor()
        for depth in (16, 256):
            config = experiment_config(quick, load=0.25, vc_buffer_depth=depth)
            if depth >= 256:
                config = dataclasses.replace(
                    config, warmup_cycles=config.warmup_cycles * 5
                )
            run = executor.run_point(topology, "UGAL-L", "worst_case", config)
            bin_width = 5 if depth == 16 else 25
            total_histogram = dict(run.latency_histogram(bin_width=bin_width))
            minimal_histogram = dict(
                run.latency_histogram(bin_width=bin_width, minimal_only=True)
            )
            for bin_start, fraction in sorted(total_histogram.items()):
                minimal_fraction = minimal_histogram.get(bin_start, 0.0)
                result.rows.append(
                    {
                        "buffer_depth": depth,
                        "avg_latency": run.avg_latency,
                        "bin_start": bin_start,
                        "fraction": fraction,
                        "minimal_fraction_in_bin": (
                            minimal_fraction / fraction if fraction else 0.0
                        ),
                    }
                )
        return result


@register
class Figure14BufferDepth(Experiment):
    """UGAL-L intermediate latency vs buffer depth."""

    id = "fig14"
    title = "UGAL-L latency vs load for buffer depths 4..64 (WC traffic)"
    paper_claim = (
        "shallower buffers give stiffer backpressure and lower "
        "intermediate latency, at some cost in throughput"
    )

    def run(self, quick: bool = True) -> ExperimentResult:
        topology = experiment_topology(quick)
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=["buffer_depth", "load", "latency"],
        )
        loads = (0.1, 0.2, 0.3, 0.4) if quick else (0.1, 0.2, 0.3, 0.4, 0.5)
        executor = experiment_executor()
        grid = [
            (depth, load)
            for depth in (4, 8, 16, 32, 64)
            for load in loads
        ]
        runs = executor.run_points(
            topology,
            [
                PointSpec(
                    "UGAL-L",
                    "worst_case",
                    experiment_config(quick, load=load, vc_buffer_depth=depth),
                )
                for depth, load in grid
            ],
        )
        for (depth, load), run in zip(grid, runs):
            result.rows.append(
                {"buffer_depth": depth, "load": load, "latency": _latency(run)}
            )
        return result


@register
class Figure16CreditRoundTrip(Experiment):
    """UGAL-L_CR vs UGAL-L_VCH vs UGAL-G, WC and UR, buffers 16 and 256."""

    id = "fig16"
    title = "Credit round-trip latency routing (UGAL-L_CR)"
    paper_claim = (
        "UGAL-L_CR approaches UGAL-G latency, cuts UGAL-L intermediate "
        "latency (35% at 16-flit buffers, ~20x at 256), and is far less "
        "sensitive to buffer depth"
    )

    routing_names = ["UGAL-L_VCH", "UGAL-L_CR", "UGAL-G"]

    def run(self, quick: bool = True) -> ExperimentResult:
        topology = experiment_topology(quick)
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=["pattern", "buffer_depth", "load"] + self.routing_names,
        )
        executor = experiment_executor()
        grid: List[Tuple[str, int, float]] = []
        specs: List[PointSpec] = []
        for pattern in ("worst_case", "uniform_random"):
            loads = (
                worst_case_loads(quick)
                if pattern == "worst_case"
                else uniform_loads(quick)
            )
            for depth in (16, 256):
                for load in loads:
                    grid.append((pattern, depth, load))
                    for name in self.routing_names:
                        config = experiment_config(
                            quick, load=load, vc_buffer_depth=depth
                        )
                        if depth >= 256:
                            config = dataclasses.replace(
                                config, warmup_cycles=config.warmup_cycles * 5
                            )
                        specs.append(PointSpec(name, pattern, config))
        runs = iter(executor.run_points(topology, specs))
        for pattern, depth, load in grid:
            row: Dict[str, object] = {
                "pattern": pattern,
                "buffer_depth": depth,
                "load": load,
            }
            for name in self.routing_names:
                row[name] = _latency(next(runs))
            result.rows.append(row)
        return result
