"""Experiment registry: one entry per table/figure of the paper.

Every experiment knows the figure it reproduces, the paper's qualitative
claim, and how to regenerate the figure's rows/series.  ``quick`` mode
runs the simulation experiments on the 72-node dragonfly of Figure 5
(``p = h = 2, a = 4``); full mode uses the paper's 1056-node default
(``p = h = 4, a = 8``).  The phenomena under study are structural, so the
trends match at both sizes (the paper itself notes "simulations of other
size networks follow the same trend").
"""

from __future__ import annotations

import abc
import contextlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from ..core.params import DragonflyParams
from ..network.config import SimulationConfig
from ..network.parallel import SweepExecutor
from ..topology.dragonfly import Dragonfly


@dataclass
class ExperimentResult:
    """Rows of a regenerated table/figure plus context for the report."""

    experiment_id: str
    title: str
    paper_claim: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def format_table(self) -> str:
        """Render rows as an aligned text table."""
        widths = {
            column: max(
                len(column),
                *(len(_fmt(row.get(column))) for row in self.rows),
            )
            if self.rows
            else len(column)
            for column in self.columns
        }
        lines = [
            f"== {self.experiment_id}: {self.title}",
            f"   paper: {self.paper_claim}",
            "  ".join(column.ljust(widths[column]) for column in self.columns),
        ]
        for row in self.rows:
            lines.append(
                "  ".join(
                    _fmt(row.get(column)).ljust(widths[column])
                    for column in self.columns
                )
            )
        lines.extend(f"   note: {note}" for note in self.notes)
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


class Experiment(abc.ABC):
    """One reproducible table/figure."""

    #: Identifier like ``"fig08a"`` or ``"table2"``.
    id: str = ""
    #: One-line description of what the paper shows.
    title: str = ""
    #: The qualitative claim being reproduced.
    paper_claim: str = ""

    @abc.abstractmethod
    def run(self, quick: bool = True) -> ExperimentResult:
        """Regenerate the figure's rows (quick = small network)."""


REGISTRY: Dict[str, Callable[[], Experiment]] = {}


def register(factory: Callable[[], Experiment]) -> Callable[[], Experiment]:
    """Class decorator registering an experiment by its ``id``."""
    instance = factory()
    if not instance.id:
        raise ValueError(f"experiment {factory!r} has no id")
    if instance.id in REGISTRY:
        raise ValueError(f"duplicate experiment id {instance.id}")
    REGISTRY[instance.id] = factory
    return factory


def get_experiment(experiment_id: str) -> Experiment:
    if experiment_id not in REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(REGISTRY)}"
        )
    return REGISTRY[experiment_id]()


def all_experiment_ids() -> List[str]:
    return sorted(REGISTRY)


# ----------------------------------------------------------------------
# Shared simulation settings
# ----------------------------------------------------------------------
def experiment_topology(quick: bool = True) -> Dragonfly:
    """The dragonfly the simulation experiments run on."""
    params = (
        DragonflyParams.paper_example_72() if quick else DragonflyParams.paper_1k()
    )
    return Dragonfly(params)


def experiment_config(
    quick: bool = True,
    load: float = 0.1,
    vc_buffer_depth: int = 16,
) -> SimulationConfig:
    """Simulation methodology knobs scaled to the run size."""
    if quick:
        return SimulationConfig(
            load=load,
            warmup_cycles=1000,
            measure_cycles=1000,
            drain_max_cycles=15_000,
            vc_buffer_depth=vc_buffer_depth,
        )
    return SimulationConfig(
        load=load,
        warmup_cycles=3000,
        measure_cycles=2000,
        drain_max_cycles=40_000,
        vc_buffer_depth=vc_buffer_depth,
    )


#: Executor shared across one CLI invocation (see
#: :func:`shared_experiment_executor`); ``None`` outside the context.
_SHARED_EXECUTOR: Optional[SweepExecutor] = None


def _executor_from_env() -> SweepExecutor:
    # Imported lazily: the service layer depends on repro.network and on
    # this module's config/topology helpers.
    from ..service.client import executor_from_env

    service = executor_from_env()
    if service is not None:
        return service
    return SweepExecutor.from_env()


def experiment_executor() -> SweepExecutor:
    """The sweep executor the experiment runners use.

    Configured entirely from the environment so figure scripts and
    benchmarks gain parallelism (``REPRO_SWEEP_WORKERS``), on-disk
    result caching (``REPRO_SWEEP_CACHE``), or the full sweep service
    (``REPRO_SWEEP_SERVICE``: journaled, resumable, store-backed sweeps
    -- :class:`repro.service.client.ServiceExecutor`) without code
    changes; the default is serial and uncached, matching the
    historical behaviour point for point.

    Inside a :func:`shared_experiment_executor` context every call
    returns the same instance, so a whole figure run accumulates one
    set of cache/simulation counters for the summary line.
    """
    if _SHARED_EXECUTOR is not None:
        return _SHARED_EXECUTOR
    return _executor_from_env()


@contextlib.contextmanager
def shared_experiment_executor() -> Iterator[SweepExecutor]:
    """Scope within which :func:`experiment_executor` is a singleton.

    The CLI wraps each experiment run in this context and reports
    ``executor.summary_line()`` -- points cached vs simulated, cache
    hit/miss/invalidation counters, and any serial-fallback diagnostic
    -- after the figure's table.
    """
    global _SHARED_EXECUTOR
    executor = _executor_from_env()
    _SHARED_EXECUTOR = executor
    try:
        yield executor
    finally:
        _SHARED_EXECUTOR = None


def uniform_loads(quick: bool = True) -> Sequence[float]:
    if quick:
        return (0.1, 0.3, 0.5, 0.7, 0.8, 0.9)
    return (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def worst_case_loads(quick: bool = True) -> Sequence[float]:
    if quick:
        return (0.05, 0.1, 0.2, 0.3, 0.4, 0.45)
    return (0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45)
