"""Fault sweep: saturated throughput as global cables die (extension).

The paper argues (Section 2) that a dragonfly stays connected and
routable when global cables fail because minimal routes can detour
through a third group.  This extension experiment quantifies the cost:
it degrades the quick 72-terminal dragonfly by severing 0..3 disjoint
group pairs (:func:`repro.topology.faults.canonical_global_faults`),
recompiles the forwarding tables around the damage
(:class:`repro.routing.tables.DegradedTableRouting`), and bisects for
the saturated throughput of uniform random traffic on each degraded
fabric.

Every severed pair forces its traffic onto third-group detours that
consume two global channels instead of one, so saturated throughput
decays gracefully -- it must not fall off a cliff, and the fabric must
stay deadlock-free (the ``faults`` pass of ``repro.check`` proves the
detour route classes acyclic for exactly these degradations).
"""

from __future__ import annotations

import dataclasses

from ..network.sweep import saturation_load
from ..topology.faults import canonical_global_faults
from .base import (
    Experiment,
    ExperimentResult,
    experiment_config,
    experiment_executor,
    experiment_topology,
    register,
)


@register
class FaultSweepSaturation(Experiment):
    """Saturated UR throughput vs number of severed group pairs."""

    id = "ext_fault_sweep"
    title = "Saturated throughput vs dead global cables (extension)"
    paper_claim = (
        "global-cable faults are survivable: minimal traffic detours "
        "through a third group at a graceful bandwidth cost, without "
        "deadlock"
    )

    #: One routing per degradation level; ``TBL-MIN/gcK`` severs K
    #: disjoint group pairs before compiling its tables.
    routing_names = ("TBL-MIN", "TBL-MIN/gc1", "TBL-MIN/gc2", "TBL-MIN/gc3")

    def run(self, quick: bool = True) -> ExperimentResult:
        topology = experiment_topology(quick)
        result = ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            paper_claim=self.paper_claim,
            columns=[
                "severed_pairs",
                "dead_cables",
                "routing",
                "saturation_load",
            ],
        )
        # Saturation bisection re-simulates per probe, so keep the
        # measurement window short; the throughput criterion
        # (accepted >= 97% of offered) is robust to short windows.
        config = dataclasses.replace(
            experiment_config(quick, load=0.1),
            warmup_cycles=300 if quick else 1000,
            measure_cycles=300 if quick else 1000,
            drain_max_cycles=6000 if quick else 15_000,
        )
        executor = experiment_executor()
        tolerance = 0.05 if quick else 0.02
        for pairs, name in enumerate(self.routing_names):
            faults = canonical_global_faults(topology, pairs)
            saturation = saturation_load(
                topology,
                name,
                "uniform_random",
                config,
                tolerance=tolerance,
                executor=executor,
            )
            result.rows.append(
                {
                    "severed_pairs": pairs,
                    "dead_cables": len(faults.links),
                    "routing": name,
                    "saturation_load": saturation,
                }
            )
        result.notes.append(
            "each severed pair reroutes its traffic through a third group "
            "(two global hops instead of one); repro.check --faults proves "
            "the detour route classes deadlock-free"
        )
        return result
