"""Repo-specific AST lint for simulator hygiene (stdlib ``ast`` only).

Three rules, each motivated by a reproducibility or performance property
of the codebase:

``REP001`` unseeded randomness
    Calls to the ``random`` *module's* global functions
    (``random.random()``, ``random.choice()``, ...) are forbidden in
    ``src/repro``: they draw from interpreter-global state and silently
    break run-to-run determinism.  All randomness must flow through the
    seeded :class:`random.Random` instances the simulator owns
    (constructing ``random.Random``/``random.SystemRandom`` is allowed).

``REP002`` missing ``__slots__`` on hot-path classes
    The flit/stream classes instantiated per packet per hop must declare
    ``__slots__`` (directly or via ``@dataclass(slots=True)``): a dict
    per flit measurably slows the simulator and bloats memory.

``REP003`` no ``print`` in library code
    Library modules must not print; results flow through return values
    and the stats pipeline.  CLI entry points (``__main__.py`` modules
    and the ``check`` package) are exempt.  The repo's script trees
    (``benchmarks/`` and ``examples/``) are linted in *script mode*:
    prints inside function bodies or the ``if __name__ == "__main__":``
    guard are fine (that is where a script's output belongs), but a
    bare module-level print outside the guard fires on ``import`` --
    including under pytest collection -- and is flagged.

``REP004`` no ``dict.setdefault`` in the simulator core
    The active-set engine replaced every per-event ``setdefault`` on
    the hot path with flat preallocated lists and calendar-queue rings
    (see docs/simulator-performance.md).  A ``setdefault`` creeping
    back into ``repro.network.simulator`` silently reverts that --
    each call hashes a key and allocates a default even on hits.  Use
    a preallocated flat structure, or an explicit get/store when the
    code is genuinely cold.

``REP005`` no ``assert`` in the network engine
    ``assert`` statements are stripped under ``python -O``, so state
    validation written as an assert silently stops validating exactly
    when someone turns optimisations on.  In ``repro.network`` (the
    simulator library), raise
    :class:`~repro.network.simulator.SimulatorStateError` or report a
    :class:`~repro.check.report.Finding` via the conservation sanitizer
    instead.  Tests and non-engine packages may keep using asserts.

``REP006`` no global-state ``numpy.random`` outside the transplant modules
    ``numpy.random.rand()``, ``numpy.random.seed()`` and friends draw
    from (or mutate) numpy's interpreter-global generator -- the same
    nondeterminism source as ``REP001``, invisible to it because the
    module is ``numpy.random``, not ``random``.  Constructing explicit
    generators (``RandomState``, ``default_rng``, ``Generator``,
    ``SeedSequence``) is allowed anywhere.  The sanctioned MT19937
    transplant modules (``network/decide_kernel.py``,
    ``network/array_backend.py``), whose whole point is replaying the
    scalar engine's streams through numpy's state machinery, are exempt.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Sequence, Union

from .report import Finding, Severity

#: Class names that must carry ``__slots__`` wherever they are defined.
HOT_PATH_CLASSES = frozenset({"Flit", "Packet", "RoutePlan", "_Stream"})

#: ``random`` module attributes that are legitimate to touch directly.
ALLOWED_RANDOM_ATTRS = frozenset({"Random", "SystemRandom"})

#: Path fragments (relative, POSIX-style) exempt from the print rule.
PRINT_EXEMPT_PARTS = ("__main__.py",)
PRINT_EXEMPT_PACKAGES = ("check",)

#: Modules where ``dict.setdefault`` is banned outright (REP004): the
#: simulator hot path, which the active-set engine keeps allocation- and
#: hash-free per event.
SETDEFAULT_BANNED_MODULES = frozenset({"network/simulator.py"})

#: Packages (top-level directory under the lint root) where ``assert``
#: is banned (REP005): the simulator library, whose state validation
#: must survive ``python -O``.
ASSERT_BANNED_PACKAGES = frozenset({"network"})

#: ``numpy.random`` attributes that are legitimate to touch directly
#: (REP006): explicit-generator constructors, never global-state calls.
ALLOWED_NP_RANDOM_ATTRS = frozenset({
    "RandomState", "Generator", "default_rng", "SeedSequence",
})

#: Modules (relative, POSIX-style) exempt from REP006: the sanctioned
#: MT19937 transplant modules, which replay the scalar engine's random
#: streams through numpy's generator state machinery by design.
NP_RANDOM_SANCTIONED_MODULES = frozenset({
    "network/decide_kernel.py",
    "network/array_backend.py",
})

#: Repo-level script trees linted in script mode alongside the package.
SCRIPT_TREES = ("benchmarks", "examples")


def _is_main_guard(node: ast.If) -> bool:
    """True for ``if __name__ == "__main__":`` (either operand order)."""
    test = node.test
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
        return False
    if not isinstance(test.ops[0], ast.Eq):
        return False
    operands = [test.left, test.comparators[0]]
    names = [o.id for o in operands if isinstance(o, ast.Name)]
    values = [o.value for o in operands if isinstance(o, ast.Constant)]
    return names == ["__name__"] and values == ["__main__"]


def _is_dataclass_with_slots(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        if name != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "slots"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


def _defines_slots(node: ast.ClassDef) -> bool:
    for statement in node.body:
        targets: Sequence[ast.expr] = ()
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            targets = (statement.target,)
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return _is_dataclass_with_slots(node)


class _Linter(ast.NodeVisitor):
    def __init__(
        self, path: Path, relative: str, script_mode: bool = False
    ) -> None:
        self.path = path
        self.relative = relative
        self.findings: List[Finding] = []
        self._random_aliases: set = set()
        self._numpy_aliases: set = set()
        self._np_random_aliases: set = set()
        self._np_random_exempt = relative in NP_RANDOM_SANCTIONED_MODULES
        self._script_mode = script_mode
        #: In script mode, depth > 0 means inside a def/class body or the
        #: ``__main__`` guard, where prints are a script's normal output.
        self._script_exempt_depth = 0
        self._print_exempt = not script_mode and (
            relative.endswith(PRINT_EXEMPT_PARTS) or any(
                part in PRINT_EXEMPT_PACKAGES for part in Path(relative).parts
            )
        )
        self._setdefault_banned = relative in SETDEFAULT_BANNED_MODULES
        parts = Path(relative).parts
        self._assert_banned = (
            not script_mode
            and bool(parts)
            and parts[0] in ASSERT_BANNED_PACKAGES
        )

    def _add(self, code: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        self.findings.append(Finding(
            code=code,
            severity=Severity.ERROR,
            location=f"{self.relative}:{lineno}",
            message=message,
        ))

    # -- imports: track what names random / numpy.random go by -----------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self._random_aliases.add(alias.asname or "random")
            elif alias.name == "numpy":
                self._numpy_aliases.add(alias.asname or "numpy")
            elif alias.name == "numpy.random":
                if alias.asname:
                    self._np_random_aliases.add(alias.asname)
                else:
                    # ``import numpy.random`` binds the name ``numpy``.
                    self._numpy_aliases.add("numpy")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name not in ALLOWED_RANDOM_ATTRS:
                    self._add(
                        "REP001", node,
                        f"importing random.{alias.name} pulls unseeded "
                        "module-global randomness; use a seeded "
                        "random.Random instance",
                    )
        elif node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self._np_random_aliases.add(alias.asname or "random")
        elif node.module == "numpy.random" and not self._np_random_exempt:
            for alias in node.names:
                if alias.name not in ALLOWED_NP_RANDOM_ATTRS:
                    self._add(
                        "REP006", node,
                        f"importing numpy.random.{alias.name} pulls "
                        "numpy's interpreter-global generator state; "
                        "construct an explicit Generator/RandomState "
                        "(sanctioned transplant modules only)",
                    )
        self.generic_visit(node)

    def _is_np_random_value(self, value: ast.expr) -> bool:
        """True when ``value`` denotes the ``numpy.random`` module."""
        if isinstance(value, ast.Name):
            return value.id in self._np_random_aliases
        return (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in self._numpy_aliases
        )

    # -- calls: unseeded random + print ----------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self._random_aliases
            and func.attr not in ALLOWED_RANDOM_ATTRS
        ):
            self._add(
                "REP001", node,
                f"call to unseeded random.{func.attr}(); route randomness "
                "through a seeded random.Random instance",
            )
        if (
            isinstance(func, ast.Name)
            and func.id == "print"
            and not self._print_exempt
            and not (self._script_mode and self._script_exempt_depth > 0)
        ):
            if self._script_mode:
                self._add(
                    "REP003", node,
                    "module-level print() outside the "
                    'if __name__ == "__main__": guard runs on import; '
                    "move it into the guard or a function",
                )
            else:
                self._add(
                    "REP003", node,
                    "print() in library code; return data or use the stats "
                    "pipeline (CLI __main__ modules are exempt)",
                )
        if (
            isinstance(func, ast.Attribute)
            and not self._np_random_exempt
            and func.attr not in ALLOWED_NP_RANDOM_ATTRS
            and self._is_np_random_value(func.value)
        ):
            self._add(
                "REP006", node,
                f"call to numpy.random.{func.attr}() uses numpy's "
                "interpreter-global generator; construct an explicit "
                "Generator/RandomState (sanctioned transplant modules "
                "only)",
            )
        if (
            self._setdefault_banned
            and isinstance(func, ast.Attribute)
            and func.attr == "setdefault"
        ):
            self._add(
                "REP004", node,
                "setdefault() in the simulator core; the active-set "
                "engine keeps the hot path free of per-event hashing "
                "and default allocation -- use a preallocated flat "
                "structure (see docs/simulator-performance.md)",
            )
        self.generic_visit(node)

    # -- asserts: stripped under -O, banned in the engine ----------------
    def visit_Assert(self, node: ast.Assert) -> None:
        if self._assert_banned:
            self._add(
                "REP005", node,
                "assert in the network engine is stripped under "
                "python -O; raise SimulatorStateError or report a "
                "sanitizer Finding instead",
            )
        self.generic_visit(node)

    # -- script mode: track where prints are legitimate ------------------
    def _visit_exempt_body(self, node: ast.AST) -> None:
        self._script_exempt_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._script_exempt_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_exempt_body(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_exempt_body(node)

    def visit_If(self, node: ast.If) -> None:
        if self._script_mode and _is_main_guard(node):
            for child in node.body:
                self._script_exempt_depth += 1
                try:
                    self.visit(child)
                finally:
                    self._script_exempt_depth -= 1
            for child in node.orelse:
                self.visit(child)
            self.visit(node.test)
            return
        self.generic_visit(node)

    # -- classes: hot-path __slots__ -------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name in HOT_PATH_CLASSES and not _defines_slots(node):
            self._add(
                "REP002", node,
                f"hot-path class {node.name} must declare __slots__ "
                "(directly or via @dataclass(slots=True))",
            )
        self._visit_exempt_body(node)


def lint_file(path: Path, root: Path, script_mode: bool = False) -> List[Finding]:
    """Lint one file; returns findings (a syntax error is itself one)."""
    relative = path.relative_to(root).as_posix()
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError as error:
        return [Finding(
            code="REP000",
            severity=Severity.ERROR,
            location=f"{relative}:{error.lineno or 0}",
            message=f"syntax error: {error.msg}",
        )]
    linter = _Linter(path, relative, script_mode=script_mode)
    linter.visit(tree)
    return linter.findings


def lint_tree(
    root: Union[str, Path], script_mode: bool = False
) -> List[Finding]:
    """Lint every Python file under ``root`` (deterministic order)."""
    root_path = Path(root)
    if not root_path.is_dir():
        # A missing root would otherwise lint zero files and gate green.
        return [Finding(
            code="REP000",
            severity=Severity.ERROR,
            location=str(root_path),
            message="lint root is not a directory",
        )]
    findings: List[Finding] = []
    for path in sorted(root_path.rglob("*.py")):
        findings.extend(lint_file(path, root_path, script_mode=script_mode))
    return findings


def default_lint_root() -> Path:
    """The ``src/repro`` tree this installation runs from."""
    return Path(__file__).resolve().parent.parent


def default_script_roots() -> List[Path]:
    """The repo-level script trees, when running from a checkout.

    An installed wheel has no ``benchmarks/``/``examples/`` next to the
    package; absent trees are simply not linted (unlike an explicit
    root, which errors when missing).
    """
    repo_root = default_lint_root().parent.parent
    return [
        repo_root / name
        for name in SCRIPT_TREES
        if (repo_root / name).is_dir()
    ]


def lint_sources(root: Union[str, Path, None] = None) -> List[Finding]:
    """Entry point used by the CLI: lint the repro package sources.

    With the default root, the repo's script trees (``benchmarks/``,
    ``examples/``) are linted too, in script mode; findings there are
    located as ``benchmarks/foo.py:N`` relative to the repo root.
    """
    if root is not None:
        return lint_tree(root)
    findings = lint_tree(default_lint_root())
    for script_root in default_script_roots():
        for path in sorted(script_root.rglob("*.py")):
            findings.extend(
                lint_file(path, script_root.parent, script_mode=True)
            )
    return findings


def iter_findings_by_rule(
    findings: Iterable[Finding], code: str
) -> List[Finding]:
    """Convenience filter used by tests."""
    return [finding for finding in findings if finding.code == code]
