"""Registry of certifiable (topology, routing, VC assignment) triples.

``python -m repro.check cdg`` certifies every registered configuration.
A configuration bundles a topology builder with a route enumerator and
the VC budget the routing family claims to need; the certifier then
proves the claim (acyclic CDG) or prints a counterexample cycle.

Registering a new routing algorithm
-----------------------------------
Write a trace enumerator that yields every route your algorithm can emit
(see :mod:`repro.check.cdg` for the existing families), then::

    from repro.check.registry import CheckConfiguration, register

    register(CheckConfiguration(
        name="mytopo/MYALG@my-vcs",
        description="my algorithm on my topology",
        claimed_vcs=2,
        build=lambda: (topology.fabric, my_traces(topology)),
    ))

Adaptive algorithms that choose among enumerated candidates (the UGAL
family chooses between the minimal and Valiant routes) are covered by
enumerating the union of their candidate route classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple

from ..core.params import DragonflyParams
from ..routing import vc_assignment as vcs
from ..routing.clos_routing import clos_path_grammar
from ..routing.fb_paths import fb_path_grammar
from ..routing.grammar import DegradedPathGrammar, PathGrammar
from ..routing.paths import degraded_dragonfly_grammar, dragonfly_path_grammar
from ..routing.tables import (
    ClosLowering,
    DegradedDragonflyLowering,
    DragonflyLowering,
    FbLowering,
    Lowering,
    TorusLowering,
    VariantLowering,
)
from ..routing.torus_routing import torus_path_grammar
from ..routing.variant_paths import variant_path_grammar
from ..topology.base import Fabric
from ..topology.dragonfly import Dragonfly
from ..topology.faults import (
    ALL_FAULT_CLASSES,
    SEVERED_GROUP_PAIR,
    FaultSet,
)
from ..topology.flattened_butterfly import FlattenedButterfly
from ..topology.folded_clos import FoldedClos
from ..topology.group_variants import FlattenedButterflyGroupDragonfly
from ..topology.torus import Torus
from .cdg import (
    Trace,
    dragonfly_traces,
    flattened_butterfly_traces,
    folded_clos_traces,
    torus_traces,
    variant_traces,
)


@dataclass(frozen=True)
class CheckConfiguration:
    """One certifiable configuration.

    ``build`` constructs the topology and returns its fabric together
    with the (lazily enumerated) route traces; construction is deferred
    so ``--list`` stays instant.  ``claimed_vcs`` is the VC budget the
    routing family documents (asserted against the traces by the CLI).
    ``expect_deadlock_free`` is False only for negative controls kept to
    demonstrate counterexample extraction.

    ``grammar``, when present, returns the routing family's
    :class:`~repro.routing.grammar.PathGrammar` -- the symbolic certifier
    (:mod:`repro.check.symbolic`) analyses it in place of the enumerated
    traces, and the soundness harness cross-checks the two verdicts.

    ``tables``, when present, returns the family's table
    :class:`~repro.routing.tables.Lowering` -- the table pass
    (:mod:`repro.check.tables`) compiles the configuration to explicit
    forwarding tables and certifies the compiled form.
    """

    name: str
    description: str
    claimed_vcs: int
    build: Callable[[], Tuple[Fabric, Iterable[Trace]]]
    expect_deadlock_free: bool = True
    grammar: Optional[Callable[[], PathGrammar]] = None
    tables: Optional[Callable[[], Lowering]] = None


def _dragonfly(params: DragonflyParams) -> Dragonfly:
    return Dragonfly(params)


def _df_config(
    name: str,
    description: str,
    params: DragonflyParams,
    assignment: vcs.VcAssignment,
    include_nonminimal: bool = True,
    expect_deadlock_free: bool = True,
) -> CheckConfiguration:
    def build() -> Tuple[Fabric, Iterable[Trace]]:
        topology = _dragonfly(params)
        return topology.fabric, dragonfly_traces(
            topology, assignment, include_nonminimal
        )

    return CheckConfiguration(
        name=name,
        description=description,
        claimed_vcs=assignment.num_vcs,
        build=build,
        expect_deadlock_free=expect_deadlock_free,
        grammar=lambda: dragonfly_path_grammar(assignment, include_nonminimal),
        tables=lambda: DragonflyLowering(
            _dragonfly(params), assignment, include_nonminimal
        ),
    )


def _variant_config() -> CheckConfiguration:
    def build() -> Tuple[Fabric, Iterable[Trace]]:
        topology = FlattenedButterflyGroupDragonfly(p=1, group_dims=(2, 2), h=1)
        return topology.fabric, variant_traces(topology, vcs.CANONICAL)

    return CheckConfiguration(
        name="dragonfly-fbgroup/MIN+VAL+UGAL@figure7-3vc",
        description="2-D flattened-butterfly groups (Figure 6), canonical VCs",
        claimed_vcs=3,
        build=build,
        grammar=lambda: variant_path_grammar(vcs.CANONICAL),
        tables=lambda: VariantLowering(
            FlattenedButterflyGroupDragonfly(p=1, group_dims=(2, 2), h=1),
            vcs.CANONICAL,
            include_nonminimal=True,
        ),
    )


def _fb_config() -> CheckConfiguration:
    def build() -> Tuple[Fabric, Iterable[Trace]]:
        topology = FlattenedButterfly(dims=(3, 3), concentration=1)
        return topology.fabric, flattened_butterfly_traces(topology)

    return CheckConfiguration(
        name="flattened-butterfly/FB-MIN+VAL+UGAL@phase-vcs",
        description="3x3 flattened butterfly, DOR + router Valiant (2 VCs)",
        claimed_vcs=2,
        build=build,
        grammar=fb_path_grammar,
        tables=lambda: FbLowering(
            FlattenedButterfly(dims=(3, 3), concentration=1)
        ),
    )


def _torus_config(include_nonminimal: bool) -> CheckConfiguration:
    claimed = 4 if include_nonminimal else 2
    suffix = "DOR+VAL" if include_nonminimal else "DOR"

    def build() -> Tuple[Fabric, Iterable[Trace]]:
        topology = Torus(dims=(4, 4), concentration=1)
        return topology.fabric, torus_traces(topology, include_nonminimal)

    return CheckConfiguration(
        name=f"torus/{suffix}@dateline-{claimed}vc",
        description=f"4x4 torus, dateline dimension-order ({claimed} VCs)",
        claimed_vcs=claimed,
        build=build,
        grammar=lambda: torus_path_grammar(2, include_nonminimal),
        tables=lambda: TorusLowering(
            Torus(dims=(4, 4), concentration=1), include_nonminimal
        ),
    )


def _clos_config() -> CheckConfiguration:
    def build() -> Tuple[Fabric, Iterable[Trace]]:
        topology = FoldedClos(num_terminals=8, radix=4)
        return topology.fabric, folded_clos_traces(topology)

    return CheckConfiguration(
        name="folded-clos/CLOS-RAND+DET@updown-1vc",
        description="8-terminal radix-4 folded Clos, all up*/down* routes",
        claimed_vcs=1,
        build=build,
        grammar=lambda: clos_path_grammar(
            FoldedClos(num_terminals=8, radix=4).levels
        ),
        tables=lambda: ClosLowering(FoldedClos(num_terminals=8, radix=4)),
    )


def default_configurations() -> List[CheckConfiguration]:
    """The configurations certified by ``python -m repro.check``."""
    return [
        _df_config(
            "dragonfly/MIN+VAL+UGAL@figure7-3vc",
            "Figure 5 dragonfly (p=2,a=4,h=2,g=9), canonical 3-VC assignment",
            DragonflyParams.paper_example_72(),
            vcs.CANONICAL,
        ),
        _df_config(
            "dragonfly-tiny/MIN+VAL+UGAL@figure7-3vc",
            "smallest dragonfly (p=1,a=2,h=1,g=3), canonical 3-VC assignment",
            DragonflyParams(p=1, a=2, h=1),
            vcs.CANONICAL,
        ),
        _df_config(
            "dragonfly-nonmax/MIN+VAL+UGAL@figure7-3vc",
            "non-maximal dragonfly (p=1,a=2,h=2,g=3), distributed global links",
            DragonflyParams(p=1, a=2, h=2, num_groups=3),
            vcs.CANONICAL,
        ),
        _df_config(
            "dragonfly-nonmax72/MIN+VAL+UGAL@figure7-3vc",
            "non-maximal 72-router dragonfly (p=2,a=4,h=2,g=5): two global "
            "links per group pair exercise the distributed-link tie-break",
            DragonflyParams(p=2, a=4, h=2, num_groups=5),
            vcs.CANONICAL,
        ),
        _df_config(
            "dragonfly/MIN@minimal-2vc",
            "Figure 5 dragonfly, minimal routing only, 2-VC assignment",
            DragonflyParams.paper_example_72(),
            vcs.MINIMAL_TWO_VC,
            include_nonminimal=False,
        ),
        _variant_config(),
        _fb_config(),
        _torus_config(include_nonminimal=False),
        _torus_config(include_nonminimal=True),
        _clos_config(),
    ]


def broken_configuration() -> CheckConfiguration:
    """The negative control: collapsed 2-VC non-minimal assignment.

    Not part of :func:`default_configurations`; used by tests and by
    ``python -m repro.check cdg --demo-broken`` to demonstrate
    counterexample extraction.
    """
    return _df_config(
        "dragonfly/MIN+VAL@collapsed-2vc (negative control)",
        "Figure 5 dragonfly with the 3-VC assignment collapsed onto 2 VCs",
        DragonflyParams.paper_example_72(),
        vcs.COLLAPSED_TWO_VC,
        expect_deadlock_free=False,
    )


@dataclass(frozen=True)
class SymbolicScaleConfiguration:
    """A Table-2-scale parameterisation certifiable only symbolically.

    These instances are far beyond the concrete enumerator's reach (the
    1M-terminal machine has ~1.3M routers), but the symbolic certifier
    analyses their path grammar without building the topology at all.
    """

    name: str
    description: str
    num_terminals: int
    grammar: Callable[[], PathGrammar]


def symbolic_scale_configurations() -> List[SymbolicScaleConfiguration]:
    """Paper Table 2 entries certified by the ``symbolic`` pass."""
    configurations = []
    for h in (16, 24):
        params = DragonflyParams.balanced(h)
        configurations.append(SymbolicScaleConfiguration(
            name=f"dragonfly-balanced-h{h}/MIN+VAL+UGAL@figure7-3vc",
            description=(
                f"balanced dragonfly (p={params.p},a={params.a},h={params.h},"
                f"g={params.g}): N={params.num_terminals:,} terminals"
            ),
            num_terminals=params.num_terminals,
            grammar=lambda: dragonfly_path_grammar(vcs.CANONICAL),
        ))
    return configurations


# ----------------------------------------------------------------------
# Fault-parametric degraded families (the ``faults`` pass)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DegradedFamilyConfiguration:
    """A fault-degraded routing *family* certified symbolically.

    ``degraded`` builds the :class:`~repro.routing.grammar.
    DegradedPathGrammar` quantifying over fault classes, not concrete
    fault sets -- one certificate covers every (a, p, h, g) member and
    every fault set exhibiting only those classes.  ``num_terminals``
    names the machine size for the Table-2 entries (purely descriptive:
    the grammar never builds the topology), None for the
    instance-independent family entries.
    """

    name: str
    description: str
    degraded: Callable[[], DegradedPathGrammar]
    expect_deadlock_free: bool = True
    num_terminals: Optional[int] = None


def degraded_family_configurations() -> List[DegradedFamilyConfiguration]:
    """Degraded families certified by ``python -m repro.check --faults``."""
    configurations = [
        DegradedFamilyConfiguration(
            name="dragonfly-degraded-family@figure7-3vc",
            description=(
                "any dragonfly, any fault set built from severed group "
                "pairs, dead local links and dead routers; canonical VCs"
            ),
            degraded=lambda: degraded_dragonfly_grammar(
                vcs.CANONICAL, ALL_FAULT_CLASSES
            ),
        ),
        DegradedFamilyConfiguration(
            name="dragonfly-degraded-family@detour-vc-reuse (negative control)",
            description=(
                "detour class allowed to reuse its injection VC; the "
                "certifier must refute the family"
            ),
            degraded=lambda: degraded_dragonfly_grammar(
                vcs.DETOUR_VC_REUSE, (SEVERED_GROUP_PAIR,)
            ),
            expect_deadlock_free=False,
        ),
    ]
    for h in (16, 24):
        params = DragonflyParams.balanced(h)
        configurations.append(DegradedFamilyConfiguration(
            name=f"dragonfly-degraded-balanced-h{h}@figure7-3vc",
            description=(
                f"degraded balanced dragonfly (p={params.p},a={params.a},"
                f"h={params.h},g={params.g}): N={params.num_terminals:,} "
                "terminals, all three fault classes"
            ),
            degraded=lambda: degraded_dragonfly_grammar(
                vcs.CANONICAL, ALL_FAULT_CLASSES
            ),
            num_terminals=params.num_terminals,
        ))
    return configurations


@dataclass(frozen=True)
class DegradedCrossCheckConfiguration:
    """One enumerable degraded configuration anchoring the family proof.

    ``build`` constructs the concrete degraded lowering; the faults pass
    certifies it symbolically (grammar composed for exactly the fault
    classes the fault set exhibits) *and* concretely (table-level CDG on
    the detour-recompiled tables) and asserts the verdicts agree.
    """

    name: str
    description: str
    build: Callable[[], DegradedDragonflyLowering]
    expect_deadlock_free: bool = True


def _severed_pair_links(
    topology: Dragonfly, pairs: Iterable[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Endpoints of every cable between each named group pair."""
    links = []
    for src_group, dest_group in pairs:
        for link in topology.group_links(src_group, dest_group):
            links.append((link.src_router, link.dst_router))
    return links


def degraded_crosscheck_configurations() -> List[
    DegradedCrossCheckConfiguration
]:
    """Enumerable degraded configurations for the symbolic-vs-concrete
    harness of the ``faults`` pass."""

    def paper_severed() -> DegradedDragonflyLowering:
        topology = Dragonfly(DragonflyParams.paper_example_72())
        faults = FaultSet.of(links=_severed_pair_links(topology, [(0, 1)]))
        return DegradedDragonflyLowering(topology, faults)

    def paper_mixed() -> DegradedDragonflyLowering:
        topology = Dragonfly(DragonflyParams.paper_example_72())
        global_link = topology.group_links(0, 1)[0]
        faults = FaultSet.of(
            links=[
                (global_link.src_router, global_link.dst_router),
                (2, 3),
            ],
            routers=[35],
        )
        return DegradedDragonflyLowering(topology, faults)

    def tiny_severed() -> DegradedDragonflyLowering:
        topology = Dragonfly(DragonflyParams(p=1, a=2, h=1))
        faults = FaultSet.of(links=_severed_pair_links(topology, [(0, 1)]))
        return DegradedDragonflyLowering(topology, faults)

    def nonmax_partial() -> DegradedDragonflyLowering:
        topology = Dragonfly(DragonflyParams(p=2, a=4, h=2, num_groups=5))
        link = topology.group_links(0, 1)[0]
        faults = FaultSet.of(links=[(link.src_router, link.dst_router)])
        return DegradedDragonflyLowering(topology, faults)

    def vc_reuse_ring() -> DegradedDragonflyLowering:
        # Three detour-rerouted pairs in a ring with distinct mid groups
        # at every junction ((2,3) pushes the 1->2 detour off mid 3,
        # (0,4) pushes the 2->0 detour off mid 4), so the concrete
        # table-CDG cycle actually closes when the detour's final stage
        # reuses the injection VC.
        topology = Dragonfly(DragonflyParams.paper_example_72())
        faults = FaultSet.of(links=_severed_pair_links(
            topology, [(0, 1), (1, 2), (0, 2), (2, 3), (0, 4)]
        ))
        return DegradedDragonflyLowering(
            topology, faults, assignment=vcs.DETOUR_VC_REUSE
        )

    return [
        DegradedCrossCheckConfiguration(
            name="dragonfly-degraded/severed-pair@figure7-3vc",
            description="paper-72 minus every cable between groups 0 and 1",
            build=paper_severed,
        ),
        DegradedCrossCheckConfiguration(
            name="dragonfly-degraded/mixed@figure7-3vc",
            description=(
                "paper-72 minus one global cable, one local cable and "
                "one router (all three fault classes at once)"
            ),
            build=paper_mixed,
        ),
        DegradedCrossCheckConfiguration(
            name="dragonfly-degraded-tiny/severed-pair@figure7-3vc",
            description="smallest dragonfly minus its only 0<->1 cable",
            build=tiny_severed,
        ),
        DegradedCrossCheckConfiguration(
            name="dragonfly-degraded-nonmax72/one-of-two@figure7-3vc",
            description=(
                "non-maximal 72-router dragonfly minus one of the two "
                "cables between groups 0 and 1 (pair survives, no detour)"
            ),
            build=nonmax_partial,
        ),
        DegradedCrossCheckConfiguration(
            name="dragonfly-degraded/detour-vc-reuse (negative control)",
            description=(
                "paper-72 with a detour ring (severed pairs 0-1, 1-2, "
                "2-0, 2-3, 0-4) under the VC-reuse assignment; both "
                "verifiers must refute it"
            ),
            build=vc_reuse_ring,
            expect_deadlock_free=False,
        ),
    ]


#: Extra configurations registered by extensions (see module docstring).
_EXTRA: List[CheckConfiguration] = []


def register(configuration: CheckConfiguration) -> None:
    """Add a configuration to the set the CLI certifies."""
    _EXTRA.append(configuration)


def all_configurations() -> List[CheckConfiguration]:
    return default_configurations() + list(_EXTRA)
