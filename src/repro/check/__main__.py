"""``python -m repro.check`` -- the static-analysis gate.

Runs up to three passes and exits nonzero when any produces an ERROR:

* ``cdg``         -- certify deadlock freedom of every registered
                     (topology, routing, VC assignment) configuration;
* ``invariants``  -- audit the topology algebra and wiring invariants;
* ``lint``        -- repo-specific AST lint of ``src/repro``.

With no arguments all three run.  See ``--help`` for selection flags and
``docs/static-analysis.md`` for the full story.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .cdg import certify
from .invariants import audit_topology, default_topology_audits
from .lint import lint_sources
from .registry import all_configurations, broken_configuration
from .report import CheckReport, Severity, combined_exit_code

PASSES = ("cdg", "invariants", "lint")


def run_cdg_pass(demo_broken: bool = False) -> CheckReport:
    """Certify every registered configuration (plus the negative demo)."""
    report = CheckReport(pass_name="cdg")
    configurations = list(all_configurations())
    if demo_broken:
        configurations.append(broken_configuration())
    for configuration in configurations:
        fabric, traces = configuration.build()
        certification = certify(configuration.name, fabric, traces)
        report.note(certification.summary())
        if certification.ok == configuration.expect_deadlock_free:
            if not certification.ok:
                # Negative control behaved as documented: show the cycle
                # as evidence but do not fail the gate.
                report.add(
                    "CDG002", Severity.INFO, configuration.name,
                    "expected counterexample found:\n"
                    + (certification.cycle_description or ""),
                )
            continue
        if certification.ok:
            report.add(
                "CDG003", Severity.ERROR, configuration.name,
                "configuration documented as deadlocking was certified "
                "acyclic; negative control has rotted",
            )
        else:
            report.add(
                "CDG001", Severity.ERROR, configuration.name,
                "channel-dependency graph is CYCLIC; counterexample "
                "deadlock cycle:\n" + (certification.cycle_description or ""),
            )
    return report


def run_invariants_pass() -> CheckReport:
    """Audit every registered topology instance."""
    report = CheckReport(pass_name="invariants")
    for name, build in default_topology_audits():
        topology = build()
        findings = audit_topology(topology)
        report.extend(findings)
        errors = sum(1 for f in findings if f.severity == Severity.ERROR)
        report.note(f"{name}: {'ok' if not errors else f'{errors} errors'}")
    return report


def run_lint_pass(root: Optional[str] = None) -> CheckReport:
    """Run the repo-specific AST lint."""
    report = CheckReport(pass_name="lint")
    findings = lint_sources(root)
    report.extend(findings)
    report.note(f"{len(findings)} finding(s)")
    return report


def run_passes(
    passes: Sequence[str],
    demo_broken: bool = False,
    lint_root: Optional[str] = None,
) -> List[CheckReport]:
    reports = []
    for name in passes:
        if name == "cdg":
            reports.append(run_cdg_pass(demo_broken=demo_broken))
        elif name == "invariants":
            reports.append(run_invariants_pass())
        elif name == "lint":
            reports.append(run_lint_pass(root=lint_root))
        else:
            raise ValueError(f"unknown pass {name!r}")
    return reports


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="static deadlock-freedom certifier, topology invariant "
        "linter and code lint for the dragonfly reproduction",
    )
    parser.add_argument(
        "passes", nargs="*", metavar="pass",
        help=f"passes to run, from {{{', '.join(PASSES)}}} (default: all three)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list registered CDG configurations and topology audits, then exit",
    )
    parser.add_argument(
        "--demo-broken", action="store_true",
        help="also certify the deliberately broken collapsed-2vc assignment "
        "to demonstrate counterexample extraction (does not fail the gate)",
    )
    parser.add_argument(
        "--lint-root", default=None,
        help="directory to lint instead of the installed repro package",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="show per-configuration notes and INFO findings",
    )
    args = parser.parse_args(argv)

    if args.list:
        print("CDG configurations:")
        for configuration in all_configurations():
            print(f"  {configuration.name}  ({configuration.description})")
        print("Topology audits:")
        for name, _ in default_topology_audits():
            print(f"  {name}")
        return 0

    passes = args.passes or list(PASSES)
    unknown = [name for name in passes if name not in PASSES]
    if unknown:
        parser.error(
            f"unknown pass(es) {', '.join(unknown)}; choose from {', '.join(PASSES)}"
        )
    reports = run_passes(
        passes, demo_broken=args.demo_broken, lint_root=args.lint_root
    )
    for report in reports:
        print(report.format(verbose=args.verbose))
    code = combined_exit_code(reports)
    print("repro.check:", "all passes clean" if code == 0 else "FAILED")
    return code


if __name__ == "__main__":
    sys.exit(main())
