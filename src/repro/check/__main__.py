"""``python -m repro.check`` -- the static-analysis gate.

Runs up to five passes and exits nonzero when any produces an ERROR:

* ``cdg``         -- certify deadlock freedom of every registered
                     (topology, routing, VC assignment) configuration by
                     concrete route enumeration;
* ``symbolic``    -- certify whole routing *families* from their path
                     grammars (channel-class abstraction), cross-checked
                     against the concrete verdicts, including Table-2
                     scale parameterisations no enumerator could touch;
* ``tables``      -- compile every configuration to explicit per-router
                     forwarding tables and certify the compiled form
                     (reachability, acyclic table-CDG, grammar-consistent
                     VCs, JSON round trip), including fault-degraded
                     dragonfly table sets;
* ``invariants``  -- audit the topology algebra and wiring invariants;
* ``lint``        -- repo-specific AST lint of ``src/repro``,
                     ``benchmarks/`` and ``examples/``.

With no arguments all five run.  ``--sanitize-fixture NAME`` additionally
re-simulates a golden fixture under ``REPRO_SANITIZE=1`` and fails on any
conservation violation or output divergence.  See ``--help`` for
selection flags and ``docs/static-analysis.md`` for the full story.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import List, Optional, Sequence

from .cdg import certify
from .invariants import audit_topology, default_topology_audits
from .lint import lint_sources
from .registry import (
    all_configurations,
    broken_configuration,
    symbolic_scale_configurations,
)
from .report import CheckReport, Severity, combined_exit_code
from .symbolic import certify_grammar, soundness_harness
from .tables import run_tables_pass

PASSES = ("cdg", "symbolic", "tables", "invariants", "lint")

#: Wall-clock budget for certifying one Table-2-scale parameterisation.
SCALE_BUDGET_SECONDS = 5.0


def run_cdg_pass(demo_broken: bool = False) -> CheckReport:
    """Certify every registered configuration (plus the negative demo)."""
    report = CheckReport(pass_name="cdg")
    configurations = list(all_configurations())
    if demo_broken:
        configurations.append(broken_configuration())
    for configuration in configurations:
        fabric, traces = configuration.build()
        certification = certify(configuration.name, fabric, traces)
        report.note(certification.summary())
        if certification.ok == configuration.expect_deadlock_free:
            if not certification.ok:
                # Negative control behaved as documented: show the cycle
                # as evidence but do not fail the gate.
                report.add(
                    "CDG002", Severity.INFO, configuration.name,
                    "expected counterexample found:\n"
                    + (certification.cycle_description or ""),
                )
            continue
        if certification.ok:
            report.add(
                "CDG003", Severity.ERROR, configuration.name,
                "configuration documented as deadlocking was certified "
                "acyclic; negative control has rotted",
            )
        else:
            report.add(
                "CDG001", Severity.ERROR, configuration.name,
                "channel-dependency graph is CYCLIC; counterexample "
                "deadlock cycle:\n" + (certification.cycle_description or ""),
            )
    return report


def run_symbolic_pass(demo_broken: bool = False) -> CheckReport:
    """Certify every routing family symbolically and cross-check.

    Three stages: (1) certify each registered configuration's path
    grammar; (2) certify the Table-2-scale parameterisations (symbolic
    only -- their concrete CDGs are astronomically large) against the
    wall-clock budget; (3) run the soundness harness, which re-certifies
    each finite configuration concretely and demands verdict agreement.
    """
    report = CheckReport(pass_name="symbolic")
    configurations = list(all_configurations())
    if demo_broken:
        configurations.append(broken_configuration())
    for configuration in configurations:
        if configuration.grammar is None:
            report.note(
                f"{configuration.name}: no path grammar registered; "
                "skipped (concrete cdg pass still covers it)"
            )
            continue
        certification = certify_grammar(
            configuration.name, configuration.grammar()
        )
        report.note(certification.summary())
        if certification.ok == configuration.expect_deadlock_free:
            if not certification.ok:
                report.add(
                    "SYM002", Severity.INFO, configuration.name,
                    "expected symbolic counterexample found:\n"
                    + (certification.cycle_description or ""),
                )
            continue
        if certification.ok:
            report.add(
                "SYM003", Severity.ERROR, configuration.name,
                "grammar documented as deadlocking was certified acyclic; "
                "negative control has rotted",
            )
        else:
            report.add(
                "SYM001", Severity.ERROR, configuration.name,
                "class-level dependency graph is CYCLIC; symbolic "
                "counterexample:\n"
                + (certification.cycle_description or ""),
            )
    for scale in symbolic_scale_configurations():
        start = time.perf_counter()
        certification = certify_grammar(scale.name, scale.grammar())
        elapsed = time.perf_counter() - start
        report.note(
            f"{certification.summary()} "
            f"[N={scale.num_terminals:,} terminals, {elapsed:.3f}s]"
        )
        if not certification.ok:
            report.add(
                "SYM001", Severity.ERROR, scale.name,
                "class-level dependency graph is CYCLIC; symbolic "
                "counterexample:\n"
                + (certification.cycle_description or ""),
            )
        elif elapsed > SCALE_BUDGET_SECONDS:
            report.add(
                "SYM004", Severity.ERROR, scale.name,
                f"symbolic certification took {elapsed:.1f}s; the budget "
                f"for Table-2 scale is {SCALE_BUDGET_SECONDS:.0f}s",
            )
    for check in soundness_harness(
        configurations if demo_broken
        else [*configurations, broken_configuration()]
    ):
        report.note(check.summary())
        if not check.agrees:
            report.add(
                "SYM005", Severity.ERROR, check.name,
                "symbolic and concrete verdicts disagree "
                f"(symbolic={'free' if check.symbolic.ok else 'cyclic'}, "
                f"concrete={'free' if check.concrete.ok else 'cyclic'}); "
                "the grammar's abstraction no longer matches the routes",
            )
    return report


def run_invariants_pass() -> CheckReport:
    """Audit every registered topology instance."""
    report = CheckReport(pass_name="invariants")
    for name, build in default_topology_audits():
        topology = build()
        findings = audit_topology(topology)
        report.extend(findings)
        errors = sum(1 for f in findings if f.severity == Severity.ERROR)
        report.note(f"{name}: {'ok' if not errors else f'{errors} errors'}")
    return report


def run_lint_pass(root: Optional[str] = None) -> CheckReport:
    """Run the repo-specific AST lint."""
    report = CheckReport(pass_name="lint")
    findings = lint_sources(root)
    report.extend(findings)
    report.note(f"{len(findings)} finding(s)")
    return report


def run_sanitize_pass(fixture: str) -> CheckReport:
    """Re-simulate a golden fixture under the conservation sanitizer.

    ``fixture`` is a path to a fixture JSON or a bare name resolved
    against ``tests/golden/``.  The run fails on any conservation
    violation (the sanitizer's findings are surfaced directly) and on
    any divergence from the fixture's pinned results -- sanitizing must
    be behaviour-preserving.
    """
    from ..core.params import DragonflyParams
    from ..network.config import SimulationConfig
    from ..network.sweep import load_sweep
    from ..topology.dragonfly import Dragonfly
    from .sanitizer import ENV_ENABLE, SanitizerError

    report = CheckReport(pass_name="sanitize")
    path = pathlib.Path(fixture)
    if not path.is_file():
        path = pathlib.Path("tests/golden") / f"{fixture}.json"
    if not path.is_file():
        report.add(
            "SAN000", Severity.ERROR, fixture,
            "fixture not found (pass a JSON path or the stem of a file "
            "under tests/golden/)",
        )
        return report
    data = json.loads(path.read_text())
    topology = Dragonfly(DragonflyParams(**data["topology"]))
    config = SimulationConfig(**data["config"])
    previous = os.environ.get(ENV_ENABLE)
    os.environ[ENV_ENABLE] = "1"
    try:
        points = load_sweep(
            topology, data["routing"], data["pattern"], data["loads"], config
        )
    except SanitizerError as error:
        report.extend(error.findings)
        return report
    finally:
        if previous is None:
            del os.environ[ENV_ENABLE]
        else:
            os.environ[ENV_ENABLE] = previous
    results = [point.result.to_dict() for point in points]
    if results != data["points"]:
        report.add(
            "SAN006", Severity.ERROR, str(path),
            "sanitized re-run diverged from the pinned fixture results; "
            "the sanitizer must be behaviour-preserving",
        )
    else:
        report.note(
            f"{path.stem}: {len(points)} point(s) re-simulated under "
            f"{ENV_ENABLE}=1; zero violations, bit-identical results"
        )
    return report


def run_passes(
    passes: Sequence[str],
    demo_broken: bool = False,
    lint_root: Optional[str] = None,
    export_tables: Optional[str] = None,
) -> List[CheckReport]:
    reports = []
    for name in passes:
        if name == "cdg":
            reports.append(run_cdg_pass(demo_broken=demo_broken))
        elif name == "symbolic":
            reports.append(run_symbolic_pass(demo_broken=demo_broken))
        elif name == "tables":
            reports.append(run_tables_pass(
                demo_broken=demo_broken, export_dir=export_tables
            ))
        elif name == "invariants":
            reports.append(run_invariants_pass())
        elif name == "lint":
            reports.append(run_lint_pass(root=lint_root))
        else:
            raise ValueError(f"unknown pass {name!r}")
    return reports


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="static deadlock-freedom certifier (concrete and "
        "symbolic), topology invariant linter and code lint for the "
        "dragonfly reproduction",
    )
    parser.add_argument(
        "passes", nargs="*", metavar="pass",
        help=f"passes to run, from {{{', '.join(PASSES)}}} (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list registered CDG configurations, symbolic scale "
        "parameterisations and topology audits, then exit",
    )
    parser.add_argument(
        "--symbolic", action="store_true",
        help="run only the symbolic family-level certification pass "
        "(shorthand for the 'symbolic' positional)",
    )
    parser.add_argument(
        "--tables", action="store_true",
        help="run only the forwarding-table certification pass "
        "(shorthand for the 'tables' positional)",
    )
    parser.add_argument(
        "--export-tables", metavar="DIR", default=None,
        help="with the tables pass: export every compiled table set as "
        "versioned JSON into DIR",
    )
    parser.add_argument(
        "--sanitize-fixture", metavar="FIXTURE", default=None,
        help="additionally re-simulate a golden fixture (path or stem "
        "under tests/golden/) with REPRO_SANITIZE=1 and fail on any "
        "conservation violation or result divergence",
    )
    parser.add_argument(
        "--demo-broken", action="store_true",
        help="also certify the deliberately broken collapsed-2vc assignment "
        "to demonstrate counterexample extraction (does not fail the gate)",
    )
    parser.add_argument(
        "--lint-root", default=None,
        help="directory to lint instead of the installed repro package",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="show per-configuration notes and INFO findings",
    )
    args = parser.parse_args(argv)

    if args.list:
        from .tables import degraded_configurations

        print("CDG configurations:")
        for configuration in all_configurations():
            markers = "".join(
                marker for marker, present in (
                    (" [grammar]", configuration.grammar is not None),
                    (" [tables]", configuration.tables is not None),
                ) if present
            )
            print(f"  {configuration.name}{markers}  "
                  f"({configuration.description})")
        print("Fault-degraded table configurations:")
        for degraded in degraded_configurations():
            print(f"  {degraded.name}  ({degraded.description})")
        print("Symbolic scale parameterisations:")
        for scale in symbolic_scale_configurations():
            print(f"  {scale.name}  ({scale.description})")
        print("Topology audits:")
        for name, _ in default_topology_audits():
            print(f"  {name}")
        return 0

    for flag, shorthand in (("--symbolic", args.symbolic),
                            ("--tables", args.tables)):
        if shorthand and args.passes:
            parser.error(f"{flag} cannot be combined with positional passes")
    if args.symbolic and args.tables:
        parser.error("--symbolic and --tables select different single passes")
    if args.symbolic:
        passes = ["symbolic"]
    elif args.tables:
        passes = ["tables"]
    else:
        passes = args.passes or list(PASSES)
    unknown = [name for name in passes if name not in PASSES]
    if unknown:
        parser.error(
            f"unknown pass(es) {', '.join(unknown)}; choose from {', '.join(PASSES)}"
        )
    reports = run_passes(
        passes, demo_broken=args.demo_broken, lint_root=args.lint_root,
        export_tables=args.export_tables,
    )
    if args.sanitize_fixture is not None:
        reports.append(run_sanitize_pass(args.sanitize_fixture))
    for report in reports:
        print(report.format(verbose=args.verbose))
    code = combined_exit_code(reports)
    print("repro.check:", "all passes clean" if code == 0 else "FAILED")
    return code


if __name__ == "__main__":
    sys.exit(main())
