"""``python -m repro.check`` -- the static-analysis gate.

Runs up to six passes and exits nonzero when any produces an ERROR:

* ``cdg``         -- certify deadlock freedom of every registered
                     (topology, routing, VC assignment) configuration by
                     concrete route enumeration;
* ``symbolic``    -- certify whole routing *families* from their path
                     grammars (channel-class abstraction), cross-checked
                     against the concrete verdicts, including Table-2
                     scale parameterisations no enumerator could touch;
* ``tables``      -- compile every configuration to explicit per-router
                     forwarding tables and certify the compiled form
                     (reachability, acyclic table-CDG, grammar-consistent
                     VCs, JSON round trip), including fault-degraded
                     dragonfly table sets;
* ``faults``      -- fault-parametric certification of *degraded*
                     families: healthy grammar composed with symbolic
                     fault classes (severed group pair, dead local link,
                     dead router), proved acyclic and within the VC
                     budget at Table-2 scale, anchored by a
                     symbolic-vs-concrete cross-check on every
                     enumerable degraded configuration;
* ``invariants``  -- audit the topology algebra and wiring invariants;
* ``lint``        -- repo-specific AST lint of ``src/repro``,
                     ``benchmarks/`` and ``examples/``.

With no arguments all six run.  ``--sanitize-fixture NAME`` additionally
re-simulates a golden fixture under ``REPRO_SANITIZE=1`` and fails on any
conservation violation or output divergence.  See ``--help`` for
selection flags and ``docs/static-analysis.md`` for the full story.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import List, Optional, Sequence

from .cdg import certify
from .invariants import audit_topology, default_topology_audits
from .lint import lint_sources
from .registry import (
    all_configurations,
    broken_configuration,
    degraded_crosscheck_configurations,
    degraded_family_configurations,
    symbolic_scale_configurations,
)
from .report import CheckReport, Severity, combined_exit_code
from .symbolic import (
    certify_grammar,
    degraded_cross_check,
    soundness_harness,
    vc_budget_violations,
)
from .tables import run_tables_pass

PASSES = ("cdg", "symbolic", "tables", "faults", "invariants", "lint")

#: Wall-clock budget for certifying one Table-2-scale parameterisation.
SCALE_BUDGET_SECONDS = 5.0

#: Wall-clock budget for certifying one *degraded* Table-2 family: the
#: acceptance bar of the fault-parametric certifier is well under a
#: second per parameterisation.
FAULT_SCALE_BUDGET_SECONDS = 1.0


def run_cdg_pass(demo_broken: bool = False) -> CheckReport:
    """Certify every registered configuration (plus the negative demo)."""
    report = CheckReport(pass_name="cdg")
    configurations = list(all_configurations())
    if demo_broken:
        configurations.append(broken_configuration())
    for configuration in configurations:
        fabric, traces = configuration.build()
        certification = certify(configuration.name, fabric, traces)
        report.note(certification.summary())
        if certification.ok == configuration.expect_deadlock_free:
            if not certification.ok:
                # Negative control behaved as documented: show the cycle
                # as evidence but do not fail the gate.
                report.add(
                    "CDG002", Severity.INFO, configuration.name,
                    "expected counterexample found:\n"
                    + (certification.cycle_description or ""),
                )
            continue
        if certification.ok:
            report.add(
                "CDG003", Severity.ERROR, configuration.name,
                "configuration documented as deadlocking was certified "
                "acyclic; negative control has rotted",
            )
        else:
            report.add(
                "CDG001", Severity.ERROR, configuration.name,
                "channel-dependency graph is CYCLIC; counterexample "
                "deadlock cycle:\n" + (certification.cycle_description or ""),
            )
    return report


def run_symbolic_pass(demo_broken: bool = False) -> CheckReport:
    """Certify every routing family symbolically and cross-check.

    Three stages: (1) certify each registered configuration's path
    grammar; (2) certify the Table-2-scale parameterisations (symbolic
    only -- their concrete CDGs are astronomically large) against the
    wall-clock budget; (3) run the soundness harness, which re-certifies
    each finite configuration concretely and demands verdict agreement.
    """
    report = CheckReport(pass_name="symbolic")
    configurations = list(all_configurations())
    if demo_broken:
        configurations.append(broken_configuration())
    for configuration in configurations:
        if configuration.grammar is None:
            report.note(
                f"{configuration.name}: no path grammar registered; "
                "skipped (concrete cdg pass still covers it)"
            )
            continue
        certification = certify_grammar(
            configuration.name, configuration.grammar()
        )
        report.note(certification.summary())
        if certification.ok == configuration.expect_deadlock_free:
            if not certification.ok:
                report.add(
                    "SYM002", Severity.INFO, configuration.name,
                    "expected symbolic counterexample found:\n"
                    + (certification.cycle_description or ""),
                )
            continue
        if certification.ok:
            report.add(
                "SYM003", Severity.ERROR, configuration.name,
                "grammar documented as deadlocking was certified acyclic; "
                "negative control has rotted",
            )
        else:
            report.add(
                "SYM001", Severity.ERROR, configuration.name,
                "class-level dependency graph is CYCLIC; symbolic "
                "counterexample:\n"
                + (certification.cycle_description or ""),
            )
    for scale in symbolic_scale_configurations():
        start = time.perf_counter()
        certification = certify_grammar(scale.name, scale.grammar())
        elapsed = time.perf_counter() - start
        report.note(
            f"{certification.summary()} "
            f"[N={scale.num_terminals:,} terminals, {elapsed:.3f}s]"
        )
        if not certification.ok:
            report.add(
                "SYM001", Severity.ERROR, scale.name,
                "class-level dependency graph is CYCLIC; symbolic "
                "counterexample:\n"
                + (certification.cycle_description or ""),
            )
        elif elapsed > SCALE_BUDGET_SECONDS:
            report.add(
                "SYM004", Severity.ERROR, scale.name,
                f"symbolic certification took {elapsed:.1f}s; the budget "
                f"for Table-2 scale is {SCALE_BUDGET_SECONDS:.0f}s",
            )
    for check in soundness_harness(
        configurations if demo_broken
        else [*configurations, broken_configuration()]
    ):
        report.note(check.summary())
        if not check.agrees:
            report.add(
                "SYM005", Severity.ERROR, check.name,
                "symbolic and concrete verdicts disagree "
                f"(symbolic={'free' if check.symbolic.ok else 'cyclic'}, "
                f"concrete={'free' if check.concrete.ok else 'cyclic'}); "
                "the grammar's abstraction no longer matches the routes",
            )
    return report


def run_faults_pass() -> CheckReport:
    """Fault-parametric certification of degraded families (``FLT0xx``).

    Two stages.  Stage 1 certifies each registered
    :class:`~repro.check.registry.DegradedFamilyConfiguration`: the
    fault-parametric grammar is composed (healthy route classes ∪ detour
    classes, local segments widened for relay faults), its class-level
    dependency graph is proved acyclic (``FLT001`` on an unexpected
    cycle), every class is checked against the assignment's VC budget
    (``FLT002``), and the Table-2 parameterisations are held to the
    sub-second wall-clock budget (``FLT005``).  Negative controls must
    be *refuted* (``FLT003`` INFO evidence; ``FLT004`` when one rots).

    Stage 2 anchors soundness: every enumerable degraded configuration
    is certified both symbolically and concretely (table-level CDG on
    the detour-recompiled tables) and the verdicts must agree
    (``FLT006``); the refuted negative control prints *both*
    counterexample cycles.
    """
    report = CheckReport(pass_name="faults")
    for family in degraded_family_configurations():
        start = time.perf_counter()
        grammar = family.degraded().compose()
        certification = certify_grammar(family.name, grammar)
        violations = vc_budget_violations(grammar)
        elapsed = time.perf_counter() - start
        scale = (
            f" [N={family.num_terminals:,} terminals, {elapsed:.3f}s]"
            if family.num_terminals is not None else ""
        )
        report.note(f"{certification.summary()}{scale}")
        for violation in violations:
            report.add(
                "FLT002", Severity.ERROR, family.name,
                f"detour class exceeds the VC budget: {violation}",
            )
        if family.num_terminals is not None and (
            elapsed > FAULT_SCALE_BUDGET_SECONDS
        ):
            report.add(
                "FLT005", Severity.ERROR, family.name,
                f"degraded-family certification took {elapsed:.2f}s; the "
                f"budget at Table-2 scale is "
                f"{FAULT_SCALE_BUDGET_SECONDS:.0f}s",
            )
        if certification.ok == family.expect_deadlock_free:
            if not certification.ok:
                report.add(
                    "FLT003", Severity.INFO, family.name,
                    "expected symbolic counterexample found:\n"
                    + (certification.cycle_description or ""),
                )
            continue
        if certification.ok:
            report.add(
                "FLT004", Severity.ERROR, family.name,
                "degraded family documented as deadlocking was certified "
                "acyclic; negative control has rotted",
            )
        else:
            report.add(
                "FLT001", Severity.ERROR, family.name,
                "degraded class-level dependency graph is CYCLIC; symbolic "
                "counterexample:\n"
                + (certification.cycle_description or ""),
            )
    for configuration in degraded_crosscheck_configurations():
        check = degraded_cross_check(configuration.name, configuration.build())
        report.note(check.summary())
        if not check.agrees:
            report.add(
                "FLT006", Severity.ERROR, configuration.name,
                "symbolic and concrete verdicts disagree "
                f"(symbolic={'free' if check.symbolic.ok else 'cyclic'}, "
                "concrete-tables="
                f"{'cyclic' if check.concrete.cyclic else 'free'}); the "
                "degraded grammar's abstraction no longer matches the "
                "detour-recompiled tables",
            )
            continue
        safe = check.symbolic.ok
        if safe == configuration.expect_deadlock_free:
            if not safe:
                report.add(
                    "FLT003", Severity.INFO, configuration.name,
                    "expected counterexample found by BOTH verifiers.\n"
                    "symbolic counterexample:\n"
                    + (check.symbolic.cycle_description or "")
                    + "\nconcrete table-level counterexample:\n"
                    + (check.concrete.cycle_description or ""),
                )
            else:
                # Certified clean both ways: surface any non-cycle
                # concrete findings (reachability, round trip, ...).
                report.extend(check.concrete.findings)
            continue
        if safe:
            report.add(
                "FLT004", Severity.ERROR, configuration.name,
                "degraded configuration documented as deadlocking was "
                "certified clean by both verifiers; negative control has "
                "rotted",
            )
        else:
            report.add(
                "FLT001", Severity.ERROR, configuration.name,
                "degraded configuration is CYCLIC (both verifiers agree); "
                "symbolic counterexample:\n"
                + (check.symbolic.cycle_description or "")
                + "\nconcrete table-level counterexample:\n"
                + (check.concrete.cycle_description or ""),
            )
    return report


def run_invariants_pass() -> CheckReport:
    """Audit every registered topology instance."""
    report = CheckReport(pass_name="invariants")
    for name, build in default_topology_audits():
        topology = build()
        findings = audit_topology(topology)
        report.extend(findings)
        errors = sum(1 for f in findings if f.severity == Severity.ERROR)
        report.note(f"{name}: {'ok' if not errors else f'{errors} errors'}")
    return report


def run_lint_pass(root: Optional[str] = None) -> CheckReport:
    """Run the repo-specific AST lint."""
    report = CheckReport(pass_name="lint")
    findings = lint_sources(root)
    report.extend(findings)
    report.note(f"{len(findings)} finding(s)")
    return report


def run_sanitize_pass(fixture: str) -> CheckReport:
    """Re-simulate a golden fixture under the conservation sanitizer.

    ``fixture`` is a path to a fixture JSON or a bare name resolved
    against ``tests/golden/``.  The run fails on any conservation
    violation (the sanitizer's findings are surfaced directly) and on
    any divergence from the fixture's pinned results -- sanitizing must
    be behaviour-preserving.
    """
    from ..core.params import DragonflyParams
    from ..network.config import SimulationConfig
    from ..network.sweep import load_sweep
    from ..topology.dragonfly import Dragonfly
    from .sanitizer import ENV_ENABLE, SanitizerError

    report = CheckReport(pass_name="sanitize")
    path = pathlib.Path(fixture)
    if not path.is_file():
        path = pathlib.Path("tests/golden") / f"{fixture}.json"
    if not path.is_file():
        report.add(
            "SAN000", Severity.ERROR, fixture,
            "fixture not found (pass a JSON path or the stem of a file "
            "under tests/golden/)",
        )
        return report
    data = json.loads(path.read_text())
    topology = Dragonfly(DragonflyParams(**data["topology"]))
    config = SimulationConfig(**data["config"])
    previous = os.environ.get(ENV_ENABLE)
    os.environ[ENV_ENABLE] = "1"
    try:
        points = load_sweep(
            topology, data["routing"], data["pattern"], data["loads"], config
        )
    except SanitizerError as error:
        report.extend(error.findings)
        return report
    finally:
        if previous is None:
            del os.environ[ENV_ENABLE]
        else:
            os.environ[ENV_ENABLE] = previous
    results = [point.result.to_dict() for point in points]
    if results != data["points"]:
        report.add(
            "SAN006", Severity.ERROR, str(path),
            "sanitized re-run diverged from the pinned fixture results; "
            "the sanitizer must be behaviour-preserving",
        )
    else:
        report.note(
            f"{path.stem}: {len(points)} point(s) re-simulated under "
            f"{ENV_ENABLE}=1; zero violations, bit-identical results"
        )
    return report


def run_passes(
    passes: Sequence[str],
    demo_broken: bool = False,
    lint_root: Optional[str] = None,
    export_tables: Optional[str] = None,
) -> List[CheckReport]:
    reports = []
    for name in passes:
        if name == "cdg":
            reports.append(run_cdg_pass(demo_broken=demo_broken))
        elif name == "symbolic":
            reports.append(run_symbolic_pass(demo_broken=demo_broken))
        elif name == "tables":
            reports.append(run_tables_pass(
                demo_broken=demo_broken, export_dir=export_tables
            ))
        elif name == "faults":
            reports.append(run_faults_pass())
        elif name == "invariants":
            reports.append(run_invariants_pass())
        elif name == "lint":
            reports.append(run_lint_pass(root=lint_root))
        else:
            raise ValueError(f"unknown pass {name!r}")
    return reports


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="static deadlock-freedom certifier (concrete and "
        "symbolic), topology invariant linter and code lint for the "
        "dragonfly reproduction",
    )
    parser.add_argument(
        "passes", nargs="*", metavar="pass",
        help=f"passes to run, from {{{', '.join(PASSES)}}} (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list registered CDG configurations, symbolic scale "
        "parameterisations and topology audits, then exit",
    )
    parser.add_argument(
        "--symbolic", action="store_true",
        help="run only the symbolic family-level certification pass "
        "(shorthand for the 'symbolic' positional)",
    )
    parser.add_argument(
        "--tables", action="store_true",
        help="run only the forwarding-table certification pass "
        "(shorthand for the 'tables' positional)",
    )
    parser.add_argument(
        "--faults", action="store_true",
        help="run only the fault-parametric degraded-family certification "
        "pass (shorthand for the 'faults' positional)",
    )
    parser.add_argument(
        "--export-tables", metavar="DIR", default=None,
        help="with the tables pass: export every compiled table set as "
        "versioned JSON into DIR",
    )
    parser.add_argument(
        "--sanitize-fixture", metavar="FIXTURE", default=None,
        help="additionally re-simulate a golden fixture (path or stem "
        "under tests/golden/) with REPRO_SANITIZE=1 and fail on any "
        "conservation violation or result divergence",
    )
    parser.add_argument(
        "--demo-broken", action="store_true",
        help="also certify the deliberately broken collapsed-2vc assignment "
        "to demonstrate counterexample extraction (does not fail the gate)",
    )
    parser.add_argument(
        "--lint-root", default=None,
        help="directory to lint instead of the installed repro package",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="show per-configuration notes and INFO findings",
    )
    args = parser.parse_args(argv)

    if args.list:
        from .tables import degraded_configurations

        print("CDG configurations:")
        for configuration in all_configurations():
            markers = "".join(
                marker for marker, present in (
                    (" [grammar]", configuration.grammar is not None),
                    (" [tables]", configuration.tables is not None),
                ) if present
            )
            print(f"  {configuration.name}{markers}  "
                  f"({configuration.description})")
        print("Fault-degraded table configurations:")
        for degraded in degraded_configurations():
            print(f"  {degraded.name}  ({degraded.description})")
        print("Degraded families (symbolic, fault-parametric):")
        for family in degraded_family_configurations():
            print(f"  {family.name}  ({family.description})")
        print("Degraded cross-check configurations:")
        for crosscheck in degraded_crosscheck_configurations():
            print(f"  {crosscheck.name}  ({crosscheck.description})")
        print("Symbolic scale parameterisations:")
        for scale in symbolic_scale_configurations():
            print(f"  {scale.name}  ({scale.description})")
        print("Topology audits:")
        for name, _ in default_topology_audits():
            print(f"  {name}")
        return 0

    shorthands = (
        ("--symbolic", args.symbolic),
        ("--tables", args.tables),
        ("--faults", args.faults),
    )
    for flag, shorthand in shorthands:
        if shorthand and args.passes:
            parser.error(f"{flag} cannot be combined with positional passes")
    selected = [flag for flag, shorthand in shorthands if shorthand]
    if len(selected) > 1:
        parser.error(
            f"{' and '.join(selected)} select different single passes"
        )
    if args.symbolic:
        passes = ["symbolic"]
    elif args.tables:
        passes = ["tables"]
    elif args.faults:
        passes = ["faults"]
    else:
        passes = args.passes or list(PASSES)
    unknown = [name for name in passes if name not in PASSES]
    if unknown:
        parser.error(
            f"unknown pass(es) {', '.join(unknown)}; choose from {', '.join(PASSES)}"
        )
    reports = run_passes(
        passes, demo_broken=args.demo_broken, lint_root=args.lint_root,
        export_tables=args.export_tables,
    )
    if args.sanitize_fixture is not None:
        reports.append(run_sanitize_pass(args.sanitize_fixture))
    for report in reports:
        print(report.format(verbose=args.verbose))
    code = combined_exit_code(reports)
    print("repro.check:", "all passes clean" if code == 0 else "FAILED")
    return code


if __name__ == "__main__":
    sys.exit(main())
