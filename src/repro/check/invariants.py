"""Topology invariant linter.

Audits concrete topology instances against the paper's parameter algebra
(Section 3.1) and against structural properties every fabric must hold:

* dragonfly algebra: group bound ``g <= a*h + 1``, size ``N = a*p*g``
  (``= ap(ah+1)`` at maximum size), radix ``k = p + a + h - 1``;
* the balance rule ``a = 2p = 2h`` (warning when violated without the
  paper's relaxed overprovisioning ``a >= 2h``, ``p >= h``);
* port-budget consistency: every router wires exactly its declared
  terminal/local/global port counts and nothing beyond its radix;
* bidirectional link symmetry: every cable appears as two directed
  channels that mirror each other's endpoints, kind and latency;
* even distribution of excess global links in non-maximal dragonflies:
  per-pair channel counts differ by at most one and respect the
  ``floor(ah / (g-1))`` lower bound, and no pair is disconnected.

Errors gate CI; warnings (e.g. a legal-but-unbalanced configuration) are
advisory.
"""

from __future__ import annotations

from typing import Callable, List, Tuple, Union

from ..core.params import DragonflyParams
from ..topology.base import ChannelKind, Fabric
from ..topology.dragonfly import Dragonfly
from ..topology.flattened_butterfly import FlattenedButterfly
from ..topology.folded_clos import FoldedClos
from ..topology.group_variants import FlattenedButterflyGroupDragonfly
from ..topology.torus import Torus
from .report import Finding, Severity

AnyTopology = Union[
    Dragonfly, FlattenedButterfly, FoldedClos, Torus,
    FlattenedButterflyGroupDragonfly,
]


def _finding(code: str, severity: Severity, location: str, message: str) -> Finding:
    return Finding(code=code, severity=severity, location=location, message=message)


# ----------------------------------------------------------------------
# Generic fabric checks (every topology)
# ----------------------------------------------------------------------
def audit_fabric(fabric: Fabric, location: str) -> List[Finding]:
    """Structural checks shared by all topologies."""
    findings: List[Finding] = []
    # Channel list must pair up into bidirectional cables.
    if len(fabric.channels) % 2 != 0:
        findings.append(_finding(
            "TOP005", Severity.ERROR, location,
            f"odd directed-channel count {len(fabric.channels)}; "
            "every cable must contribute two directed channels",
        ))
        return findings
    for forward, backward in fabric.bidirectional_links():
        if forward.src != backward.dst or forward.dst != backward.src:
            findings.append(_finding(
                "TOP005", Severity.ERROR, location,
                f"channels {forward.index}/{backward.index} are not "
                f"mirror images: {forward.src}->{forward.dst} vs "
                f"{backward.src}->{backward.dst}",
            ))
        if forward.kind != backward.kind or forward.latency != backward.latency:
            findings.append(_finding(
                "TOP005", Severity.ERROR, location,
                f"channels {forward.index}/{backward.index} disagree on "
                "kind or latency",
            ))
    if fabric.num_routers > 1 and not fabric.is_connected():
        findings.append(_finding(
            "TOP007", Severity.ERROR, location, "fabric is not connected",
        ))
    try:
        fabric.validate()
    except ValueError as error:
        findings.append(_finding(
            "TOP007", Severity.ERROR, location, f"fabric.validate(): {error}",
        ))
    return findings


def _audit_radix_bound(
    fabric: Fabric, declared_radix: int, location: str
) -> List[Finding]:
    findings: List[Finding] = []
    for router in range(fabric.num_routers):
        wired = fabric.radix(router)
        if wired > declared_radix:
            findings.append(_finding(
                "TOP004", Severity.ERROR, location,
                f"router {router} wires {wired} ports, exceeding the "
                f"declared radix {declared_radix}",
            ))
    return findings


# ----------------------------------------------------------------------
# Dragonfly algebra
# ----------------------------------------------------------------------
def audit_dragonfly(topology: Dragonfly) -> List[Finding]:
    params = topology.params
    location = params.describe()
    findings = audit_fabric(topology.fabric, location)
    findings += _audit_radix_bound(topology.fabric, params.radix, location)

    # Group bound g <= a*h + 1 (the virtual-router radix limit).
    if params.g > params.a * params.h + 1:
        findings.append(_finding(
            "TOP001", Severity.ERROR, location,
            f"group count g={params.g} exceeds the bound a*h+1="
            f"{params.a * params.h + 1}",
        ))

    # Network size algebra: N = a*p*g, and at maximum size N = ap(ah+1).
    expected_terminals = params.a * params.p * params.g
    if topology.fabric.num_terminals != expected_terminals:
        findings.append(_finding(
            "TOP002", Severity.ERROR, location,
            f"fabric has {topology.fabric.num_terminals} terminals, "
            f"algebra demands a*p*g = {expected_terminals}",
        ))
    if params.is_max_size:
        full = params.a * params.p * (params.a * params.h + 1)
        if topology.fabric.num_terminals != full:
            findings.append(_finding(
                "TOP002", Severity.ERROR, location,
                f"maximum-size dragonfly must have N = ap(ah+1) = {full} "
                f"terminals, found {topology.fabric.num_terminals}",
            ))

    # Balance rule a = 2p = 2h (Section 3.1).
    if not params.is_balanced:
        severity = Severity.INFO if params.is_overprovisioned else Severity.WARNING
        detail = (
            "local/terminal bandwidth is overprovisioned (a >= 2h, p >= h)"
            if params.is_overprovisioned
            else "global channels are no longer the only bottleneck"
        )
        findings.append(_finding(
            "TOP003", severity, location,
            f"unbalanced configuration (a={params.a}, 2p={2 * params.p}, "
            f"2h={2 * params.h}); {detail}",
        ))

    findings += _audit_dragonfly_ports(topology, location)
    findings += _audit_global_distribution(topology, location)
    return findings


def _audit_dragonfly_ports(topology: Dragonfly, location: str) -> List[Finding]:
    """Per-router port budget: p terminals, a-1 locals, <= h globals."""
    findings: List[Finding] = []
    params = topology.params
    fabric = topology.fabric
    for router in range(fabric.num_routers):
        terminals = locals_ = globals_ = 0
        for port in fabric.ports(router):
            if fabric.is_terminal_port(router, port):
                terminals += 1
                continue
            channel = fabric.out_channel(router, port)
            assert channel is not None
            if channel.kind == ChannelKind.LOCAL:
                locals_ += 1
            elif channel.kind == ChannelKind.GLOBAL:
                globals_ += 1
        if terminals != params.p:
            findings.append(_finding(
                "TOP004", Severity.ERROR, location,
                f"router {router} wires {terminals} terminal ports, expected p={params.p}",
            ))
        if locals_ != params.a - 1:
            findings.append(_finding(
                "TOP004", Severity.ERROR, location,
                f"router {router} wires {locals_} local ports, expected a-1={params.a - 1}",
            ))
        if globals_ > params.h:
            findings.append(_finding(
                "TOP004", Severity.ERROR, location,
                f"router {router} wires {globals_} global ports, exceeding h={params.h}",
            ))
        recorded = len(topology.global_links_of(router))
        if recorded != globals_:
            findings.append(_finding(
                "TOP004", Severity.ERROR, location,
                f"router {router} records {recorded} global links but wires "
                f"{globals_} global ports",
            ))
    return findings


def _audit_global_distribution(topology: Dragonfly, location: str) -> List[Finding]:
    """Even distribution of global channels over group pairs (Section 3.1)."""
    findings: List[Finding] = []
    params = topology.params
    if params.g <= 1:
        return findings
    counts = []
    for i in range(params.g):
        for j in range(i + 1, params.g):
            count = len(topology.group_links(i, j))
            mirrored = len(topology.group_links(j, i))
            if count != mirrored:
                findings.append(_finding(
                    "TOP005", Severity.ERROR, location,
                    f"group pair ({i},{j}) records {count} forward but "
                    f"{mirrored} reverse global links",
                ))
            if count == 0:
                findings.append(_finding(
                    "TOP006", Severity.ERROR, location,
                    f"groups {i} and {j} are not connected by any global channel",
                ))
            counts.append(count)
    if not counts:
        return findings
    # The round-robin distribution promises per-pair counts within one of
    # each other and at least floor(ah / (g-1)) each; tapering
    # (max_channels_per_pair) intentionally caps counts but must keep the
    # spread-of-one property among uncapped pairs, so only check the
    # lower bound against the cap when tapered.
    floor_bound = params.min_channels_between_group_pairs()
    if topology.max_channels_per_pair is not None:
        floor_bound = min(floor_bound, topology.max_channels_per_pair)
    if max(counts) - min(counts) > 1 and topology.max_channels_per_pair is None:
        findings.append(_finding(
            "TOP006", Severity.ERROR, location,
            f"global channels unevenly distributed: per-pair counts range "
            f"{min(counts)}..{max(counts)} (spread must be <= 1)",
        ))
    if min(counts) < floor_bound:
        findings.append(_finding(
            "TOP006", Severity.ERROR, location,
            f"some group pair has {min(counts)} global channels, below the "
            f"floor(ah/(g-1)) bound {floor_bound}",
        ))
    return findings


# ----------------------------------------------------------------------
# Other topology families
# ----------------------------------------------------------------------
def audit_flattened_butterfly(topology: FlattenedButterfly) -> List[Finding]:
    location = topology.describe()
    findings = audit_fabric(topology.fabric, location)
    findings += _audit_radix_bound(topology.fabric, topology.radix, location)
    expected = topology.concentration + sum(m - 1 for m in topology.dims)
    if topology.radix != expected:
        findings.append(_finding(
            "TOP002", Severity.ERROR, location,
            f"declared radix {topology.radix} != c + sum(m_i - 1) = {expected}",
        ))
    if topology.fabric.num_terminals != topology.num_terminals:
        findings.append(_finding(
            "TOP002", Severity.ERROR, location,
            f"fabric has {topology.fabric.num_terminals} terminals, "
            f"expected {topology.num_terminals}",
        ))
    return findings


def audit_folded_clos(topology: FoldedClos) -> List[Finding]:
    location = topology.describe()
    findings = audit_fabric(topology.fabric, location)
    findings += _audit_radix_bound(topology.fabric, topology.radix, location)
    if topology.num_terminals != topology.down ** topology.levels:
        findings.append(_finding(
            "TOP002", Severity.ERROR, location,
            f"N={topology.num_terminals} != d^L = "
            f"{topology.down ** topology.levels}",
        ))
    if topology.num_switches != topology.levels * topology.switches_per_level:
        findings.append(_finding(
            "TOP002", Severity.ERROR, location,
            "switch count disagrees with L * d^(L-1)",
        ))
    return findings


def audit_torus(topology: Torus) -> List[Finding]:
    location = topology.describe()
    findings = audit_fabric(topology.fabric, location)
    findings += _audit_radix_bound(topology.fabric, topology.radix, location)
    # Every router must reach exactly two neighbours per dimension
    # (one for size-2 rings, which have a single cable).
    expected_neighbors = sum(1 if m == 2 else 2 for m in topology.dims)
    for router in range(topology.num_routers):
        neighbors = len(topology.fabric.neighbors(router))
        if neighbors != expected_neighbors:
            findings.append(_finding(
                "TOP004", Severity.ERROR, location,
                f"router {router} has {neighbors} neighbours, expected "
                f"{expected_neighbors}",
            ))
    return findings


def audit_variant(topology: FlattenedButterflyGroupDragonfly) -> List[Finding]:
    location = (
        f"dragonfly_fb_group(p={topology.p}, dims={topology.group_dims}, "
        f"h={topology.h}, g={topology.g})"
    )
    findings = audit_fabric(topology.fabric, location)
    findings += _audit_radix_bound(topology.fabric, topology.radix, location)
    if topology.g > topology.a * topology.h + 1:
        findings.append(_finding(
            "TOP001", Severity.ERROR, location,
            f"group count g={topology.g} exceeds a*h+1={topology.a * topology.h + 1}",
        ))
    expected = topology.a * topology.p * topology.g
    if topology.fabric.num_terminals != expected:
        findings.append(_finding(
            "TOP002", Severity.ERROR, location,
            f"fabric has {topology.fabric.num_terminals} terminals, "
            f"algebra demands a*p*g = {expected}",
        ))
    return findings


def audit_topology(topology: AnyTopology) -> List[Finding]:
    """Dispatch to the family-specific audit."""
    if isinstance(topology, Dragonfly):
        return audit_dragonfly(topology)
    if isinstance(topology, FlattenedButterfly):
        return audit_flattened_butterfly(topology)
    if isinstance(topology, FoldedClos):
        return audit_folded_clos(topology)
    if isinstance(topology, Torus):
        return audit_torus(topology)
    if isinstance(topology, FlattenedButterflyGroupDragonfly):
        return audit_variant(topology)
    raise TypeError(f"no invariant audit for {type(topology).__name__}")


def default_topology_audits() -> List[Tuple[str, Callable[[], AnyTopology]]]:
    """(name, builder) pairs audited by ``python -m repro.check``."""
    return [
        ("dragonfly-paper72", lambda: Dragonfly(DragonflyParams.paper_example_72())),
        ("dragonfly-paper1k", lambda: Dragonfly(DragonflyParams.paper_1k())),
        ("dragonfly-tiny", lambda: Dragonfly(DragonflyParams(p=1, a=2, h=1))),
        (
            "dragonfly-nonmax",
            lambda: Dragonfly(DragonflyParams(p=2, a=4, h=2, num_groups=5)),
        ),
        (
            "dragonfly-tapered",
            lambda: Dragonfly(
                DragonflyParams(p=2, a=4, h=2, num_groups=5),
                max_channels_per_pair=1,
            ),
        ),
        (
            "dragonfly-fbgroup",
            lambda: FlattenedButterflyGroupDragonfly(p=1, group_dims=(2, 2), h=1),
        ),
        (
            "flattened-butterfly-8x8",
            lambda: FlattenedButterfly(dims=(8, 8), concentration=4),
        ),
        ("folded-clos-64", lambda: FoldedClos(num_terminals=64, radix=8)),
        ("torus-4x4x4", lambda: Torus(dims=(4, 4, 4), concentration=1)),
    ]
