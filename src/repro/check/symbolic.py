"""Symbolic channel-class certification of deadlock freedom.

Where :mod:`repro.check.cdg` certifies one concrete instance by
enumerating every route, this module certifies an entire routing
*family* at once -- every (a, p, h, g) dragonfly, every k-ary n-cube of
a given dimension count, every Clos of a given depth -- by analysing the
family's :class:`~repro.routing.grammar.PathGrammar` instead of its
instances.  That is what makes the paper's Table 2 scale reachable: the
class-level graph of the canonical dragonfly assignment has five nodes
whether N is 72 or 1M.

Soundness argument
------------------
Map every concrete buffer (channel, VC) of any instance to its channel
class.  The abstraction contract of :class:`~repro.routing.grammar.
PathGrammar` guarantees this map is a graph homomorphism from the
concrete channel-dependency graph into the class-level graph built here:
a concrete dependency between consecutive buffers of a route lands
either *between* two segments of the route's class (with only skippable
segments in between -- exactly the pairs :func:`class_dependency_graph`
connects) or *inside* one multi-hop segment (the self-edges).  A
concrete cycle would therefore map to a closed walk in the class graph.
Two cases:

* the walk visits at least two classes -- then the class graph has a
  cycle through distinct classes, which the search finds;
* the walk stays inside one class -- possible only via intra-class
  dependencies, which exist only in multi-hop segments; a segment's
  ``order`` witness (e.g. the DOR dimension index) asserts those
  dependencies strictly descend a total order on the class's concrete
  buffers, so they cannot close a cycle.  Witnessed self-edges are
  excluded from the search; unwitnessed ones (including a class revisited
  across skippable segments, where no single-walk order can apply) are
  treated as cycles.

Hence: class graph acyclic (modulo witnessed self-edges) implies every
concrete CDG of every instance acyclic.  The converse does **not** hold
-- the abstraction can manufacture spurious cycles -- which is why
:func:`soundness_harness` cross-checks the symbolic verdict against the
concrete enumerator on every registered (finite) configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from ..routing.grammar import ChannelClass, PathGrammar
from .cdg import Certification, certify
from .registry import (
    CheckConfiguration,
    broken_configuration,
    default_configurations,
)

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..routing.tables import DegradedDragonflyLowering
    from .tables import TableCertification

#: Where one class-level dependency comes from:
#: (route class name, holding stage index, requesting stage index).
EdgeProvenance = Tuple[str, int, int]


@dataclass(frozen=True)
class SymbolicCertification:
    """Outcome of certifying one routing family's path grammar."""

    name: str
    ok: bool
    num_route_classes: int
    num_classes: int
    num_edges: int
    #: The counterexample as a cycle of channel classes, when refuted.
    cycle: Optional[Tuple[ChannelClass, ...]] = None
    #: Human-readable rendering of ``cycle`` (one line per class).
    cycle_description: Optional[str] = None
    #: Intra-class self-dependencies excluded from the cycle search
    #: because a strict order witnesses them acyclic.
    witnessed: Tuple[str, ...] = ()

    def summary(self) -> str:
        verdict = "deadlock-free" if self.ok else "CYCLIC"
        return (
            f"{self.name}: {verdict} for the whole family "
            f"({self.num_route_classes} route classes, "
            f"{self.num_classes} channel classes, "
            f"{self.num_edges} dependencies)"
        )


def _witness_orders(grammar: PathGrammar) -> Dict[ChannelClass, str]:
    """The usable order witness per class, if any.

    A class's self-dependencies are witnessed only when *every* multi-hop
    occurrence across the grammar names the same non-empty order -- two
    different orders (or one missing) could disagree about the direction
    of an intra-class dependency, so the witness is discarded.
    """
    collected: Dict[ChannelClass, Set[str]] = {}
    for route_class in grammar.route_classes:
        for segment in route_class.segments:
            if segment.multi_hop:
                collected.setdefault(segment.cls, set()).add(segment.order)
    return {
        cls: next(iter(orders))
        for cls, orders in collected.items()
        if len(orders) == 1 and "" not in orders
    }


def _add_edge(
    graph: nx.DiGraph,
    src: ChannelClass,
    dst: ChannelClass,
    provenance: EdgeProvenance,
    witnessed: bool,
) -> None:
    data = graph.get_edge_data(src, dst)
    if data is None:
        graph.add_edge(src, dst, provenance=[provenance], witnessed=witnessed)
    else:
        data["provenance"].append(provenance)
        # One unwitnessed contributor taints the edge: the cycle search
        # must keep it.
        data["witnessed"] = data["witnessed"] and witnessed


def class_dependency_graph(grammar: PathGrammar) -> nx.DiGraph:
    """The class-level dependency graph of a path grammar.

    Nodes are channel classes.  For each route class, stage ``i`` depends
    on stage ``j > i`` iff every stage strictly between them is optional
    (only then can a route hold a stage-``i`` buffer while requesting a
    stage-``j`` buffer next); a multi-hop stage additionally depends on
    itself.  Edges carry their provenance (for counterexample rendering)
    and whether an order witness covers them (self-edges only; a class
    *revisited* across skippable stages is never witnessed -- no
    single-walk order spans two separate visits).
    """
    graph: nx.DiGraph = nx.DiGraph()
    graph.add_nodes_from(grammar.classes())
    witnesses = _witness_orders(grammar)
    for route_class in grammar.route_classes:
        segments = route_class.segments
        for i, segment in enumerate(segments):
            if segment.multi_hop:
                _add_edge(
                    graph, segment.cls, segment.cls,
                    (route_class.name, i, i),
                    witnessed=segment.cls in witnesses,
                )
            skippable = True
            for j in range(i + 1, len(segments)):
                if not skippable:
                    break
                _add_edge(
                    graph, segment.cls, segments[j].cls,
                    (route_class.name, i, j),
                    witnessed=False,
                )
                skippable = segments[j].optional
    return graph


def find_symbolic_counterexample(
    graph: nx.DiGraph,
) -> Optional[List[ChannelClass]]:
    """A class cycle, or None.  Witnessed self-edges are not cycles."""
    search: nx.DiGraph = nx.DiGraph()
    search.add_nodes_from(graph.nodes)
    for src, dst, data in graph.edges(data=True):
        if src == dst and data["witnessed"]:
            continue
        search.add_edge(src, dst)
    try:
        edges = nx.find_cycle(search, orientation="original")
    except nx.NetworkXNoCycle:
        return None
    return [edge[0] for edge in edges]


def describe_symbolic_cycle(
    graph: nx.DiGraph, cycle: List[ChannelClass]
) -> str:
    """Render a class cycle, naming the route classes that close it."""
    lines = []
    for i, cls in enumerate(cycle):
        nxt = cycle[(i + 1) % len(cycle)]
        data = graph.get_edge_data(cls, nxt) or {}
        provenance: List[EdgeProvenance] = data.get("provenance", [])
        via = ""
        if provenance:
            name, hold, request = provenance[0]
            stage = (
                f"revisits stage {hold}" if hold == request
                else f"stage {hold} -> stage {request}"
            )
            via = f"  [route class {name!r}, {stage}]"
        lines.append(
            f"  packet holding a {cls.describe()} buffer waits for a "
            f"{nxt.describe()} buffer{via}"
        )
    return "\n".join(lines)


def certify_grammar(name: str, grammar: PathGrammar) -> SymbolicCertification:
    """Certify a whole routing family from its path grammar."""
    graph = class_dependency_graph(grammar)
    witnesses = _witness_orders(grammar)
    cycle = find_symbolic_counterexample(graph)
    witnessed_notes = tuple(sorted(
        f"{src.describe()}: self-dependencies ordered by {witnesses[src]}"
        for src, dst, data in graph.edges(data=True)
        if src == dst and data["witnessed"]
    ))
    return SymbolicCertification(
        name=name,
        ok=cycle is None,
        num_route_classes=len(grammar.route_classes),
        num_classes=graph.number_of_nodes(),
        num_edges=graph.number_of_edges(),
        cycle=tuple(cycle) if cycle else None,
        cycle_description=(
            describe_symbolic_cycle(graph, cycle) if cycle else None
        ),
        witnessed=witnessed_notes,
    )


# ----------------------------------------------------------------------
# Soundness harness: symbolic vs. concrete on every finite instance
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrossCheck:
    """Symbolic and concrete verdicts for one registered configuration."""

    name: str
    symbolic: SymbolicCertification
    concrete: Certification

    @property
    def agrees(self) -> bool:
        return self.symbolic.ok == self.concrete.ok

    def summary(self) -> str:
        verdict = "agree" if self.agrees else "DISAGREE"
        return (
            f"{self.name}: symbolic="
            f"{'free' if self.symbolic.ok else 'cyclic'} concrete="
            f"{'free' if self.concrete.ok else 'cyclic'} -> {verdict}"
        )


def cross_check(configuration: CheckConfiguration) -> Optional[CrossCheck]:
    """Certify one configuration both ways; None when it has no grammar."""
    if configuration.grammar is None:
        return None
    symbolic = certify_grammar(configuration.name, configuration.grammar())
    fabric, traces = configuration.build()
    concrete = certify(configuration.name, fabric, traces)
    return CrossCheck(configuration.name, symbolic, concrete)


def soundness_harness(
    configurations: Optional[Iterable[CheckConfiguration]] = None,
) -> List[CrossCheck]:
    """Cross-check symbolic vs. concrete verdicts.

    Defaults to every default configuration plus the seeded negative
    control.  The symbolic analysis is sound but not complete, so exact
    agreement is a *calibration* fact about the registered grammars
    (their optionality flags and roles are tight enough), re-verified
    here against ground truth on every instance small enough to
    enumerate.
    """
    if configurations is None:
        configurations = [*default_configurations(), broken_configuration()]
    checks = []
    for configuration in configurations:
        result = cross_check(configuration)
        if result is not None:
            checks.append(result)
    return checks


# ----------------------------------------------------------------------
# Fault-parametric certification of degraded families (FLT pass support)
# ----------------------------------------------------------------------
def vc_budget_violations(grammar: PathGrammar) -> List[str]:
    """Channel classes whose VC falls outside the grammar's VC budget.

    The degraded grammar repurposes the non-minimal VC ladder for
    detours, so acyclicity alone is not enough: every detour class must
    also *fit* the configured :class:`~repro.routing.vc_assignment.
    VcAssignment` -- a class on VC ``num_vcs`` would be acyclic and
    unimplementable.  Returns one message per offending class, empty
    when the budget suffices.
    """
    violations = []
    for cls in grammar.classes():
        if cls.vc < 0 or cls.vc >= grammar.num_vcs:
            violations.append(
                f"class {cls.describe()} needs VC {cls.vc} but the "
                f"assignment provisions only VCs 0..{grammar.num_vcs - 1}"
            )
    return violations


@dataclass(frozen=True)
class DegradedCrossCheck:
    """Symbolic and concrete verdicts for one degraded configuration.

    The concrete side is the table-level CDG verifier on the
    detour-recompiled tables; ``agrees`` asserts the soundness direction
    symbolic-says-safe ⟹ concrete-finds-no-cycle *and* its calibration
    converse, i.e. the two verdicts on deadlock match exactly.  The
    concrete certification may carry non-cycle findings (reachability,
    round-trip) that are reported separately; only cyclicity is the
    soundness question.
    """

    name: str
    symbolic: SymbolicCertification
    concrete: "TableCertification"

    @property
    def agrees(self) -> bool:
        return self.symbolic.ok == (not self.concrete.cyclic)

    def summary(self) -> str:
        verdict = "agree" if self.agrees else "DISAGREE"
        return (
            f"{self.name}: symbolic="
            f"{'free' if self.symbolic.ok else 'cyclic'} concrete-tables="
            f"{'cyclic' if self.concrete.cyclic else 'free'} -> {verdict}"
        )


def degraded_cross_check(
    name: str, lowering: "DegradedDragonflyLowering"
) -> DegradedCrossCheck:
    """Certify one degraded configuration both ways.

    Symbolically: compose the fault-parametric grammar for exactly the
    fault classes the lowering's concrete fault set exhibits, and
    certify the class-level graph.  Concretely: recompile the detour
    tables and run the full table-level CDG verifier
    (:func:`repro.check.tables.certify_tables`).  The enumerable
    configurations checked this way anchor the family-level certificate
    the same way PR 5's :func:`soundness_harness` anchors the healthy
    one.
    """
    from ..routing.paths import degraded_dragonfly_grammar
    from .tables import certify_tables

    grammar = degraded_dragonfly_grammar(
        lowering.assignment,
        lowering.faults.fault_classes(lowering.topology),
    ).compose()
    symbolic = certify_grammar(name, grammar)
    concrete = certify_tables(name, lowering)
    return DegradedCrossCheck(name, symbolic, concrete)
