"""Static channel-dependency-graph (CDG) certification of deadlock freedom.

The classic Dally--Seitz condition: wormhole/VCT routing is deadlock-free
iff the dependency graph over *buffer resources* -- here (directed
channel, virtual channel) pairs -- is acyclic, where an edge A -> B means
some admissible route can hold a flit in buffer A while requesting
buffer B.

This module proves that condition *statically* for a concrete
(topology, routing algorithm, VC assignment) triple by exhaustively
enumerating every route the route-class admits (every source router,
every destination terminal, every global-channel / intermediate /
up-port choice the algorithm could make), re-executing each route through
the same ``next_hop`` executor the simulator uses, and checking the
resulting graph with :func:`networkx.is_directed_acyclic_graph`.  When
the proof fails, :func:`find_counterexample` extracts a concrete cycle
of (channel, VC) buffers and renders it as a human-readable deadlock
scenario.

The enumeration is a *superset* of what an adaptive algorithm (UGAL)
actually routes -- UGAL always picks between the minimal and one Valiant
candidate, both of which are enumerated here -- so acyclicity of the
enumerated graph certifies every UGAL variant as well.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from ..network.packet import RoutePlan
from ..routing import vc_assignment as vcs
from ..routing.clos_routing import ClosRoutePlan, clos_walk_route
from ..routing.fb_paths import FbRoutePlan, fb_walk_route
from ..routing.paths import walk_route
from ..routing.torus_routing import TorusRoutePlan, torus_walk_route
from ..routing.variant_paths import variant_walk_route
from ..topology.base import Fabric
from ..topology.dragonfly import Dragonfly
from ..topology.flattened_butterfly import FlattenedButterfly
from ..topology.folded_clos import FoldedClos
from ..topology.group_variants import FlattenedButterflyGroupDragonfly
from ..topology.torus import Torus

#: One hop of a walked route: (router, out_port, vc).  The final element
#: of a trace is the ejection hop (terminal port), which holds no network
#: buffer and is excluded from the CDG.
Trace = List[Tuple[int, int, int]]

#: A CDG node: (directed channel index, virtual channel).
CdgNode = Tuple[int, int]


@dataclass(frozen=True)
class Certification:
    """Outcome of certifying one (topology, routing, VC) configuration."""

    name: str
    ok: bool
    num_routes: int
    num_nodes: int
    num_edges: int
    #: The counterexample cycle as CDG nodes, when the proof failed.
    cycle: Optional[List[CdgNode]] = None
    #: Human-readable rendering of ``cycle`` (one line per buffer).
    cycle_description: Optional[str] = None

    def summary(self) -> str:
        verdict = "deadlock-free" if self.ok else "CYCLIC"
        return (
            f"{self.name}: {verdict} "
            f"({self.num_routes} routes, {self.num_nodes} buffers, "
            f"{self.num_edges} dependencies)"
        )


def cdg_from_traces(fabric: Fabric, traces: Iterable[Trace]) -> Tuple[nx.DiGraph, int]:
    """Build the (channel, VC) dependency graph of a set of route traces.

    Returns the graph and the number of traces consumed.  A dependency
    edge is added between every pair of *consecutive* buffers a route
    occupies: holding buffer ``i`` while requesting buffer ``i+1``.
    (Unlike the abstract channel-class analysis, no subsequence closure
    is needed -- the enumeration includes every admissible route, so
    skipped-hop variants appear as their own traces.)
    """
    graph: nx.DiGraph = nx.DiGraph()
    num_routes = 0
    for trace in traces:
        num_routes += 1
        previous: Optional[CdgNode] = None
        for router, port, vc in trace:
            channel = fabric.out_channel(router, port)
            if channel is None:
                break  # ejection: terminal ports hold no network buffer
            node = (channel.index, vc)
            graph.add_node(node)
            if previous is not None:
                graph.add_edge(previous, node)
            previous = node
    return graph, num_routes


def find_counterexample(graph: nx.DiGraph) -> Optional[List[CdgNode]]:
    """A concrete buffer cycle, or None when the graph is acyclic."""
    try:
        edges = nx.find_cycle(graph, orientation="original")
    except nx.NetworkXNoCycle:
        return None
    return [edge[0] for edge in edges]


def describe_cycle(fabric: Fabric, cycle: List[CdgNode]) -> str:
    """Render a buffer cycle as one 'holds ... waits for ...' line per hop."""
    lines = []
    for i, (channel_index, vc) in enumerate(cycle):
        channel = fabric.channels[channel_index]
        nxt_channel, nxt_vc = cycle[(i + 1) % len(cycle)]
        nxt = fabric.channels[nxt_channel]
        lines.append(
            f"  packet holding {channel.kind.value} channel "
            f"{channel.src.router}->{channel.dst.router} VC{vc} "
            f"waits for {nxt.kind.value} channel "
            f"{nxt.src.router}->{nxt.dst.router} VC{nxt_vc}"
        )
    return "\n".join(lines)


def certify(name: str, fabric: Fabric, traces: Iterable[Trace]) -> Certification:
    """Certify one configuration: build the CDG and prove acyclicity."""
    graph, num_routes = cdg_from_traces(fabric, traces)
    cycle = find_counterexample(graph)
    return Certification(
        name=name,
        ok=cycle is None,
        num_routes=num_routes,
        num_nodes=graph.number_of_nodes(),
        num_edges=graph.number_of_edges(),
        cycle=cycle,
        cycle_description=describe_cycle(fabric, cycle) if cycle else None,
    )


# ----------------------------------------------------------------------
# Route enumeration, one generator per topology/routing family.  Each
# yields full (router, port, vc) traces produced by the *real* executors.
# ----------------------------------------------------------------------
def dragonfly_traces(
    topology: Dragonfly,
    assignment: vcs.VcAssignment = vcs.CANONICAL,
    include_nonminimal: bool = True,
) -> Iterator[Trace]:
    """Every admissible dragonfly route under the given assignment.

    Minimal routes: every source router x destination terminal x global
    channel between the two groups.  Non-minimal (Valiant) routes: the
    same, additionally over every intermediate group and every second
    global channel.  This is a superset of what MIN/VAL/UGAL-* can emit
    (their tie-breaks select among these links), so the certificate
    covers all of them.
    """
    include_nonminimal = include_nonminimal and assignment.supports_nonminimal
    for src_router in range(topology.fabric.num_routers):
        src_group = topology.group_of(src_router)
        for dst_terminal in range(topology.num_terminals):
            dst_router = topology.terminal_router(dst_terminal)
            dst_group = topology.group_of(dst_router)
            if src_group == dst_group:
                yield walk_route(
                    topology, src_router, dst_terminal,
                    RoutePlan(minimal=True), assignment,
                )
                continue
            for gc1 in topology.group_links(src_group, dst_group):
                yield walk_route(
                    topology, src_router, dst_terminal,
                    RoutePlan(minimal=True, gc1=gc1), assignment,
                )
            if not include_nonminimal:
                continue
            for mid_group in range(topology.g):
                if mid_group in (src_group, dst_group):
                    continue
                for gc1 in topology.group_links(src_group, mid_group):
                    for gc2 in topology.group_links(mid_group, dst_group):
                        yield walk_route(
                            topology, src_router, dst_terminal,
                            RoutePlan(minimal=False, gc1=gc1, gc2=gc2),
                            assignment,
                        )


def variant_traces(
    topology: FlattenedButterflyGroupDragonfly,
    assignment: vcs.VcAssignment = vcs.CANONICAL,
    include_nonminimal: bool = True,
) -> Iterator[Trace]:
    """Every admissible route on a Figure 6 group-variant dragonfly."""
    include_nonminimal = include_nonminimal and assignment.supports_nonminimal
    for src_router in range(topology.num_routers):
        src_group = topology.group_of(src_router)
        for dst_terminal in range(topology.num_terminals):
            dst_router = topology.terminal_router(dst_terminal)
            dst_group = topology.group_of(dst_router)
            if src_group == dst_group:
                yield variant_walk_route(
                    topology, src_router, dst_terminal,
                    RoutePlan(minimal=True), assignment,
                )
                continue
            for gc1 in topology.group_links(src_group, dst_group):
                yield variant_walk_route(
                    topology, src_router, dst_terminal,
                    RoutePlan(minimal=True, gc1=gc1), assignment,
                )
            if not include_nonminimal:
                continue
            for mid_group in range(topology.g):
                if mid_group in (src_group, dst_group):
                    continue
                for gc1 in topology.group_links(src_group, mid_group):
                    for gc2 in topology.group_links(mid_group, dst_group):
                        yield variant_walk_route(
                            topology, src_router, dst_terminal,
                            RoutePlan(minimal=False, gc1=gc1, gc2=gc2),
                            assignment,
                        )


def flattened_butterfly_traces(
    topology: FlattenedButterfly,
    include_nonminimal: bool = True,
) -> Iterator[Trace]:
    """Every DOR route, plus every router-level Valiant route."""
    for src_router in range(topology.num_routers):
        for dst_terminal in range(topology.num_terminals):
            yield fb_walk_route(
                topology, src_router, dst_terminal, FbRoutePlan(minimal=True)
            )
            if not include_nonminimal:
                continue
            dst_router = topology.terminal_router(dst_terminal)
            for mid in range(topology.num_routers):
                if mid in (src_router, dst_router):
                    continue
                yield fb_walk_route(
                    topology, src_router, dst_terminal,
                    FbRoutePlan(minimal=False, intermediate_router=mid),
                )


def torus_traces(
    topology: Torus,
    include_nonminimal: bool = True,
) -> Iterator[Trace]:
    """Every dateline-DOR route, plus every router-level Valiant route."""
    for src_router in range(topology.num_routers):
        for dst_terminal in range(topology.num_terminals):
            yield torus_walk_route(
                topology, src_router, dst_terminal, TorusRoutePlan(minimal=True)
            )
            if not include_nonminimal:
                continue
            dst_router = topology.terminal_router(dst_terminal)
            for mid in range(topology.num_routers):
                if mid in (src_router, dst_router):
                    continue
                yield torus_walk_route(
                    topology, src_router, dst_terminal,
                    TorusRoutePlan(minimal=False, intermediate_router=mid),
                )


def folded_clos_traces(topology: FoldedClos) -> Iterator[Trace]:
    """Every up*/down* route over every possible up-port choice.

    Covers both CLOS-RAND (all up-port tuples are enumerated) and
    CLOS-DET (whose d-mod-k tuple is one of them).
    """
    for src_leaf in range(topology.switches_per_level):
        src_router = topology.switch_id(0, src_leaf)
        for dst_terminal in range(topology.num_terminals):
            dst_leaf = topology.terminal_router(dst_terminal)
            ancestor = topology.ancestor_level(src_leaf, dst_leaf)
            for up_ports in itertools.product(
                range(topology.down), repeat=ancestor
            ):
                plan = ClosRoutePlan(
                    minimal=True, ancestor_level=ancestor, up_ports=up_ports
                )
                yield clos_walk_route(topology, src_router, dst_terminal, plan)


def max_vc_used(traces: Iterable[Trace]) -> int:
    """Highest VC index any non-ejection hop of any trace uses."""
    highest = 0
    for trace in traces:
        for _, _, vc in trace[:-1] if trace else []:
            highest = max(highest, vc)
    return highest
