"""Static verification of compiled forwarding tables (``TBL0xx``).

The CDG and symbolic passes prove the routing *code* deadlock-free.  A
deployed machine runs neither: a controller programs per-router
forwarding tables (:mod:`repro.routing.tables`), and anything between
the compiler and the switch firmware -- a buggy recompile, a truncated
upload, a hand-edit during an incident -- can invalidate the proof.
This pass certifies the *tables themselves*, so the gate covers the
configuration actually deployed:

* ``TBL001`` -- the table-level channel-dependency graph is cyclic.
  Every admissible route is walked **through the tables** and the
  resulting traces feed the PR 1 CDG machinery
  (:func:`repro.check.cdg.certify`); a cycle is rendered as the usual
  holds/waits chain, annotated with the table entries (router, key,
  via) that program each buffer in the cycle -- the provenance a
  controller operator needs to find the bad entry.
* ``TBL002`` -- reachability/walk failure: a route's table walk hit a
  missing key, an ambiguous candidate set, or the loop bound, or the
  configuration failed to compile at all.
* ``TBL003`` -- a table walk's (kind, VC, role) hop sequence is not a
  sentence of the family's published :class:`PathGrammar`: the tables
  violate the VC-monotonicity discipline the symbolic certificate
  assumes.
* ``TBL004`` -- round-trip failure: exporting to the versioned JSON
  format and importing it back must reproduce structurally identical
  tables and identical walks.
* ``TBL005`` -- a table walk diverged from the algorithmic executor's
  trace for the same route decision (healthy configurations only;
  fault-degraded tables have no algorithmic counterpart).
* ``TBL006``/``TBL007`` -- negative-control bookkeeping, mirroring
  ``CDG002``/``CDG003``: an expected counterexample is reported as
  evidence (INFO), a negative control that certifies clean has rotted
  (ERROR).

Fault-degraded dragonfly table sets (:func:`degraded_configurations`)
are certified alongside the healthy registry: the verifier either
proves the degraded tables deadlock-free, reachable, and
grammar-consistent, or prints the counterexample.
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.params import DragonflyParams
from ..routing.grammar import PathGrammar, Segment
from ..routing.tables import (
    DegradedDragonflyLowering,
    ForwardingTables,
    Lowering,
    RouteCase,
    TableCompileError,
    TableRouteError,
    table_walk_route,
)
from ..topology.dragonfly import Dragonfly
from ..topology.faults import FaultSet
from .cdg import CdgNode, certify, describe_cycle
from .report import Finding, Severity

#: Cap on per-category example findings; the rest is summarised so a
#: systematically broken table set cannot flood the report.
MAX_EXAMPLES = 5

#: Number of route cases re-walked on the imported tables during the
#: round-trip check (structural equality already implies identical
#: lookups; the re-walk is an end-to-end spot check of the decoder).
ROUNDTRIP_WALKS = 50


@dataclass
class TableCertification:
    """Outcome of certifying one configuration's compiled tables."""

    name: str
    findings: List[Finding] = field(default_factory=list)
    num_entries: int = 0
    num_cases: int = 0
    num_pairs: int = 0
    #: The compiled tables (None when compilation itself failed).
    tables: Optional[ForwardingTables] = None
    #: Rendering of the table-CDG counterexample, when one exists.
    cycle_description: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def cyclic(self) -> bool:
        return any(f.code == "TBL001" for f in self.findings)

    def summary(self) -> str:
        verdict = "certified" if self.ok else "REFUTED"
        return (
            f"{self.name}: {verdict} ({self.num_entries} entries, "
            f"{self.num_cases} routes over {self.num_pairs} pairs)"
        )


def _matches_grammar(
    grammar: PathGrammar, hops: Sequence[Tuple[str, int, str]]
) -> bool:
    """True when some route class consumes exactly the hop sequence.

    Backtracking over the segments: a non-optional segment consumes at
    least one hop of its class, ``multi_hop`` segments consume any
    number of consecutive ones.  Mirrors the abstraction contract in
    :mod:`repro.routing.grammar`.
    """
    for route_class in grammar.route_classes:
        if _segments_consume(route_class.segments, hops):
            return True
    return False


def _segments_consume(
    segments: Tuple[Segment, ...], hops: Sequence[Tuple[str, int, str]]
) -> bool:
    def rec(si: int, hi: int) -> bool:
        if si == len(segments):
            return hi == len(hops)
        segment = segments[si]
        wanted = (segment.cls.kind, segment.cls.vc, segment.cls.role)
        if segment.optional and rec(si + 1, hi):
            return True
        consumed = 0
        while hi + consumed < len(hops) and hops[hi + consumed] == wanted:
            consumed += 1
            if rec(si + 1, hi + consumed):
                return True
            if not segment.multi_hop:
                break
        return False

    return rec(0, 0)


def annotate_cycle(
    lowering: Lowering, tables: ForwardingTables, cycle: List[CdgNode]
) -> str:
    """The PR 1 holds/waits rendering plus table provenance per buffer."""
    fabric = lowering.topology.fabric
    emitters: Dict[Tuple[int, int, int], List[str]] = {}
    for router, key, entry in tables.entries():
        channel = fabric.out_channel(router, entry.out_port)
        if channel is None:
            continue
        via = f" via {entry.via}" if entry.via is not None else ""
        emitters.setdefault((router, entry.out_port, entry.out_vc), []).append(
            f"key {key[0]}/{key[1]}/{key[2]}{via}"
        )
    lines = [describe_cycle(fabric, cycle), "  table provenance:"]
    for channel_index, vc in cycle:
        channel = fabric.channels[channel_index]
        sources = emitters.get((channel.src.router, channel.src.port, vc), [])
        shown = ", ".join(sources[:3])
        if len(sources) > 3:
            shown += f", and {len(sources) - 3} more"
        lines.append(
            f"    channel {channel.src.router}->{channel.dst.router} VC{vc} "
            f"programmed at router {channel.src.router} by "
            f"{shown if sources else 'NO table entry (stale buffer?)'}"
        )
    return "\n".join(lines)


def certify_tables(name: str, lowering: Lowering) -> TableCertification:
    """Compile one configuration's tables and run every TBL check."""
    result = TableCertification(name=name)

    def add(code: str, message: str) -> None:
        result.findings.append(Finding(code, Severity.ERROR, name, message))

    try:
        tables = lowering.compile()
    except TableCompileError as error:
        add("TBL002", f"table compilation failed: {error}")
        return result
    result.tables = tables
    result.num_entries = tables.num_entries()
    topology = lowering.topology
    grammar = lowering.grammar()

    traces = []
    pairs_total: set = set()
    pairs_reached: set = set()
    walk_failures: List[str] = []
    grammar_failures: List[str] = []
    divergences: List[str] = []
    roundtrip_sample: List[Tuple[RouteCase, tuple]] = []
    for case in lowering.cases():
        result.num_cases += 1
        pair = (case.src_router, case.dst_terminal)
        pairs_total.add(pair)
        try:
            walk = table_walk_route(
                topology, tables, case.src_router, case.dst_terminal, case.legs
            )
        except TableRouteError as error:
            walk_failures.append(f"{case.label}: {error}")
            continue
        pairs_reached.add(pair)
        traces.append(walk)
        if len(roundtrip_sample) < ROUNDTRIP_WALKS:
            roundtrip_sample.append((case, tuple(walk)))
        if case.algorithmic is not None and tuple(walk) != case.algorithmic:
            divergences.append(
                f"{case.label}: tables walked {walk}, "
                f"executor walked {list(case.algorithmic)}"
            )
        hops = [
            lowering.classify_hop(router, port, vc)
            for router, port, vc in walk[:-1]
        ]
        if not _matches_grammar(grammar, hops):
            grammar_failures.append(
                f"{case.label}: hop classes {hops} match no route class "
                f"of {grammar.name}"
            )
    result.num_pairs = len(pairs_total)

    for example in walk_failures[:MAX_EXAMPLES]:
        add("TBL002", f"table walk failed: {example}")
    if len(walk_failures) > MAX_EXAMPLES:
        add(
            "TBL002",
            f"{len(walk_failures) - MAX_EXAMPLES} further walk failures "
            "suppressed",
        )
    unreachable = pairs_total - pairs_reached
    if unreachable:
        src, dst = sorted(unreachable)[0]
        add(
            "TBL002",
            f"{len(unreachable)} (source router, destination terminal) "
            f"pair(s) have no surviving table route, e.g. router {src} -> "
            f"terminal {dst}",
        )
    for example in divergences[:MAX_EXAMPLES]:
        add("TBL005", f"table walk diverged from the executor: {example}")
    if len(divergences) > MAX_EXAMPLES:
        add(
            "TBL005",
            f"{len(divergences) - MAX_EXAMPLES} further divergences suppressed",
        )
    for example in grammar_failures[:MAX_EXAMPLES]:
        add("TBL003", f"grammar violation: {example}")
    if len(grammar_failures) > MAX_EXAMPLES:
        add(
            "TBL003",
            f"{len(grammar_failures) - MAX_EXAMPLES} further grammar "
            "violations suppressed",
        )

    certification = certify(name, topology.fabric, traces)
    if not certification.ok:
        assert certification.cycle is not None
        result.cycle_description = annotate_cycle(
            lowering, tables, certification.cycle
        )
        add(
            "TBL001",
            "table-level channel-dependency graph is CYCLIC; "
            "counterexample deadlock cycle:\n" + result.cycle_description,
        )

    restored = ForwardingTables.from_json_dict(
        json.loads(json.dumps(tables.to_json_dict()))
    )
    if restored != tables:
        add(
            "TBL004",
            "export -> import round trip is not structurally identical",
        )
    else:
        for case, walk in roundtrip_sample:
            try:
                rewalk = tuple(table_walk_route(
                    topology, restored, case.src_router, case.dst_terminal,
                    case.legs,
                ))
            except TableRouteError as error:
                add("TBL004", f"imported tables failed {case.label}: {error}")
                break
            if rewalk != walk:
                add(
                    "TBL004",
                    f"imported tables walk {case.label} differently: "
                    f"{list(rewalk)} vs {list(walk)}",
                )
                break
    return result


# ----------------------------------------------------------------------
# Degraded configurations certified alongside the healthy registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DegradedConfiguration:
    """One fault scenario whose recompiled tables the pass certifies."""

    name: str
    description: str
    build: Callable[[], DegradedDragonflyLowering]


def degraded_configurations() -> List[DegradedConfiguration]:
    """Fault scenarios certified by ``python -m repro.check tables``.

    The default scenario hits the paper-72 dragonfly with all three
    fault shapes at once: a dead global cable (groups 0 and 1 lose their
    only direct link, forcing detours through a third group), a dead
    local cable (routers 2 and 3 stop talking directly, exercising the
    local repair pass), and a dead router (router 35 takes its two
    global links and both terminals down with it, disconnecting group 8
    from two more groups).
    """

    def build() -> DegradedDragonflyLowering:
        topology = Dragonfly(DragonflyParams.paper_example_72())
        global_link = topology.group_links(0, 1)[0]
        faults = FaultSet.of(
            links=[
                (global_link.src_router, global_link.dst_router),
                (2, 3),
            ],
            routers=[35],
        )
        return DegradedDragonflyLowering(topology, faults)

    return [
        DegradedConfiguration(
            name="dragonfly-degraded/MIN+detours@figure7-3vc",
            description=(
                "paper-72 dragonfly minus one global cable, one local "
                "cable and one router; minimal tables with detours"
            ),
            build=build,
        ),
    ]


def export_filename(name: str) -> str:
    """A filesystem-safe file name for one configuration's table JSON."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("_") + ".json"


def run_tables_pass(
    demo_broken: bool = False,
    export_dir: Optional[str] = None,
) -> "CheckReport":
    """Certify every registry configuration's compiled tables.

    Mirrors the cdg pass's negative-control idiom: configurations
    documented as deadlocking must be *refuted* by the table CDG (their
    counterexample is reported as INFO evidence); one that certifies
    clean has rotted and fails the gate.  With ``export_dir`` set, every
    compiled table set is exported to its versioned JSON file.
    """
    from .registry import all_configurations, broken_configuration
    from .report import CheckReport

    report = CheckReport(pass_name="tables")
    jobs: List[Tuple[str, Lowering, bool]] = []
    configurations = list(all_configurations())
    if demo_broken:
        configurations.append(broken_configuration())
    for configuration in configurations:
        if configuration.tables is None:
            report.note(
                f"{configuration.name}: no table lowering registered; "
                "skipped (cdg pass still covers it)"
            )
            continue
        jobs.append((
            configuration.name,
            configuration.tables(),
            configuration.expect_deadlock_free,
        ))
    for degraded in degraded_configurations():
        jobs.append((degraded.name, degraded.build(), True))

    for name, lowering, expect_clean in jobs:
        result = certify_tables(name, lowering)
        report.note(result.summary())
        if expect_clean:
            report.extend(result.findings)
        elif result.cyclic:
            # The negative control was refuted, as documented: keep the
            # counterexample as evidence, drop the expected findings.
            report.add(
                "TBL006", Severity.INFO, name,
                "expected table-level counterexample found:\n"
                + (result.cycle_description or ""),
            )
        else:
            report.add(
                "TBL007", Severity.ERROR, name,
                "tables documented as deadlocking were certified acyclic; "
                "negative control has rotted",
            )
        if export_dir is not None and result.tables is not None:
            directory = pathlib.Path(export_dir)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / export_filename(name)
            result.tables.dump(str(path))
            report.note(f"{name}: tables exported to {path}")
    return report
