"""Runtime conservation sanitizer for the flit-level simulator.

The simulator's hot path maintains redundant flattened state (buffer
counters, credit counters, pending counters, active-set bitmasks,
calendar-queue rings) precisely so each phase touches as little of it as
possible -- which means a single missed decrement silently corrupts a
run instead of crashing it.  This module audits the *global* conservation
laws those structures must jointly satisfy:

* **SAN001** -- every buffer occupancy and credit counter stays within
  ``[0, vc_buffer_depth]``;
* **SAN002** -- credit conservation: per network (channel, VC), free
  credits + flits buffered downstream + flits in flight on the channel
  + credits in flight back upstream always equals the buffer depth;
* **SAN003** -- flit conservation: every flit ever created is exactly
  one of queued-at-source, in mid-injection, buffered in a router, in
  flight on a channel, or delivered;
* **SAN004** -- active-set consistency: pending counters match queue
  contents, port bitmasks match pending counters, the active-router set
  matches the bitmasks, and the stream table matches the queues;
* **SAN005** -- calendar-ring / overflow-map consistency: overflow
  entries are strictly in the future and every scheduled event carries
  in-range indices.

The laws hold at phase boundaries of the run loop; the hooks in
:class:`~repro.network.simulator.Simulator` audit after the switch phase.
Everything is opt-in via ``REPRO_SANITIZE=1`` (stride configurable with
``REPRO_SANITIZE_STRIDE``, default 64 cycles) so the disabled-mode cost
is one predicate per cycle.

Every check reads engine state through the backend-neutral
:meth:`~repro.network.simulator.Simulator.state_view`, never through
backend-private fields -- so the same audits run unchanged against the
scalar engine and the numpy array backend
(:mod:`repro.network.array_backend`), whose state view synthesises the
active-set answers that backend keeps only implicitly.
"""

from __future__ import annotations

import os
from collections import Counter
from typing import TYPE_CHECKING, Iterable, List, Optional

from .report import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..network.simulator import Simulator, SimulatorStateView

#: Cycles between periodic audits when ``REPRO_SANITIZE_STRIDE`` is unset.
DEFAULT_STRIDE = 64

ENV_ENABLE = "REPRO_SANITIZE"
ENV_STRIDE = "REPRO_SANITIZE_STRIDE"


def sanitizer_enabled() -> bool:
    """True when the environment opts into runtime sanitizing."""
    return os.environ.get(ENV_ENABLE, "") not in ("", "0")


def stride_from_env() -> int:
    raw = os.environ.get(ENV_STRIDE, "")
    if not raw:
        return DEFAULT_STRIDE
    try:
        stride = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{ENV_STRIDE} must be a positive integer, got {raw!r}"
        ) from exc
    if stride < 1:
        raise ValueError(f"{ENV_STRIDE} must be >= 1, got {stride}")
    return stride


class SanitizerError(RuntimeError):
    """A conservation law failed; ``findings`` holds the violations."""

    def __init__(self, findings: Iterable[Finding]) -> None:
        self.findings = list(findings)
        super().__init__(
            "\n".join(finding.format() for finding in self.findings)
        )


def _error(code: str, location: str, message: str) -> Finding:
    return Finding(
        code=code, severity=Severity.ERROR, location=location, message=message
    )


def _range_findings(view: "SimulatorStateView") -> List[Finding]:
    """SAN001: occupancy and credit counters within the buffer depth."""
    findings = []
    depth = view.depth
    rv = view.rv
    for slot, count in enumerate(view.buf_count):
        if not 0 <= count <= depth:
            router, index = divmod(slot, rv)
            findings.append(_error(
                "SAN001",
                f"router {router} input slot {index}",
                f"buffer occupancy {count} outside [0, {depth}]",
            ))
    for slot, count in enumerate(view.credits):
        if not 0 <= count <= depth:
            router, index = divmod(slot, rv)
            findings.append(_error(
                "SAN001",
                f"router {router} output slot {index}",
                f"credit counter {count} outside [0, {depth}]",
            ))
    return findings


def _inflight_credits(view: "SimulatorStateView") -> Counter:
    """Credits in flight upstream, keyed by the credit (output VC) slot."""
    inflight: Counter = Counter()
    for batch in view.credit_ring:
        for credit_idx, _ in batch:
            inflight[credit_idx] += 1
    for batch in view.credit_overflow.values():
        for credit_idx, _ in batch:
            inflight[credit_idx] += 1
    return inflight


def _inflight_arrivals(view: "SimulatorStateView") -> Counter:
    """Flits in flight on channels, keyed by the destination input slot."""
    inflight: Counter = Counter()
    for batch in view.arrival_ring:
        for _, in_idx, _flit in batch:
            inflight[in_idx] += 1
    return inflight


def _credit_findings(view: "SimulatorStateView") -> List[Finding]:
    """SAN002: per (network channel, VC) credit conservation.

    Each downstream input slot is fed by exactly one channel, so for
    every slot the four disjoint places a buffer's worth of capacity can
    be (free upstream credit, flit in flight downstream, flit buffered
    downstream, credit in flight upstream) must sum to the depth.
    """
    findings = []
    depth = view.depth
    radix = view.radix
    vcs = view.vcs
    credits = view.credits
    buf_count = view.buf_count
    credit_inflight = _inflight_credits(view)
    arrival_inflight = _inflight_arrivals(view)
    for router in range(view.num_routers):
        for port in view.network_ports[router]:
            p_idx = router * radix + port
            info = view.channel_info[p_idx]
            if info is None:
                continue
            dst_base = info[1]
            for vc in range(vcs):
                out_idx = p_idx * vcs + vc
                dst_slot = dst_base + vc
                total = (
                    credits[out_idx]
                    + buf_count[dst_slot]
                    + arrival_inflight[dst_slot]
                    + credit_inflight[out_idx]
                )
                if total != depth:
                    findings.append(_error(
                        "SAN002",
                        f"router {router} port {port} VC {vc}",
                        f"credit conservation violated: {credits[out_idx]} "
                        f"free + {buf_count[dst_slot]} buffered + "
                        f"{arrival_inflight[dst_slot]} arriving + "
                        f"{credit_inflight[out_idx]} credits in flight "
                        f"= {total}, expected depth {depth}",
                    ))
    return findings


def _flit_findings(view: "SimulatorStateView") -> List[Finding]:
    """SAN003: every flit ever created is in exactly one place."""
    findings = []
    packet_size = view.config.packet_size
    created = view.packet_counter * packet_size
    at_source = sum(len(queue) for queue in view.source_queue) * packet_size
    mid_injection = sum(len(queue) for queue in view.inflight_injection)
    buffered = int(sum(view.buf_count))
    arriving = sum(len(batch) for batch in view.arrival_ring)
    delivered = view.flits_delivered
    total = at_source + mid_injection + buffered + arriving + delivered
    if total != created:
        findings.append(_error(
            "SAN003",
            "network",
            f"flit conservation violated: {at_source} at source + "
            f"{mid_injection} mid-injection + {buffered} buffered + "
            f"{arriving} arriving + {delivered} delivered = {total}, "
            f"expected {created} ({view.packet_counter} packets x "
            f"{packet_size} flits)",
        ))
    queued = int(sum(view.pending))
    if buffered != queued:
        findings.append(_error(
            "SAN003",
            "network",
            f"buffered flits ({buffered}) disagree with queued flits "
            f"({queued}): input-side and output-side accounting drifted",
        ))
    return findings


def _active_set_findings(view: "SimulatorStateView") -> List[Finding]:
    """SAN004: pending counters, bitmasks, active set and stream table."""
    findings = []
    radix = view.radix
    vcs = view.vcs
    rv = view.rv
    multi_flit = view.multi_flit
    out_q = view.out_q
    pending_vc = view.pending_vc
    pending = view.pending
    queued_streams = 0
    for router in range(view.num_routers):
        vbase = router * rv
        pbase = router * radix
        mask = 0
        for port in range(radix):
            queued = 0
            for vc in range(vcs):
                out_idx = vbase + port * vcs + vc
                queue = out_q[out_idx]
                if multi_flit:
                    queued_streams += len(queue)
                    in_queue = sum(len(stream.flits) for stream in queue)
                else:
                    in_queue = len(queue)
                if pending_vc[out_idx] != in_queue:
                    findings.append(_error(
                        "SAN004",
                        f"router {router} port {port} VC {vc}",
                        f"pending-VC counter {pending_vc[out_idx]} disagrees "
                        f"with {in_queue} queued flits",
                    ))
                queued += pending_vc[out_idx]
            if queued != pending[pbase + port]:
                findings.append(_error(
                    "SAN004",
                    f"router {router} port {port}",
                    f"pending counter {pending[pbase + port]} disagrees "
                    f"with per-VC sum {queued}",
                ))
            if queued > 0:
                mask |= 1 << port
        engine_mask = view.active_port_mask(router)
        if mask != engine_mask:
            findings.append(_error(
                "SAN004",
                f"router {router}",
                f"active port mask {engine_mask:#x} disagrees "
                f"with recomputed {mask:#x}",
            ))
        if view.router_marked_active(router) != bool(mask):
            findings.append(_error(
                "SAN004",
                f"router {router}",
                "active-router set disagrees with the port mask",
            ))
    if multi_flit and len(view.streams) != queued_streams:
        findings.append(_error(
            "SAN004",
            "network",
            f"stream table holds {len(view.streams)} open streams but the "
            f"output queues hold {queued_streams}",
        ))
    return findings


def _ring_findings(view: "SimulatorStateView") -> List[Finding]:
    """SAN005: calendar rings and the credit overflow map."""
    findings = []
    now = view.now
    slots = view.num_routers * view.rv
    ports = view.num_routers * view.radix
    for when, batch in sorted(view.credit_overflow.items()):
        if when <= now:
            findings.append(_error(
                "SAN005",
                f"credit overflow @{when}",
                f"stranded overflow entry at or before cycle {now}: the "
                "drain pass would never pop it",
            ))
        if not batch:
            findings.append(_error(
                "SAN005",
                f"credit overflow @{when}",
                "empty overflow batch kept alive in the map",
            ))
    for source in (view.credit_ring, view.credit_overflow.values()):
        for batch in source:
            for credit_idx, up_p_idx in batch:
                if not 0 <= credit_idx < slots or not 0 <= up_p_idx < ports:
                    findings.append(_error(
                        "SAN005",
                        "credit ring",
                        f"credit event ({credit_idx}, {up_p_idx}) outside "
                        f"the {slots}-slot / {ports}-port state",
                    ))
    for batch in view.arrival_ring:
        for dst_router, in_idx, _flit in batch:
            if not 0 <= dst_router < view.num_routers or not 0 <= in_idx < slots:
                findings.append(_error(
                    "SAN005",
                    "arrival ring",
                    f"arrival event (router {dst_router}, slot {in_idx}) "
                    f"outside the {view.num_routers}-router fabric",
                ))
    return findings


def structural_findings(sim: "Simulator") -> List[Finding]:
    """Counter-range and active-set checks (SAN001, SAN004) only.

    These hold between any two statements of the hot path that keep
    their structures in lockstep, so they are safe to assert mid-run;
    :meth:`~repro.network.simulator.Simulator.check_invariants` uses
    exactly this subset.
    """
    view = sim.state_view()
    return _range_findings(view) + _active_set_findings(view)


def audit_simulator(sim: "Simulator") -> List[Finding]:
    """Every conservation law (SAN001-SAN005), valid at phase boundaries."""
    view = sim.state_view()
    return (
        _range_findings(view)
        + _credit_findings(view)
        + _flit_findings(view)
        + _active_set_findings(view)
        + _ring_findings(view)
    )


class SimulatorSanitizer:
    """Periodic auditor attached to a simulator run.

    ``maybe_audit`` runs the full audit every ``stride`` cycles and
    raises :class:`SanitizerError` as soon as any law is violated, so a
    corruption is localised to within one stride of its cause.
    """

    __slots__ = ("stride",)

    def __init__(self, stride: Optional[int] = None) -> None:
        self.stride = stride_from_env() if stride is None else stride
        if self.stride < 1:
            raise ValueError(f"sanitizer stride must be >= 1, got {self.stride}")

    def maybe_audit(self, sim: "Simulator", now: int) -> None:
        if now % self.stride:
            return
        self.audit(sim)

    def audit(self, sim: "Simulator") -> None:
        findings = audit_simulator(sim)
        if findings:
            raise SanitizerError(findings)


def sanitizer_from_env() -> Optional[SimulatorSanitizer]:
    """The sanitizer the environment asks for, or None when disabled."""
    if not sanitizer_enabled():
        return None
    return SimulatorSanitizer()
