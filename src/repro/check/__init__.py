"""Static analysis for the dragonfly reproduction (``python -m repro.check``).

Four passes certify correctness *before* any simulation runs:

* :mod:`repro.check.cdg` -- channel-dependency-graph certification of
  deadlock freedom for every registered (topology, routing, VC
  assignment) configuration, with concrete counterexample cycles on
  failure;
* :mod:`repro.check.symbolic` -- channel-class (family-level) deadlock
  certification from path grammars, covering every (a, p, h, g) at once
  and cross-checked against the concrete enumerator;
* :mod:`repro.check.invariants` -- topology invariant linter for the
  paper's parameter algebra and fabric wiring;
* :mod:`repro.check.lint` -- repo-specific AST lint (seeded randomness,
  ``__slots__`` on hot-path classes, no ``print`` in library code, no
  ``assert`` in the network engine).

:mod:`repro.check.sanitizer` additionally instruments *running*
simulations (``REPRO_SANITIZE=1``) with flit/credit conservation audits.

See ``docs/static-analysis.md`` for usage and for how to register a new
routing algorithm with the certifier.
"""

from .cdg import (
    Certification,
    cdg_from_traces,
    certify,
    describe_cycle,
    dragonfly_traces,
    find_counterexample,
    flattened_butterfly_traces,
    folded_clos_traces,
    torus_traces,
    variant_traces,
)
from .invariants import (
    audit_dragonfly,
    audit_fabric,
    audit_flattened_butterfly,
    audit_folded_clos,
    audit_topology,
    audit_torus,
    default_topology_audits,
)
from .lint import lint_file, lint_sources, lint_tree
from .registry import (
    CheckConfiguration,
    SymbolicScaleConfiguration,
    all_configurations,
    broken_configuration,
    default_configurations,
    register,
    symbolic_scale_configurations,
)
from .report import CheckReport, Finding, Severity, combined_exit_code
from .sanitizer import (
    SanitizerError,
    SimulatorSanitizer,
    audit_simulator,
    sanitizer_from_env,
    structural_findings,
)
from .symbolic import (
    CrossCheck,
    SymbolicCertification,
    certify_grammar,
    class_dependency_graph,
    cross_check,
    describe_symbolic_cycle,
    find_symbolic_counterexample,
    soundness_harness,
)

__all__ = [
    "Certification",
    "CheckConfiguration",
    "CheckReport",
    "CrossCheck",
    "Finding",
    "SanitizerError",
    "Severity",
    "SimulatorSanitizer",
    "SymbolicCertification",
    "SymbolicScaleConfiguration",
    "all_configurations",
    "audit_simulator",
    "audit_dragonfly",
    "audit_fabric",
    "audit_flattened_butterfly",
    "audit_folded_clos",
    "audit_topology",
    "audit_torus",
    "broken_configuration",
    "cdg_from_traces",
    "certify",
    "certify_grammar",
    "class_dependency_graph",
    "combined_exit_code",
    "cross_check",
    "default_configurations",
    "default_topology_audits",
    "describe_cycle",
    "describe_symbolic_cycle",
    "dragonfly_traces",
    "find_counterexample",
    "find_symbolic_counterexample",
    "flattened_butterfly_traces",
    "folded_clos_traces",
    "lint_file",
    "lint_sources",
    "lint_tree",
    "register",
    "sanitizer_from_env",
    "soundness_harness",
    "structural_findings",
    "symbolic_scale_configurations",
    "torus_traces",
    "variant_traces",
]
