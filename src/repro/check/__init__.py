"""Static analysis for the dragonfly reproduction (``python -m repro.check``).

Three passes certify correctness *before* any simulation runs:

* :mod:`repro.check.cdg` -- channel-dependency-graph certification of
  deadlock freedom for every registered (topology, routing, VC
  assignment) configuration, with concrete counterexample cycles on
  failure;
* :mod:`repro.check.invariants` -- topology invariant linter for the
  paper's parameter algebra and fabric wiring;
* :mod:`repro.check.lint` -- repo-specific AST lint (seeded randomness,
  ``__slots__`` on hot-path classes, no ``print`` in library code).

See ``docs/static-analysis.md`` for usage and for how to register a new
routing algorithm with the certifier.
"""

from .cdg import (
    Certification,
    cdg_from_traces,
    certify,
    describe_cycle,
    dragonfly_traces,
    find_counterexample,
    flattened_butterfly_traces,
    folded_clos_traces,
    torus_traces,
    variant_traces,
)
from .invariants import (
    audit_dragonfly,
    audit_fabric,
    audit_flattened_butterfly,
    audit_folded_clos,
    audit_topology,
    audit_torus,
    default_topology_audits,
)
from .lint import lint_file, lint_sources, lint_tree
from .registry import (
    CheckConfiguration,
    all_configurations,
    broken_configuration,
    default_configurations,
    register,
)
from .report import CheckReport, Finding, Severity, combined_exit_code

__all__ = [
    "Certification",
    "CheckConfiguration",
    "CheckReport",
    "Finding",
    "Severity",
    "all_configurations",
    "audit_dragonfly",
    "audit_fabric",
    "audit_flattened_butterfly",
    "audit_folded_clos",
    "audit_topology",
    "audit_torus",
    "broken_configuration",
    "cdg_from_traces",
    "certify",
    "combined_exit_code",
    "default_configurations",
    "default_topology_audits",
    "describe_cycle",
    "dragonfly_traces",
    "find_counterexample",
    "flattened_butterfly_traces",
    "folded_clos_traces",
    "lint_file",
    "lint_sources",
    "lint_tree",
    "register",
    "torus_traces",
    "variant_traces",
]
