"""Finding and report structures shared by the three analysis passes.

Every pass (CDG certification, topology invariants, code lint) produces a
list of :class:`Finding` values collected into a :class:`CheckReport`.
Only ``ERROR`` findings make the CI gate fail; ``WARNING`` and ``INFO``
are advisory (e.g. an unbalanced-but-legal dragonfly configuration).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List


class Severity(enum.IntEnum):
    """Ordered severity of a finding (higher is worse)."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by an analysis pass.

    ``code`` is a stable machine-readable identifier (``CDG001``,
    ``TOP003``, ``REP002``, ...); ``location`` names what the finding is
    about -- a configuration name, a topology description, or a
    ``path:line`` pair for lint findings.
    """

    code: str
    severity: Severity
    location: str
    message: str

    def format(self) -> str:
        return f"{self.location}: {self.severity.label()} {self.code}: {self.message}"


@dataclass
class CheckReport:
    """All findings of one pass, plus bookkeeping for the CLI."""

    pass_name: str
    findings: List[Finding] = field(default_factory=list)
    #: One-line notes about what was analysed (verbose output).
    notes: List[str] = field(default_factory=list)

    def add(
        self,
        code: str,
        severity: Severity,
        location: str,
        message: str,
    ) -> None:
        self.findings.append(Finding(code, severity, location, message))

    def note(self, message: str) -> None:
        self.notes.append(message)

    def extend(self, findings: List[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == Severity.ERROR]

    @property
    def ok(self) -> bool:
        """True when the pass gates green (no ERROR findings)."""
        return not self.errors

    def format(self, verbose: bool = False) -> str:
        lines = []
        status = "ok" if self.ok else "FAILED"
        counts = _severity_counts(self.findings)
        lines.append(f"[{self.pass_name}] {status} ({counts})")
        if verbose:
            lines.extend(f"  {note}" for note in self.notes)
        shown = self.findings if verbose else [
            f for f in self.findings if f.severity >= Severity.WARNING
        ]
        lines.extend(f"  {finding.format()}" for finding in shown)
        return "\n".join(lines)


def _severity_counts(findings: List[Finding]) -> str:
    counts = {severity: 0 for severity in Severity}
    for finding in findings:
        counts[finding.severity] += 1
    return ", ".join(
        f"{count} {severity.label()}{'s' if count != 1 else ''}"
        for severity, count in sorted(counts.items(), reverse=True)
    )


def combined_exit_code(reports: List[CheckReport]) -> int:
    """0 when every pass gates green, 1 otherwise."""
    return 0 if all(report.ok for report in reports) else 1
