"""repro -- reproduction of the ISCA 2008 dragonfly topology paper.

Public API highlights:

* :class:`repro.DragonflyParams` / :func:`repro.make_dragonfly` -- build
  dragonfly networks of any ``(p, a, h, g)``.
* :func:`repro.make_routing` -- MIN, VAL and the UGAL family including
  the paper's new UGAL-L_VCH and UGAL-L_CR indirect adaptive variants.
* :class:`repro.Simulator` / :func:`repro.load_sweep` -- cycle-accurate
  evaluation under synthetic traffic.
* :class:`repro.SweepExecutor` / :class:`repro.SweepCache` -- parallel
  sweep execution and on-disk result caching with bit-identical output.
* :mod:`repro.cost` -- the technology-driven cable/packaging cost model.
* :mod:`repro.experiments` -- one entry per paper table and figure.
"""

from .core import DragonflyParams, TopologyError
from .network import (
    SimulationConfig,
    SimulationResult,
    Simulator,
    SweepCache,
    SweepExecutor,
    load_sweep,
    make_pattern,
    saturation_load,
    simulate,
)
from .routing import ALL_ROUTING_NAMES, make_routing
from .topology import (
    ChannelKind,
    Dragonfly,
    FlattenedButterfly,
    FoldedClos,
    Torus,
    make_dragonfly,
)

__version__ = "1.0.0"

__all__ = [
    "DragonflyParams",
    "TopologyError",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "SweepCache",
    "SweepExecutor",
    "load_sweep",
    "make_pattern",
    "saturation_load",
    "simulate",
    "ALL_ROUTING_NAMES",
    "make_routing",
    "ChannelKind",
    "Dragonfly",
    "FlattenedButterfly",
    "FoldedClos",
    "Torus",
    "make_dragonfly",
    "__version__",
]
