"""Parallel sweep execution with result caching.

Every point of a load sweep (and every seed of a replication) is an
independent, deterministic simulation: all randomness flows from the
point's own :class:`~repro.network.config.SimulationConfig`, never from
shared state.  That makes fanning points across a process pool safe --
parallel execution is *bit-identical* to serial execution, point for
point, which the parallel/serial equivalence test and the golden
fixtures under ``tests/golden/`` pin down.

:class:`SweepExecutor` is the single entry point.  It

* answers points from an optional :class:`~repro.network.cache.SweepCache`
  before simulating anything,
* fans cache misses across a ``ProcessPoolExecutor`` when ``workers > 1``
  and there is more than one miss,
* falls back to in-process serial execution when the pool cannot be
  used (``workers = 1``, a single miss, unpicklable inputs, or a broken
  pool), and
* reassembles results in submission order regardless of completion
  order.

``load_sweep``, ``saturation_load``, ``replicate`` and the
``repro.experiments`` runners all accept an executor; the environment
variables ``REPRO_SWEEP_WORKERS`` and ``REPRO_SWEEP_CACHE`` configure
the default one (:meth:`SweepExecutor.from_env`) so figure scripts and
benchmarks pick up parallelism and caching without code changes.
"""

from __future__ import annotations

import logging
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, cast

from .cache import SweepCache, point_key
from .config import SimulationConfig
from .stats import SimulationResult

#: Environment variable selecting the default worker count (default 1).
WORKERS_ENV_VAR = "REPRO_SWEEP_WORKERS"

_LOGGER = logging.getLogger(__name__)


def workers_from_env() -> int:
    """Worker count from ``REPRO_SWEEP_WORKERS``.

    ``1`` (the default) is serial; ``0`` or ``auto`` means the CPU
    count.  Anything else must be a positive integer -- garbage raises
    :class:`ValueError` naming the variable instead of silently
    degrading to a default.
    """
    raw = os.environ.get(WORKERS_ENV_VAR, "1").strip().lower()
    if raw in ("0", "auto"):
        return os.cpu_count() or 1
    try:
        workers = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{WORKERS_ENV_VAR} must be a positive integer, "
            f"'0', or 'auto', got {raw!r}"
        ) from exc
    if workers < 1:
        raise ValueError(
            f"{WORKERS_ENV_VAR} must be >= 1 (or '0'/'auto' for "
            f"the CPU count), got {workers}"
        )
    return workers

#: 64-bit splitmix constants for :func:`derive_seed`.
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def derive_seed(base_seed: int, index: int) -> int:
    """Deterministic, well-separated per-point seed.

    A splitmix64 finalisation of ``base_seed + index`` -- stable across
    Python versions, processes and platforms (unlike ``hash``), and free
    of the correlated-stream risk of handing consecutive integers to
    ``random.Random``.  The result is folded into 63 bits so it is a
    portable non-negative seed.
    """
    z = (base_seed + (index + 1) * _SPLITMIX_GAMMA) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & (_MASK64 >> 1)


def derive_seeds(base_seed: int, runs: int) -> List[int]:
    """``runs`` distinct replication seeds derived from ``base_seed``."""
    if runs < 1:
        raise ValueError("need at least one run")
    return [derive_seed(base_seed, index) for index in range(runs)]


@dataclass(frozen=True)
class PointSpec:
    """One simulation point: routing + pattern + full configuration.

    The routing algorithm travels by *name* (not instance) so each
    worker builds a fresh instance exactly as the serial sweep loop
    does, and so the spec stays trivially picklable and hashable.
    """

    routing_name: str
    pattern_name: str
    config: SimulationConfig


def _run_spec(topology, spec: PointSpec) -> SimulationResult:
    """Worker body: simulate one point with fresh routing and pattern.

    Looks ``run_point`` up through the module at call time so tests can
    monkeypatch ``repro.network.sweep.run_point`` to count invocations.
    """
    from ..routing.ugal import make_routing
    from . import sweep

    routing = make_routing(spec.routing_name)
    return sweep.run_point(topology, routing, spec.pattern_name, spec.config)


@dataclass
class SweepExecutor:
    """Cache-aware, optionally parallel runner of simulation points."""

    #: Process-pool width; ``1`` (the default) runs in-process.
    workers: int = 1
    #: Result cache consulted before and filled after simulation.
    cache: Optional[SweepCache] = None
    #: Counts of how points were satisfied, for reporting.
    stats: Dict[str, int] = field(
        default_factory=lambda: {"cached": 0, "simulated": 0, "fallbacks": 0}
    )
    #: Why the last fall-back to serial execution happened (the
    #: underlying pickling or pool error), ``None`` when it never did.
    #: Logged when it happens and surfaced by the sweep service's
    #: ``status`` verb so a misconfigured sweep is diagnosable.
    last_fallback_error: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    @classmethod
    def from_env(cls) -> "SweepExecutor":
        """Executor configured from ``REPRO_SWEEP_WORKERS`` (default 1,
        ``0``/``auto`` = CPU count) and ``REPRO_SWEEP_CACHE``."""
        return cls(workers=workers_from_env(), cache=SweepCache.from_env())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_point(
        self,
        topology,
        routing_name: str,
        pattern_name: str,
        config: SimulationConfig,
    ) -> SimulationResult:
        """One point through the cache (a single point never forks)."""
        return self.run_points(
            topology, [PointSpec(routing_name, pattern_name, config)]
        )[0]

    def run_points(
        self, topology, specs: Sequence[PointSpec]
    ) -> List[SimulationResult]:
        """Simulate ``specs``, returning results in the same order."""
        results: List[Optional[SimulationResult]] = [None] * len(specs)
        miss_indices: List[int] = []
        for index, spec in enumerate(specs):
            if self.cache is not None:
                hit = self.cache.get(self._key(topology, spec))
                if hit is not None:
                    results[index] = hit
                    self.stats["cached"] += 1
                    continue
            miss_indices.append(index)
        if miss_indices:
            computed = self._execute(topology, [specs[i] for i in miss_indices])
            for index, result in zip(miss_indices, computed):
                results[index] = result
                self.stats["simulated"] += 1
                if self.cache is not None:
                    self.cache.put(self._key(topology, specs[index]), result)
        if any(result is None for result in results):
            raise RuntimeError(
                "sweep executor produced no result for some points; "
                "cache lookups and executions must cover every spec"
            )
        return cast(List[SimulationResult], results)

    def _key(self, topology, spec: PointSpec) -> Dict[str, object]:
        return point_key(
            topology, spec.routing_name, spec.pattern_name, spec.config
        )

    def _execute(
        self, topology, specs: Sequence[PointSpec]
    ) -> List[SimulationResult]:
        if self.workers > 1 and len(specs) > 1 and self._picklable(topology, specs):
            try:
                return self._execute_pool(topology, specs)
            except (BrokenProcessPool, OSError) as exc:
                self._note_fallback(exc, "process pool failed")
        return [_run_spec(topology, spec) for spec in specs]

    def _execute_pool(
        self, topology, specs: Sequence[PointSpec]
    ) -> List[SimulationResult]:
        max_workers = min(self.workers, len(specs))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(_run_spec, topology, spec) for spec in specs]
            return [future.result() for future in futures]

    def _picklable(self, topology, specs: Sequence[PointSpec]) -> bool:
        """Pre-flight check so unpicklable inputs degrade to serial
        execution instead of a half-submitted pool.

        The underlying pickling error is logged (and kept in
        :attr:`last_fallback_error`), not swallowed: a sweep silently
        running serial because a topology grew an unpicklable member is
        otherwise near-impossible to diagnose.
        """
        try:
            pickle.dumps((topology, list(specs)))
            return True
        except Exception as exc:
            self._note_fallback(exc, "pre-flight pickle check failed")
            return False

    def _note_fallback(self, exc: BaseException, why: str) -> None:
        self.stats["fallbacks"] += 1
        self.last_fallback_error = f"{why}: {type(exc).__name__}: {exc}"
        _LOGGER.warning(
            "sweep executor falling back to serial execution (%s)",
            self.last_fallback_error,
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary_line(self) -> str:
        """One-line account of how the sweep's points were satisfied."""
        answered = self.stats["cached"] + self.stats["simulated"]
        hit_rate = self.stats["cached"] / answered if answered else 0.0
        parts = [
            f"{answered} points: {self.stats['cached']} cached + "
            f"{self.stats['simulated']} simulated "
            f"({100.0 * hit_rate:.1f}% hit rate)"
        ]
        if self.cache is not None:
            counters = self.cache.counters()
            parts.append(
                f"cache {counters['hits']} hits / {counters['misses']} misses"
                f" / {counters['invalidations']} invalidated"
            )
        if self.stats["fallbacks"]:
            parts.append(f"{self.stats['fallbacks']} serial fallbacks")
        if self.last_fallback_error is not None:
            parts.append(f"last fallback: {self.last_fallback_error}")
        return "; ".join(parts)
