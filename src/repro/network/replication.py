"""Seed replication and confidence intervals.

The paper reports single-run simulation results; for a reproduction it
is worth knowing how tight those numbers are.  This module repeats a
simulation across independent seeds and summarises latency/throughput
with mean, standard deviation and a normal-approximation confidence
interval -- enough to state "UGAL-L_CR's intermediate latency is
X +- Y cycles" with a straight face.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from ..routing.base import RoutingAlgorithm
from ..topology.dragonfly import Dragonfly
from .config import SimulationConfig
from .parallel import PointSpec, SweepExecutor, derive_seeds
from .backend import make_simulator
from .stats import SimulationResult
from .traffic import make_pattern

#: Two-sided z value for a 95% normal confidence interval.
_Z95 = 1.96


@dataclass
class ReplicatedMetric:
    """Mean / spread of one scalar over seed replications."""

    name: str
    values: List[float]

    @property
    def runs(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mean = self.mean
        variance = sum((v - mean) ** 2 for v in self.values) / (len(self.values) - 1)
        return math.sqrt(variance)

    @property
    def ci95_half_width(self) -> float:
        if len(self.values) < 2:
            return 0.0
        return _Z95 * self.std / math.sqrt(len(self.values))

    def __str__(self) -> str:
        return f"{self.name} = {self.mean:.3f} +- {self.ci95_half_width:.3f} (n={self.runs})"


@dataclass
class ReplicatedResult:
    """Replication summary of one simulation configuration."""

    routing_name: str
    pattern_name: str
    offered_load: float
    latency: ReplicatedMetric
    accepted_load: ReplicatedMetric
    minimal_fraction: ReplicatedMetric
    saturated_runs: int

    def summary(self) -> str:
        return (
            f"{self.routing_name:10s} {self.pattern_name:14s} "
            f"load={self.offered_load:.3f}: "
            f"latency {self.latency.mean:7.2f} +- {self.latency.ci95_half_width:5.2f}, "
            f"accepted {self.accepted_load.mean:.3f} +- "
            f"{self.accepted_load.ci95_half_width:.3f} "
            f"({self.saturated_runs}/{self.latency.runs} saturated)"
        )


def replicate(
    topology: Dragonfly,
    make_algorithm: Callable[[], RoutingAlgorithm],
    pattern_name: str,
    config: SimulationConfig,
    seeds: Union[int, Sequence[int]] = (1, 2, 3, 4, 5),
    executor: Optional[SweepExecutor] = None,
) -> ReplicatedResult:
    """Run the same configuration under independent seeds.

    ``seeds`` is either an explicit sequence or a run count, in which
    case that many well-separated seeds are derived deterministically
    from ``config.seed`` (:func:`repro.network.parallel.derive_seeds`).
    With an ``executor`` the replications fan out across workers and hit
    the result cache; the per-seed results are identical either way.

    Saturated runs are excluded from the latency statistic (their latency
    is unbounded) but counted in ``saturated_runs``.
    """
    if isinstance(seeds, int):
        seeds = derive_seeds(config.seed, seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    results: List[SimulationResult] = []
    if executor is not None:
        routing_name = make_algorithm().name
        specs = [
            PointSpec(
                routing_name,
                pattern_name,
                dataclasses.replace(config, seed=seed),
            )
            for seed in seeds
        ]
        results = executor.run_points(topology, specs)
    else:
        for seed in seeds:
            seeded = dataclasses.replace(config, seed=seed)
            pattern = make_pattern(pattern_name, topology, seed=seed + 17)
            results.append(
                make_simulator(topology, make_algorithm(), pattern, seeded).run()
            )
    stable = [r for r in results if not r.saturated]
    latencies = [r.avg_latency for r in stable] or [math.inf]
    return ReplicatedResult(
        routing_name=results[0].routing_name,
        pattern_name=results[0].pattern_name,
        offered_load=config.load,
        latency=ReplicatedMetric("latency", latencies),
        accepted_load=ReplicatedMetric(
            "accepted_load", [r.accepted_load for r in results]
        ),
        minimal_fraction=ReplicatedMetric(
            "minimal_fraction", [r.minimal_fraction for r in stable] or [math.nan]
        ),
        saturated_runs=sum(1 for r in results if r.saturated),
    )
