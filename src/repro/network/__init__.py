"""Cycle-accurate flit-level interconnection network simulator."""

from .backend import (
    BACKEND_ENV_VAR,
    BACKENDS,
    EquivalenceContract,
    backend_from_env,
    contract_for,
    make_simulator,
    resolve_backend,
)
from .cache import SweepCache, point_key
from .config import SimulationConfig
from .packet import Flit, Packet, RoutePlan, make_flits
from .parallel import PointSpec, SweepExecutor, derive_seed, derive_seeds
from .replication import ReplicatedMetric, ReplicatedResult, replicate
from .simulator import Simulator, SimulatorStateError, simulate
from .stats import LatencySample, SimulationResult
from .sweep import SweepPoint, load_sweep, run_point, saturation_load
from .workloads import (
    ApplicationWorkload,
    CommunicationPhase,
    PhaseResult,
    WorkloadResult,
    run_workload,
    standard_workloads,
)
from .traffic import (
    BitComplement,
    FbAdversarial,
    GroupTornado,
    Hotspot,
    RandomPermutation,
    Shift,
    TrafficPattern,
    TorusTornado,
    Transpose,
    UniformRandom,
    WorstCase,
    make_pattern,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKENDS",
    "EquivalenceContract",
    "backend_from_env",
    "contract_for",
    "make_simulator",
    "resolve_backend",
    "SweepCache",
    "point_key",
    "PointSpec",
    "SweepExecutor",
    "derive_seed",
    "derive_seeds",
    "SimulationConfig",
    "Flit",
    "Packet",
    "RoutePlan",
    "make_flits",
    "ReplicatedMetric",
    "ReplicatedResult",
    "replicate",
    "Simulator",
    "SimulatorStateError",
    "simulate",
    "LatencySample",
    "SimulationResult",
    "SweepPoint",
    "load_sweep",
    "run_point",
    "saturation_load",
    "ApplicationWorkload",
    "CommunicationPhase",
    "PhaseResult",
    "WorkloadResult",
    "run_workload",
    "standard_workloads",
    "BitComplement",
    "FbAdversarial",
    "GroupTornado",
    "Hotspot",
    "RandomPermutation",
    "Shift",
    "TrafficPattern",
    "TorusTornado",
    "Transpose",
    "UniformRandom",
    "WorstCase",
    "make_pattern",
]
