"""Batched route-decision kernel for the array backend.

The scalar simulator makes one :meth:`RoutingAlgorithm.decide` call per
injected packet -- at the Figure 9 operating points that is ~200 Python
calls per cycle, each walking plan memos, hop caches and occupancy
getters.  This module lowers the registry routing algorithms
(MIN / VAL / the UGAL family) into dense integer tables so the array
backend can resolve *every* injecting terminal's decision for a cycle
with a handful of numpy gathers, bit-identically to the scalar path:

* :class:`VectorizedMT19937` transplants the route rng's Mersenne
  Twister state and replays ``getrandbits``-based rejection sampling in
  blocks, so the Valiant intermediate-group draws consume the generator
  word-for-word as the scalar inlined loop in
  :func:`repro.routing.paths._valiant_plan_between` does;
* :class:`DecideTables` precomputes, per ordered group pair, the unique
  global link and the first-hop (port, VC) of both route phases for all
  ``a`` source routers of a group, using the canonical VC assignment --
  a decision then reduces to index arithmetic;
* :meth:`DecideTables.batch_decide` evaluates one cycle's decisions,
  returning per-decider candidate hops plus, for UGAL, the two queue
  indices and hop counts of the ``q_m * H_m <= q_nm * H_nm`` comparison.
  The comparison itself stays sequential in the caller: decisions made
  earlier in the same cycle enqueue flits that *change* the occupancies
  later decisions read, so the queue reads cannot be snapshotted;
* :func:`lower_traffic` extends the same transplant to the random
  traffic patterns (uniform random, worst case, group tornado), so a
  cycle's destination draws -- one ``getrandbits`` rejection loop per
  new packet in the scalar engine -- collapse into a single
  :meth:`VectorizedMT19937.rejection_sample` call.

Eligibility is deliberately conservative (:func:`kernel_ineligibility`):
exact registry classes on the canonical single-link dragonfly with
single-flit packets.  Anything else falls back to the per-packet path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..routing import vc_assignment as vcs
from ..routing.minimal import MinimalRouting
from ..routing.paths import (
    _INTRA_GROUP_MINIMAL,
    memoised_minimal_plan,
    memoised_valiant_plan,
)
from ..routing.tables import group_link_matrix
from ..routing.ugal import UgalG, UgalL, UgalLCr, UgalLVc, UgalLVcH
from ..routing.valiant import ValiantRouting
from ..topology.dragonfly import Dragonfly

#: Version tag stamped into backend provenance and
#: :class:`~repro.network.backend.EquivalenceContract.decide_kernel`.
#: Bump when the kernel's observable behaviour changes.
KERNEL_NAME = "decide-v1"

# ----------------------------------------------------------------------
# Mersenne Twister transplant
# ----------------------------------------------------------------------

_N = 624
_M = 397
_MATRIX_A = np.uint32(0x9908B0DF)
_UPPER = np.uint32(0x80000000)
_LOWER = np.uint32(0x7FFFFFFF)


class VectorizedMT19937:
    """CPython's MT19937 stream, generated a 624-word block at a time.

    Word ``j`` produced by this class is bit-identical to the ``j``-th
    ``getrandbits(32)`` result of the :class:`random.Random` the state
    was transplanted from, so consumers that emulate CPython's
    ``getrandbits(k)``-based sampling (``genrand_uint32() >> (32 - k)``)
    stay on the scalar generator's stream exactly -- including rejection
    sampling, where the *position* after a batch must land on the word
    following the last accepted draw.
    """

    __slots__ = ("_mt", "_pos")

    def __init__(self, mt: np.ndarray, pos: int) -> None:
        self._mt = mt.astype(np.uint32, copy=True)
        self._pos = int(pos)

    @classmethod
    def from_python_rng(cls, rng: random.Random) -> "VectorizedMT19937":
        """Transplant ``rng``'s state, verifying against a probe clone.

        Raises :class:`ValueError` if the state is not the CPython
        version-3 Mersenne Twister layout or the probe words disagree
        (e.g. a ``random.Random`` subclass with different semantics).
        """
        state = rng.getstate()
        if state[0] != 3 or len(state[1]) != _N + 1:
            raise ValueError(
                f"unsupported random.Random state version {state[0]!r}"
            )
        mt = np.array(state[1][:-1], dtype=np.uint32)
        pos = state[1][-1]
        probe = random.Random()
        probe.setstate(state)
        clone = cls(mt, pos)
        for _ in range(3):
            if clone.next_word() != probe.getrandbits(32):
                raise ValueError("transplanted MT19937 diverged from probe")
        return cls(mt, pos)

    # -- core generator ------------------------------------------------

    def _twist(self) -> None:
        mt = self._mt
        nxt = np.empty(_N, np.uint32)
        # y[kk] for kk in [0, 623): old words only (kk+1 <= 623).
        y = (mt[:-1] & _UPPER) | (mt[1:] & _LOWER)
        f = (y >> np.uint32(1)) ^ np.where(
            y & np.uint32(1), _MATRIX_A, np.uint32(0)
        )
        # mt[kk + M] is an *old* word while kk + M < N, a *new* word
        # after -- the three slabs replicate the in-place recurrence.
        lo = _N - _M  # 227
        nxt[0:lo] = mt[_M:_N] ^ f[0:lo]
        nxt[lo:2 * lo] = nxt[0:lo] ^ f[lo:2 * lo]
        nxt[2 * lo:_N - 1] = nxt[lo:_N - 1 - lo] ^ f[2 * lo:_N - 1]
        y_last = (mt[_N - 1] & _UPPER) | (nxt[0] & _LOWER)
        f_last = (y_last >> np.uint32(1)) ^ (
            _MATRIX_A if y_last & np.uint32(1) else np.uint32(0)
        )
        nxt[_N - 1] = nxt[_M - 1] ^ f_last
        self._mt = nxt
        self._pos = 0

    @staticmethod
    def _temper(y: np.ndarray) -> np.ndarray:
        y = y ^ (y >> np.uint32(11))
        y = y ^ ((y << np.uint32(7)) & np.uint32(0x9D2C5680))
        y = y ^ ((y << np.uint32(15)) & np.uint32(0xEFC60000))
        y = y ^ (y >> np.uint32(18))
        return y

    def next_word(self) -> int:
        """One 32-bit output word (scalar; tests and probe validation)."""
        if self._pos >= _N:
            self._twist()
        word = int(self._temper(self._mt[self._pos:self._pos + 1])[0])
        self._pos += 1
        return word

    def getrandbits(self, k: int) -> int:
        """Scalar ``getrandbits`` for ``0 < k <= 32`` (tests only)."""
        if not 0 < k <= 32:
            raise ValueError("k must be in (0, 32]")
        return self.next_word() >> (32 - k)

    def to_python_state(self) -> tuple:
        """State tuple accepted by :meth:`random.Random.setstate`.

        Lets callers hand the stream *back* to a scalar generator at the
        exact position this instance reached -- the inverse of
        :meth:`from_python_rng`, used to keep a paired scalar rng in
        sync across kernel/non-kernel boundaries and by parity tests.
        """
        return (3, tuple(int(w) for w in self._mt) + (self._pos,), None)

    # -- batched sampling ----------------------------------------------

    def rejection_sample(self, count: int, n: int) -> np.ndarray:
        """``count`` draws of ``getrandbits(k); retry while >= n``.

        Emulates the inlined rejection loop of
        :func:`repro.routing.paths._valiant_plan_between` (CPython's
        ``_randbelow_with_getrandbits``): the ``j``-th accepted word of
        the raw stream is the ``j``-th caller's draw, and the stream
        position is committed to the word *after* the last accepted one,
        so interleaving batched and scalar consumers is seamless.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        k = n.bit_length()
        shift = np.uint32(32 - k)
        out = np.empty(count, np.int64)
        filled = 0
        while filled < count:
            if self._pos >= _N:
                self._twist()
            vals = (self._temper(self._mt[self._pos:]) >> shift).astype(
                np.int64
            )
            idx = np.nonzero(vals < n)[0]
            need = count - filled
            if idx.shape[0] >= need:
                out[filled:count] = vals[idx[:need]]
                self._pos += int(idx[need - 1]) + 1
                filled = count
            else:
                out[filled:filled + idx.shape[0]] = vals[idx]
                filled += idx.shape[0]
                self._pos = _N
        return out


# ----------------------------------------------------------------------
# Eligibility
# ----------------------------------------------------------------------

#: Exact routing classes the kernel can lower.  ``type(routing) in`` --
#: never ``isinstance`` -- so a subclass that overrides ``decide`` or
#: ``_occupancies`` is not silently mis-lowered.
_KERNEL_ROUTINGS = (
    MinimalRouting,
    ValiantRouting,
    UgalL,
    UgalG,
    UgalLVc,
    UgalLVcH,
    UgalLCr,
)


def kernel_ineligibility(config, topology, routing) -> Optional[str]:
    """Why the decide kernel cannot run this configuration, or ``None``.

    The returned string is human-readable; the array backend logs it and
    records it on the simulator so fallbacks are never silent.
    """
    if getattr(config, "packet_size", 1) != 1:
        return f"multi-flit packets (packet_size={config.packet_size})"
    if type(topology) is not Dragonfly:
        return (
            f"topology {type(topology).__name__} is not the canonical "
            "Dragonfly"
        )
    if type(routing) not in _KERNEL_ROUTINGS:
        return f"routing {type(routing).__name__} has no kernel lowering"
    if routing.kernel_decide is None:
        return f"routing {routing.name} declares no kernel_decide"
    if not getattr(topology, "single_link_pairs", False):
        return "multiple global links per group pair"
    if group_link_matrix(topology) is None:
        return "some group pair lacks a unique global link"
    return None


# ----------------------------------------------------------------------
# Traffic lowering
# ----------------------------------------------------------------------


class TrafficLowering:
    """Batched replay of a traffic pattern's per-packet destination draws.

    Construction transplants the pattern's ``random.Random`` into a
    :class:`VectorizedMT19937` without advancing the source (mirroring
    the route-rng transplant); from then on the pattern object's own rng
    stays frozen and :meth:`batch` yields exactly the destinations the
    scalar engine would have produced calling ``pattern(src)`` once per
    source in order -- the lowered patterns' inlined ``getrandbits``
    rejection loops follow the same stream discipline
    :meth:`VectorizedMT19937.rejection_sample` replays.
    """

    __slots__ = ("stream", "_fn")

    def __init__(self, stream: VectorizedMT19937, fn) -> None:
        self.stream = stream
        self._fn = fn

    def batch(self, srcs: np.ndarray) -> np.ndarray:
        """Destinations for ``srcs``, drawn in ascending-source order."""
        return self._fn(self.stream, srcs)


def lower_traffic(pattern) -> Optional[TrafficLowering]:
    """A :class:`TrafficLowering` for ``pattern``, or ``None``.

    Only the exact random pattern classes whose draw discipline is the
    inlined ``getrandbits`` rejection loop are lowered (``type`` checks,
    never ``isinstance``, for the same reason as ``_KERNEL_ROUTINGS``):
    uniform random, worst case, and group tornado (a fixed-offset worst
    case).  Every other pattern keeps the per-packet call inside the
    injection pass -- still correct, just not batched.
    """
    from .traffic import GroupTornado, UniformRandom, WorstCase

    inner = pattern
    if type(pattern) is GroupTornado:
        inner = pattern._inner
    if type(inner) is UniformRandom:
        n = inner.num_terminals - 1

        def fn(stream: VectorizedMT19937, srcs: np.ndarray) -> np.ndarray:
            # ``dst if dst < src else dst + 1``, vectorized.
            draws = stream.rejection_sample(srcs.shape[0], n)
            return draws + (draws >= srcs)

    elif type(inner) is WorstCase:
        per_group = inner._per_group
        num_groups = inner.topology.g
        offset = inner.group_offset

        def fn(stream: VectorizedMT19937, srcs: np.ndarray) -> np.ndarray:
            draws = stream.rejection_sample(srcs.shape[0], per_group)
            dst_group = (srcs // per_group + offset) % num_groups
            return dst_group * per_group + draws

    else:
        return None
    return TrafficLowering(VectorizedMT19937.from_python_rng(inner._rng), fn)


# ----------------------------------------------------------------------
# Decision batch
# ----------------------------------------------------------------------


@dataclass
class DecideBatch:
    """One cycle's lowered decisions as parallel Python lists.

    ``mode[i] == 0`` means decision ``i`` is fully resolved: take
    candidate A.  ``mode[i] == 1`` means a UGAL comparison remains: read
    occupancies at ``qa[i]`` / ``qb[i]`` (per-VC when ``use_vc[i]``,
    whole-port otherwise) and take A iff ``q_a * hm[i] <= q_b * hn[i]``.
    The reads are the caller's: they must happen in terminal-visit order
    against *live* queue state.

    Candidate fields: ``port``/``vc`` is the first hop at the source
    router (raw VC, before the vc-class offset); ``hk0``/``hk1`` are the
    per-phase hop-table keys carried on the flit (-1 when the phase does
    not apply); ``minimal`` mirrors ``RoutePlan.minimal``; ``key`` is
    the plan key for :meth:`DecideTables.plan_for`.  Candidate B exists
    only where ``mode == 1`` and is always the non-degenerate Valiant
    candidate.
    """

    mode: List[int]
    use_vc: List[bool]
    qa: List[int]
    qb: List[int]
    hm: List[int]
    hn: List[int]
    a_port: List[int]
    a_vc: List[int]
    a_hk0: List[int]
    a_hk1: List[int]
    a_min: List[bool]
    a_key: List[int]
    b_port: List[int]
    b_vc: List[int]
    b_hk0: List[int]
    b_hk1: List[int]
    b_key: List[int]


_ZERO = np.int64(0)


class DecideTables:
    """Dense lowering of one (topology, routing, VC assignment) triple.

    Hop tables are keyed by *ordered group pair* and source-router local
    index, not by router -- ``O(g^2 a)`` entries instead of ``O(N g)``,
    which keeps the 16k-terminal machines in cache:

    ``hop0_port[(pair * 2 + m) * a + li]``
        First-phase hop (toward ``pair``'s global link) for a flit at
        local index ``li`` of the pair's source group; ``m`` is the
        plan's ``minimal`` flag (the port is identical for both, the VC
        differs).
    ``hop1_port[pair2 * a + li]``
        Second Valiant phase toward ``pair2 = ig * g + dg``'s link.

    The final phase (and intra-group routes) needs no table: the local
    port is ``p + dl - (dl > sl)`` and ejection is ``dst % p``.
    """

    def __init__(
        self,
        topology: Dragonfly,
        routing,
        num_vcs: int,
        assignment: vcs.VcAssignment = vcs.CANONICAL,
    ) -> None:
        matrix = group_link_matrix(topology)
        if matrix is None:
            raise ValueError(
                "decide tables require a unique global link per group pair"
            )
        self.topology = topology
        self.kind: str = routing.kernel_decide
        self.signal: Optional[str] = routing.kernel_signal
        if self.kind not in ("min", "val", "ugal"):
            raise ValueError(f"unknown kernel_decide {self.kind!r}")
        if self.kind == "ugal" and self.signal not in (
            "port", "remote", "vc", "vc_hybrid",
        ):
            raise ValueError(f"unknown kernel_signal {self.signal!r}")
        g = topology.g
        a = topology.a
        p = topology.p
        radix = topology.params.radix
        self.g = g
        self.a = a
        self.p = p
        self.radix = radix
        self.num_vcs = int(num_vcs)
        self.final_local_vc = assignment.final_local_vc

        # Unique link per ordered pair, flattened row-major (diagonal 0s
        # are never indexed: pairs are only formed from distinct groups).
        L_src = np.zeros(g * g, np.int64)
        L_sport = np.zeros(g * g, np.int64)
        L_dst = np.zeros(g * g, np.int64)
        for sg in range(g):
            for dg in range(g):
                link = matrix[sg][dg]
                if link is not None:
                    L_src[sg * g + dg] = link.src_router
                    L_sport[sg * g + dg] = link.src_port
                    L_dst[sg * g + dg] = link.dst_router
        self.L_src = L_src
        self.L_sport = L_sport
        self.L_dst = L_dst
        #: Flat ``_pending`` index of each pair's global channel at its
        #: own router -- the UGAL-G oracle read.
        self.L_qidx = L_src * radix + L_sport

        # First-phase hop tables, built without a per-router Python
        # loop: for pair (sg, tg) and local index li of group sg, the
        # hop is the link's own port when the router *is* the gateway,
        # else the local port toward it.
        li = np.arange(a, dtype=np.int64)
        gli = (L_src % a).reshape(g, g, 1)
        gateway = gli == li.reshape(1, 1, a)
        lp = p + gli - (gli > li.reshape(1, 1, a))
        port = np.where(gateway, L_sport.reshape(g, g, 1), lp)

        def vc_table(minimal: bool, phase: int) -> np.ndarray:
            return np.where(
                gateway,
                np.int64(assignment.global_vc(minimal, phase)),
                np.int64(assignment.local_vc(minimal, phase)),
            )

        # Layout (g, g, 2, a) -> flat, m-axis ordered [nonminimal,
        # minimal] to match key = pair * 2 + minimal.
        self.hop0_port = np.repeat(
            port[:, :, None, :], 2, axis=2
        ).reshape(-1).copy()
        self.hop0_vc = np.stack(
            [vc_table(False, 0), vc_table(True, 0)], axis=2
        ).reshape(-1).copy()
        # Second Valiant phase: same ports, phase-1 nonminimal VCs.
        self.hop1_port = port.reshape(-1).copy()
        self.hop1_vc = vc_table(False, 1).reshape(-1).copy()

        # Plan objects by key, for the paths that still need a
        # RoutePlan (blocked-injection retries, sanitizer views).  The
        # minimal list is prebuilt (g^2 small); Valiant plans populate
        # lazily through the same per-topology memo the scalar path
        # uses, so both backends intern identical objects.
        self._min_plans: List[Optional[object]] = [None] * (g * g)
        for sg in range(g):
            for dg in range(g):
                if sg != dg and matrix[sg][dg] is not None:
                    self._min_plans[sg * g + dg] = memoised_minimal_plan(
                        topology, sg, dg
                    )
        self._val_plans: Dict[int, object] = {}

    # ------------------------------------------------------------------

    def plan_for(self, key: int, minimal: bool):
        """The interned :class:`RoutePlan` behind a candidate key."""
        if key < 0:
            return _INTRA_GROUP_MINIMAL
        if minimal:
            return self._min_plans[key]
        plan = self._val_plans.get(key)
        if plan is None:
            g = self.g
            dg = key % g
            sg_ig = key // g
            plan = memoised_valiant_plan(
                self.topology, sg_ig // g, sg_ig % g, dg
            )
            self._val_plans[key] = plan
        return plan

    def first_hop_arrays(
        self,
        srcs: np.ndarray,
        dstr: np.ndarray,
        dsts: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Final-phase first hop: intra-group (or degenerate) routes."""
        same = dstr == srcs
        dl = dstr % self.a
        sl = srcs % self.a
        port = np.where(
            same, dsts % self.p, self.p + dl - (dl > sl)
        )
        vc = np.where(same, _ZERO, np.int64(self.final_local_vc))
        return port, vc

    def batch_decide(
        self,
        stream: Optional[VectorizedMT19937],
        srcs: np.ndarray,
        dsts: np.ndarray,
        dstr: np.ndarray,
    ) -> DecideBatch:
        """Lower one cycle's decisions (terminal-visit order).

        ``stream`` supplies the Valiant intermediate-group draws; it is
        consumed only for inter-group deciders under VAL/UGAL, exactly
        one accepted rejection-sample per such decider, in order.
        """
        g = self.g
        a = self.a
        n = srcs.shape[0]
        sg = srcs // a
        dg = dstr // a
        sli = srcs % a
        inter = sg != dg
        pair = sg * g + dg

        f_port, f_vc = self.first_hop_arrays(srcs, dstr, dsts)

        # Minimal candidate first hop (garbage on intra rows, masked).
        idx_min = (pair * 2 + 1) * a + sli
        m_port = self.hop0_port[idx_min]
        m_vc = self.hop0_vc[idx_min]

        kind = self.kind
        none_i = np.full(n, -1, dtype=np.int64)
        zeros = np.zeros(n, dtype=np.int64)

        if kind == "min":
            a_port = np.where(inter, m_port, f_port)
            a_vc = np.where(inter, m_vc, f_vc)
            a_hk0 = np.where(inter, pair * 2 + 1, none_i)
            a_key = np.where(inter, pair, none_i)
            return DecideBatch(
                mode=zeros.tolist(),
                use_vc=[False] * n,
                qa=zeros.tolist(), qb=zeros.tolist(),
                hm=zeros.tolist(), hn=zeros.tolist(),
                a_port=a_port.tolist(), a_vc=a_vc.tolist(),
                a_hk0=a_hk0.tolist(), a_hk1=none_i.tolist(),
                a_min=[True] * n, a_key=a_key.tolist(),
                b_port=zeros.tolist(), b_vc=zeros.tolist(),
                b_hk0=zeros.tolist(), b_hk1=zeros.tolist(),
                b_key=zeros.tolist(),
            )

        # VAL and UGAL: draw an intermediate group for every inter-group
        # decider, in visit order.
        ig_full = np.zeros(n, dtype=np.int64)
        if g >= 2:
            ridx = np.nonzero(inter)[0]
            if ridx.shape[0]:
                draws = stream.rejection_sample(int(ridx.shape[0]), g - 1)
                ig = draws + (draws >= sg[ridx])
                ig_full[ridx] = ig
        degenerate = inter & (ig_full == dg)
        nonmin = inter & ~degenerate
        pair1 = sg * g + ig_full
        pair2 = ig_full * g + dg
        idx_nm = (pair1 * 2) * a + sli
        n_port = self.hop0_port[idx_nm]
        n_vc = self.hop0_vc[idx_nm]
        nm_key = pair1 * g + dg

        if kind == "val":
            a_port = np.where(nonmin, n_port, np.where(inter, m_port, f_port))
            a_vc = np.where(nonmin, n_vc, np.where(inter, m_vc, f_vc))
            a_hk0 = np.where(
                nonmin, pair1 * 2, np.where(inter, pair * 2 + 1, none_i)
            )
            a_hk1 = np.where(nonmin, pair2, none_i)
            a_key = np.where(nonmin, nm_key, np.where(inter, pair, none_i))
            return DecideBatch(
                mode=zeros.tolist(),
                use_vc=[False] * n,
                qa=zeros.tolist(), qb=zeros.tolist(),
                hm=zeros.tolist(), hn=zeros.tolist(),
                a_port=a_port.tolist(), a_vc=a_vc.tolist(),
                a_hk0=a_hk0.tolist(), a_hk1=a_hk1.tolist(),
                a_min=(~nonmin).tolist(), a_key=a_key.tolist(),
                b_port=zeros.tolist(), b_vc=zeros.tolist(),
                b_hk0=zeros.tolist(), b_hk1=zeros.tolist(),
                b_key=zeros.tolist(),
            )

        # UGAL: candidate A is always the minimal plan (the resolved
        # choice on intra and degenerate rows); candidate B and the
        # queue comparison exist on non-degenerate inter rows.
        mode = nonmin
        a_port = np.where(inter, m_port, f_port)
        a_vc = np.where(inter, m_vc, f_vc)
        a_hk0 = np.where(inter, pair * 2 + 1, none_i)
        a_key = np.where(inter, pair, none_i)

        hm = (
            1
            + (self.L_src[pair] != srcs)
            + (self.L_dst[pair] != dstr)
        )
        hn = (
            2
            + (self.L_src[pair1] != srcs)
            + (self.L_dst[pair1] != self.L_src[pair2])
            + (self.L_dst[pair2] != dstr)
        )

        signal = self.signal
        radix = self.radix
        nv = self.num_vcs
        if signal == "port":
            qa = srcs * radix + m_port
            qb = srcs * radix + n_port
            use_vc = [False] * n
        elif signal == "remote":
            qa = self.L_qidx[pair]
            qb = self.L_qidx[pair1]
            use_vc = [False] * n
        elif signal == "vc":
            qa = (srcs * radix + m_port) * nv + m_vc
            qb = (srcs * radix + n_port) * nv + n_vc
            use_vc = [True] * n
        else:  # vc_hybrid
            shared = m_port == n_port
            qa = np.where(
                shared,
                (srcs * radix + m_port) * nv + m_vc,
                srcs * radix + m_port,
            )
            qb = np.where(
                shared,
                (srcs * radix + n_port) * nv + n_vc,
                srcs * radix + n_port,
            )
            use_vc = shared.tolist()

        return DecideBatch(
            mode=mode.astype(np.int64).tolist(),
            use_vc=use_vc,
            qa=qa.tolist(), qb=qb.tolist(),
            hm=hm.astype(np.int64).tolist(), hn=hn.astype(np.int64).tolist(),
            a_port=a_port.tolist(), a_vc=a_vc.tolist(),
            a_hk0=a_hk0.tolist(), a_hk1=none_i.tolist(),
            a_min=[True] * n, a_key=a_key.tolist(),
            b_port=n_port.tolist(), b_vc=n_vc.tolist(),
            b_hk0=(pair1 * 2).tolist(), b_hk1=pair2.tolist(),
            b_key=nm_key.tolist(),
        )
