"""On-disk cache of simulation results, keyed by the full run recipe.

Reproducing one paper figure means sweeping offered load across several
routing algorithms, and bisecting ``saturation_load`` re-simulates many
nearby loads.  Every one of those runs is a pure function of its inputs
(the determinism regression in ``tests/network/test_determinism.py`` is
the contract), so results can be memoised on disk: re-running a figure
script, widening a sweep, or re-bisecting a saturation point skips every
point that has already been computed.

A cache entry is keyed by a stable SHA-256 hash over the canonical JSON
of everything that determines the result:

* topology family and parameters (``p``, ``a``, ``h``, ``num_groups``),
* routing algorithm name,
* VC assignment name (the canonical Figure 7 assignment unless a
  variant is threaded through),
* traffic pattern name,
* every :class:`~repro.network.config.SimulationConfig` field -- load,
  seed, warm-up/measurement/drain cycles, buffer depth, VC count,
  packet size, pipeline depth, credit-delay gain, ...

Entries carry a schema version stamp (:data:`SCHEMA_VERSION`) and the
full key they were stored under; a version mismatch, a key mismatch
(hash collision or hand-edited file) or an unreadable file is treated as
a miss and the stale entry is dropped.  Bump :data:`SCHEMA_VERSION`
whenever the simulator's behaviour or the result serialisation changes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from .config import SimulationConfig
from .stats import SimulationResult

#: Bump on any change that invalidates previously stored results: the
#: simulator's cycle-level behaviour, the meaning of a config field, or
#: the :meth:`SimulationResult.to_dict` layout.
SCHEMA_VERSION = 1

#: Environment variable naming the cache directory; unset disables the
#: cache in :meth:`repro.network.parallel.SweepExecutor.from_env`.
CACHE_ENV_VAR = "REPRO_SWEEP_CACHE"


def topology_signature(topology: object) -> Dict[str, object]:
    """JSON-able identity of a topology: family plus its parameters."""
    signature: Dict[str, object] = {"family": type(topology).__name__}
    params = getattr(topology, "params", None)
    if dataclasses.is_dataclass(params) and not isinstance(params, type):
        signature["params"] = dataclasses.asdict(params)
    else:
        signature["params"] = repr(params)
    return signature


def point_key(
    topology: object,
    routing_name: str,
    pattern_name: str,
    config: SimulationConfig,
    vc_assignment: str = "canonical",
) -> Dict[str, object]:
    """The full, auditable cache key of one simulation point."""
    return {
        "schema": SCHEMA_VERSION,
        "topology": topology_signature(topology),
        "routing": routing_name,
        "vc_assignment": vc_assignment,
        "pattern": pattern_name,
        "config": dataclasses.asdict(config),
    }


def key_digest(key: Dict[str, object]) -> str:
    """Stable SHA-256 digest of a key's canonical JSON."""
    canonical = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class SweepCache:
    """Directory of JSON files, one per simulated point.

    Files are written atomically (temp file + rename) so a crashed or
    parallel run never leaves a truncated entry behind, and concurrent
    writers of the same key simply race to an identical file.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def counters(self) -> Dict[str, int]:
        """Hit/miss/invalidation counts since this instance was created.

        Invalidations count stale entries dropped by :meth:`get` (schema
        bump, key mismatch, unparseable result); every invalidation is
        also a miss.  Sweep summaries and the service progress line
        report these so a cold or churning cache is visible.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
        }

    def _entry_path(self, key: Dict[str, object]) -> Path:
        return self.directory / f"{key_digest(key)}.json"

    def get(self, key: Dict[str, object]) -> Optional[SimulationResult]:
        """The stored result for ``key``, or ``None`` on a miss.

        Stale entries (schema bump, key mismatch, corrupt JSON) are
        deleted so the cache self-heals.
        """
        path = self._entry_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if entry.get("schema") != SCHEMA_VERSION or entry.get("key") != key:
            try:
                path.unlink()
            except OSError:
                pass
            self.invalidations += 1
            self.misses += 1
            return None
        try:
            result = SimulationResult.from_dict(entry["result"])
        except (KeyError, TypeError, ValueError):
            try:
                path.unlink()
            except OSError:
                pass
            self.invalidations += 1
            self.misses += 1
            return None
        # Provenance rides alongside the result (not in the keyed
        # payload, so it never affects hits): entries written before it
        # existed surface as "unknown" rather than being invalidated.
        provenance = entry.get("provenance")
        result.backend_info = (
            dict(provenance)
            if isinstance(provenance, dict)
            else {"backend": "unknown", "kernel": "unknown"}
        )
        self.hits += 1
        return result

    def put(self, key: Dict[str, object], result: SimulationResult) -> None:
        """Store ``result`` under ``key`` (atomic, last writer wins)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "result": result.to_dict(),
        }
        if result.backend_info is not None:
            entry["provenance"] = dict(result.backend_info)
        path = self._entry_path(key)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    @classmethod
    def from_env(cls) -> Optional["SweepCache"]:
        """A cache at ``$REPRO_SWEEP_CACHE``, or ``None`` when unset.

        Raises :class:`ValueError` when the variable names an existing
        path that is not a directory -- a cache pointed at a regular
        file would silently store nothing.
        """
        directory = os.environ.get(CACHE_ENV_VAR, "").strip()
        if not directory:
            return None
        path = Path(directory)
        if path.exists() and not path.is_dir():
            raise ValueError(
                f"{CACHE_ENV_VAR} must name a directory (created on "
                f"demand), but {directory!r} exists and is not one"
            )
        return cls(directory)
