"""Packets, flits and route plans for the cycle-accurate simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..topology.dragonfly import GlobalLink


@dataclass(slots=True)
class RoutePlan:
    """The per-packet routing decision, fixed at the source router.

    ``minimal`` selects between the 3-step minimal route and the 5-step
    Valiant route of Section 4.1.  ``gc1`` is the global channel leaving
    the source group (``None`` when the destination -- or, for Valiant,
    the intermediate group -- is the source group itself); ``gc2`` is the
    Valiant route's second global channel (``None`` for minimal routes or
    degenerate Valiant routes).
    """

    minimal: bool
    gc1: Optional[GlobalLink] = None
    gc2: Optional[GlobalLink] = None
    #: Simulator-internal partial memo keys, one per global-channel
    #: phase, derived from the plan's links so the engine's next-hop
    #: memo can key on small ints instead of hashing link objects per
    #: hop.  A pure function of the plan's contents (equal plans get
    #: equal keys).  Excluded from equality/repr; ``None`` until the
    #: simulator interns the plan.
    hop_key: Optional[Tuple[int, int]] = field(
        default=None, compare=False, repr=False
    )
    #: UGAL-internal first-hop cache: ``{src_router: (port, vc)}`` for
    #: the gc1 phase, which is a pure function of (plan contents,
    #: source router).  Living on the plan, entries can never outlive
    #: the topology that produced the plan.  Excluded from
    #: equality/repr; ``None`` until first used.
    first_hops: Optional[Dict[int, Tuple[int, int]]] = field(
        default=None, compare=False, repr=False
    )

    @property
    def num_global_hops(self) -> int:
        return (self.gc1 is not None) + (self.gc2 is not None)


@dataclass(slots=True)
class Packet:
    """One network packet.

    Latency accounting: ``creation_time`` is when the traffic source
    produced the packet (start of source queueing); ``inject_time`` is
    when the head flit entered the source router; ``eject_time`` is when
    the tail flit reached the destination terminal.  Reported packet
    latency is ``eject_time - creation_time`` (the paper's convention --
    source queueing is included, which is what makes latency diverge at
    saturation).
    """

    index: int
    src_terminal: int
    dst_terminal: int
    creation_time: int
    size: int = 1
    plan: Optional[RoutePlan] = None
    measured: bool = False
    #: Protocol message class: 0 = request (or plain traffic), 1 = reply.
    #: Replies ride VCs ``3 * vc_class ..`` so the classes cannot block
    #: each other (protocol deadlock avoidance, Section 4.1).
    vc_class: int = 0
    #: For replies: the request packet this answers (round-trip latency
    #: is measured from the request's creation to the reply's ejection).
    request: Optional["Packet"] = None
    inject_time: Optional[int] = None
    eject_time: Optional[int] = None
    # Per-router (out_port, out_vc) assignment filled in by the head flit
    # so body/tail flits of multi-flit packets follow the same path.
    hop_assignment: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    @property
    def latency(self) -> int:
        if self.eject_time is None:
            raise ValueError(f"packet {self.index} has not been ejected")
        return self.eject_time - self.creation_time

    @property
    def is_minimal(self) -> bool:
        if self.plan is None:
            raise ValueError(f"packet {self.index} has no route plan")
        return self.plan.minimal


@dataclass(slots=True)
class Flit:
    """One flow-control unit of a packet.

    ``progress`` tracks progress through the route plan; its meaning is
    defined by the routing executor (for the dragonfly it counts global
    channels crossed).  ``next_progress`` is the value ``progress`` takes
    after the current hop, computed together with the output port.
    ``upstream`` identifies the buffer slot one hop upstream whose
    credit must be returned -- after the channel latency -- when this
    flit leaves its current buffer.
    """

    packet: Packet
    is_head: bool = True
    is_tail: bool = True
    progress: int = 0
    next_progress: int = 0
    # Input (port * num_vcs + vc) slot occupied at the current router.
    in_idx: int = -1
    # Credit return target one hop upstream: (credit slot index
    # ``router * radix * vcs + out_port * vcs + vc``, flat
    # ``router * radix + out_port`` channel-info index, channel latency).
    upstream: Optional[Tuple[int, int, int]] = None
    # Kind of the channel the flit arrived on (None right after injection);
    # the credit-delay mechanism never delays credits that must cross a
    # global channel.
    arrived_on_global: bool = False


def make_flits(packet: Packet) -> List[Flit]:
    """Split a packet into its flits (head flit first)."""
    if packet.size < 1:
        raise ValueError("packet size must be >= 1")
    if packet.size == 1:
        return [Flit(packet=packet, is_head=True, is_tail=True)]
    flits = [Flit(packet=packet, is_head=True, is_tail=False)]
    for _ in range(packet.size - 2):
        flits.append(Flit(packet=packet, is_head=False, is_tail=False))
    flits.append(Flit(packet=packet, is_head=False, is_tail=True))
    return flits
