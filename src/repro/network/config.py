"""Simulation configuration."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of the cycle-accurate simulator.

    Defaults follow the paper's methodology (Section 4.2): single-flit
    packets, Bernoulli injection, 16-flit input buffers per VC, warm-up
    followed by a measurement window whose tagged packets are drained.
    """

    #: Offered load in flits/terminal/cycle (0 < load <= 1).
    load: float = 0.1
    #: Cycles of warm-up before measurement starts.
    warmup_cycles: int = 1000
    #: Length of the measurement window in cycles.
    measure_cycles: int = 1000
    #: Upper bound on cycles spent draining tagged packets; exceeding it
    #: marks the run as saturated.
    drain_max_cycles: int = 100_000
    #: Input buffer depth per (port, VC) in flits.
    vc_buffer_depth: int = 16
    #: Virtual channels per port (3 suffices for non-minimal routing).
    num_vcs: int = 3
    #: Packet size in flits (1 = the paper's default; >1 uses virtual
    #: cut-through allocation).
    packet_size: int = 1
    #: RNG seed for traffic and tie-breaking.
    seed: int = 1
    #: Router pipeline depth in cycles, added to every router-to-router
    #: hop (the paper's routers are multi-cycle pipelines; ours default
    #: to the single-cycle idealisation).  Raising it shifts zero-load
    #: latency by (hops x pipeline) without changing any throughput
    #: result; the credit round-trip baseline accounts for it.
    router_pipeline_cycles: int = 0
    #: Request-reply protocol traffic (Section 4.1's protocol-deadlock
    #: remark): every delivered request spawns a reply back to its
    #: source, carried on a *separate VC class* (VCs 3..5) so replies can
    #: never be blocked behind requests.  Requires ``num_vcs >= 6``.
    #: Latency samples then measure the full round trip.
    request_reply: bool = False
    #: Bulk-synchronous mode: when set, every terminal creates exactly
    #: this many packets at cycle 0 and the run ends when all of them
    #: have been delivered (completion time = ``total_cycles``).  The
    #: warm-up/measurement windows are ignored; ``drain_max_cycles``
    #: still bounds the run.  Used by :mod:`repro.network.workloads`.
    packets_per_terminal: Optional[int] = None
    #: Gain applied to the credit-delay backpressure of UGAL-L_CR:
    #: credits are delayed by ``gain * (t_d(O) - min_o t_d(o))``.  Gain 1
    #: is the paper's formula verbatim; larger gains stiffen backpressure
    #: further, emulating proportionally shallower buffers (the paper's
    #: "appearance of shallower buffers") -- see the ablation benchmark.
    credit_delay_gain: float = 4.0

    def __post_init__(self) -> None:
        if not (0.0 < self.load <= 1.0):
            raise ValueError(f"load must be in (0, 1], got {self.load}")
        if self.warmup_cycles < 0 or self.measure_cycles < 1:
            raise ValueError("invalid warmup/measurement window")
        if self.vc_buffer_depth < 1:
            raise ValueError("vc_buffer_depth must be >= 1")
        if self.num_vcs < 3:
            raise ValueError("non-minimal dragonfly routing needs >= 3 VCs")
        if self.packet_size < 1:
            raise ValueError("packet_size must be >= 1")
        if self.packet_size > self.vc_buffer_depth:
            raise ValueError(
                "virtual cut-through needs vc_buffer_depth >= packet_size"
            )
        if self.credit_delay_gain < 0:
            raise ValueError("credit_delay_gain must be >= 0")
        if self.packets_per_terminal is not None and self.packets_per_terminal < 1:
            raise ValueError("packets_per_terminal must be >= 1 when set")
        if self.router_pipeline_cycles < 0:
            raise ValueError("router_pipeline_cycles must be >= 0")
        if self.request_reply and self.num_vcs < 6:
            raise ValueError(
                "request-reply traffic needs num_vcs >= 6 (two VC classes)"
            )

    def with_load(self, load: float) -> "SimulationConfig":
        return replace(self, load=load)

    def with_buffers(self, depth: int) -> "SimulationConfig":
        return replace(self, vc_buffer_depth=depth)
