"""Application-style bulk-synchronous workloads (extension).

The paper motivates the dragonfly with large multicomputers whose
application performance hinges on remote-memory communication.  This
module models that workload class directly: an application is a sequence
of *communication phases* (all-to-all, nearest-neighbour exchange,
transpose, ...), each delivering a fixed per-terminal message volume;
phase completion time -- the metric applications feel -- is measured by
running each phase to empty through the cycle-accurate simulator
(``packets_per_terminal`` bulk mode).

Predefined workloads approximate common HPC kernels using the synthetic
patterns available on a dragonfly:

* ``stencil_exchange`` -- halo exchanges with neighbouring ranks
  (shift patterns at two strides);
* ``fft_transpose`` -- all-to-all-heavy transpose phases mixed with
  uniform traffic;
* ``global_reduce`` -- hotspot convergence followed by broadcast-like
  uniform traffic;
* ``adversarial_neighbor`` -- group-to-next-group bulk exchange, the
  pattern that punishes minimal routing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..routing.ugal import make_routing
from ..topology.dragonfly import Dragonfly
from .config import SimulationConfig
from .backend import make_simulator
from .traffic import make_pattern


@dataclass(frozen=True)
class CommunicationPhase:
    """One bulk-synchronous communication phase."""

    name: str
    pattern: str
    #: Messages (packets) each terminal sends in this phase.
    packets_per_terminal: int
    packet_size: int = 1
    pattern_kwargs: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.packets_per_terminal < 1:
            raise ValueError("packets_per_terminal must be >= 1")
        if self.packet_size < 1:
            raise ValueError("packet_size must be >= 1")


@dataclass(frozen=True)
class ApplicationWorkload:
    """A named sequence of communication phases."""

    name: str
    phases: Sequence[CommunicationPhase]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a workload needs at least one phase")

    @property
    def total_packets_per_terminal(self) -> int:
        return sum(phase.packets_per_terminal for phase in self.phases)


@dataclass
class PhaseResult:
    """Completion statistics of one phase."""

    phase: CommunicationPhase
    completed: bool
    completion_cycles: int
    avg_latency: float
    p99_latency: float


@dataclass
class WorkloadResult:
    """Per-phase and aggregate results of one workload run."""

    workload: ApplicationWorkload
    routing_name: str
    phase_results: List[PhaseResult] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return all(result.completed for result in self.phase_results)

    @property
    def total_cycles(self) -> int:
        return sum(result.completion_cycles for result in self.phase_results)

    def summary(self) -> str:
        status = "ok" if self.completed else "INCOMPLETE"
        return (
            f"{self.workload.name:22s} {self.routing_name:10s} "
            f"{self.total_cycles:7d} cycles [{status}]"
        )


def run_workload(
    topology: Dragonfly,
    routing_name: str,
    workload: ApplicationWorkload,
    base_config: Optional[SimulationConfig] = None,
    seed: int = 1,
) -> WorkloadResult:
    """Run every phase to completion and collect its timing.

    Phases are bulk-synchronous: a phase starts only after the previous
    one fully drains (the simulator is reset between phases, modelling
    the barrier).
    """
    base_config = base_config or SimulationConfig()
    result = WorkloadResult(workload=workload, routing_name=routing_name)
    for index, phase in enumerate(workload.phases):
        config = dataclasses.replace(
            base_config,
            packets_per_terminal=phase.packets_per_terminal,
            packet_size=phase.packet_size,
            seed=seed + index,
        )
        pattern = make_pattern(
            phase.pattern, topology, seed=seed + 100 + index, **phase.pattern_kwargs
        )
        run = make_simulator(
            topology, make_routing(routing_name), pattern, config
        ).run()
        result.phase_results.append(
            PhaseResult(
                phase=phase,
                completed=run.drained,
                completion_cycles=run.total_cycles,
                avg_latency=run.avg_latency,
                p99_latency=run.latency_percentile(99),
            )
        )
    return result


# ----------------------------------------------------------------------
# Predefined workloads
# ----------------------------------------------------------------------
def stencil_exchange(volume: int = 8) -> ApplicationWorkload:
    """Nearest-neighbour halo exchange at two strides."""
    return ApplicationWorkload(
        name="stencil_exchange",
        phases=[
            CommunicationPhase(
                "halo+1", "shift", volume, pattern_kwargs={"offset": 1}
            ),
            CommunicationPhase(
                "halo-1", "shift", volume, pattern_kwargs={"offset": -1}
            ),
            CommunicationPhase(
                "halo+row", "shift", volume, pattern_kwargs={"offset": 8}
            ),
        ],
    )


def fft_transpose(volume: int = 6, num_terminals: Optional[int] = None) -> ApplicationWorkload:
    """Transpose-dominated kernel; falls back to uniform when N is not
    square (the transpose pattern needs a square terminal count)."""
    phases = [CommunicationPhase("butterfly", "uniform_random", volume)]
    side_ok = (
        num_terminals is not None
        and int(round(num_terminals**0.5)) ** 2 == num_terminals
    )
    pattern = "transpose" if side_ok else "random_permutation"
    phases.append(CommunicationPhase("transpose", pattern, volume))
    phases.append(CommunicationPhase("butterfly2", "uniform_random", volume))
    return ApplicationWorkload(name="fft_transpose", phases=phases)


def global_reduce(volume: int = 4) -> ApplicationWorkload:
    """Reduction to a root followed by redistribution."""
    return ApplicationWorkload(
        name="global_reduce",
        phases=[
            CommunicationPhase(
                "reduce",
                "hotspot",
                volume,
                pattern_kwargs={"hot_fraction": 0.5},
            ),
            CommunicationPhase("broadcast", "uniform_random", volume),
        ],
    )


def adversarial_neighbor(volume: int = 8) -> ApplicationWorkload:
    """Bulk group-to-next-group exchange (the paper's WC pattern)."""
    return ApplicationWorkload(
        name="adversarial_neighbor",
        phases=[
            CommunicationPhase("exchange", "worst_case", volume),
            CommunicationPhase("return", "worst_case", volume,
                               pattern_kwargs={"group_offset": -1}),
        ],
    )


def standard_workloads(num_terminals: Optional[int] = None) -> List[ApplicationWorkload]:
    return [
        stencil_exchange(),
        fft_transpose(num_terminals=num_terminals),
        global_reduce(),
        adversarial_neighbor(),
    ]
