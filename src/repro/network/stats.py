"""Measurement results of a simulation run.

The paper's methodology (Section 4.2): warm up, tag the packets injected
during a measurement window, run until every tagged packet has been
ejected, and report statistics over the tagged packets only.  Channel
utilisation and accepted throughput are measured over the window itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass
class LatencySample:
    """Latency of one tagged packet."""

    latency: int
    minimal: bool


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else math.nan


@dataclass
class SimulationResult:
    """Everything a run produces; figures are derived from these fields."""

    routing_name: str
    pattern_name: str
    offered_load: float
    num_terminals: int
    measure_cycles: int
    #: False when tagged packets could not be drained within the limit --
    #: the canonical signature of operating beyond saturation.
    drained: bool
    samples: List[LatencySample] = field(default_factory=list)
    #: Flits ejected during the measurement window (all packets).
    ejected_flits_in_window: int = 0
    #: Flits forwarded per *global* channel during the window, keyed by
    #: directed channel index.
    global_channel_flits: Dict[int, int] = field(default_factory=dict)
    #: Count of tagged packets still in flight when the run ended.
    unfinished_tagged: int = 0
    warmup_cycles: int = 0
    total_cycles: int = 0
    #: Mean per-terminal source-queue depth when the measurement window
    #: closed -- the cleanest saturation indicator (grows without bound
    #: beyond capacity, stays O(1) below it).
    avg_source_queue_at_end: float = 0.0
    #: Which engine produced this result (``{"backend": ..., "kernel":
    #: ...}``, plus ``"kernel_fallback"`` when the decide kernel was
    #: bypassed) -- pure provenance, so excluded from equality: the
    #: whole point of the backend contract is that scalar and array
    #: results compare equal.  Not part of :meth:`to_dict` either; the
    #: sweep cache stores it alongside the result instead.
    backend_info: Optional[Dict[str, str]] = field(
        default=None, compare=False, repr=False
    )

    # ------------------------------------------------------------------
    # Latency
    # ------------------------------------------------------------------
    @property
    def saturated(self) -> bool:
        return not self.drained

    @property
    def latencies(self) -> List[int]:
        return [s.latency for s in self.samples]

    @property
    def avg_latency(self) -> float:
        """Weighted average over minimal and non-minimal tagged packets."""
        return _mean(self.latencies)

    @property
    def avg_minimal_latency(self) -> float:
        return _mean([s.latency for s in self.samples if s.minimal])

    @property
    def avg_nonminimal_latency(self) -> float:
        return _mean([s.latency for s in self.samples if not s.minimal])

    @property
    def minimal_fraction(self) -> float:
        if not self.samples:
            return math.nan
        return sum(1 for s in self.samples if s.minimal) / len(self.samples)

    def latency_percentile(self, q: float) -> float:
        if not (0.0 <= q <= 100.0):
            raise ValueError("percentile must be in [0, 100]")
        if not self.samples:
            return math.nan
        ordered = sorted(self.latencies)
        rank = (len(ordered) - 1) * q / 100.0
        low = int(math.floor(rank))
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def latency_histogram(
        self, bin_width: int = 5, minimal_only: Optional[bool] = None
    ) -> List[Tuple[int, float]]:
        """(bin start, fraction of packets) pairs -- Figure 12's view."""
        if bin_width < 1:
            raise ValueError("bin_width must be >= 1")
        selected = [
            s.latency
            for s in self.samples
            if minimal_only is None or s.minimal == minimal_only
        ]
        if not self.samples:
            return []
        counts: Dict[int, int] = {}
        for latency in selected:
            counts[latency // bin_width] = counts.get(latency // bin_width, 0) + 1
        total = len(self.samples)  # fractions relative to all tagged packets
        return [
            (bin_index * bin_width, counts[bin_index] / total)
            for bin_index in sorted(counts)
        ]

    # ------------------------------------------------------------------
    # Throughput and channel load
    # ------------------------------------------------------------------
    @property
    def accepted_load(self) -> float:
        """Flits ejected per terminal per cycle during the window."""
        return self.ejected_flits_in_window / (self.num_terminals * self.measure_cycles)

    def global_channel_utilization(self) -> Dict[int, float]:
        """Busy fraction of each directed global channel over the window."""
        return {
            channel: flits / self.measure_cycles
            for channel, flits in sorted(self.global_channel_flits.items())
        }

    # ------------------------------------------------------------------
    # Serialisation (result cache, golden fixtures)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-able dict of every stored field (derived stats excluded).

        The layout is part of the cache schema: change it together with
        :data:`repro.network.cache.SCHEMA_VERSION`.
        """
        return {
            "routing_name": self.routing_name,
            "pattern_name": self.pattern_name,
            "offered_load": self.offered_load,
            "num_terminals": self.num_terminals,
            "measure_cycles": self.measure_cycles,
            "drained": self.drained,
            "samples": [[s.latency, s.minimal] for s in self.samples],
            # JSON object keys are strings; from_dict converts back.
            "global_channel_flits": {
                str(channel): flits
                for channel, flits in sorted(self.global_channel_flits.items())
            },
            "ejected_flits_in_window": self.ejected_flits_in_window,
            "unfinished_tagged": self.unfinished_tagged,
            "warmup_cycles": self.warmup_cycles,
            "total_cycles": self.total_cycles,
            "avg_source_queue_at_end": self.avg_source_queue_at_end,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimulationResult":
        """Inverse of :meth:`to_dict`."""
        samples = [
            LatencySample(latency=int(latency), minimal=bool(minimal))
            for latency, minimal in data["samples"]
        ]
        flits = {
            int(channel): int(count)
            for channel, count in data["global_channel_flits"].items()
        }
        return cls(
            routing_name=str(data["routing_name"]),
            pattern_name=str(data["pattern_name"]),
            offered_load=float(data["offered_load"]),
            num_terminals=int(data["num_terminals"]),
            measure_cycles=int(data["measure_cycles"]),
            drained=bool(data["drained"]),
            samples=samples,
            ejected_flits_in_window=int(data["ejected_flits_in_window"]),
            global_channel_flits=flits,
            unfinished_tagged=int(data["unfinished_tagged"]),
            warmup_cycles=int(data["warmup_cycles"]),
            total_cycles=int(data["total_cycles"]),
            avg_source_queue_at_end=float(data["avg_source_queue_at_end"]),
        )

    def summary(self) -> str:
        status = "saturated" if self.saturated else "ok"
        return (
            f"{self.routing_name:10s} {self.pattern_name:14s} "
            f"load={self.offered_load:.3f} accepted={self.accepted_load:.3f} "
            f"latency={self.avg_latency:7.2f} min%={100 * self.minimal_fraction:5.1f} "
            f"[{status}]"
        )
