"""Simulation backend selection and the backend-equivalence contract.

The cycle-accurate engine has two interchangeable implementations:

``scalar``
    The reference engine (:class:`~repro.network.simulator.Simulator`):
    pure-Python occupancy-driven loops.  Every behavioural contract in
    the repository -- golden fixtures, differential corpus, sanitizer
    laws -- is defined against this engine.
``array``
    The batched numpy engine
    (:class:`~repro.network.array_backend.ArraySimulator`): the
    per-cycle scans (injection Bernoulli draws, switch port/VC
    arbitration, credit eligibility, counter updates) run as masked
    array operations over the active sets.  Built for the paper's
    1056-node default scale (``p = h = 4, a = 8``) where the scalar
    engine's per-terminal/per-port Python overhead dominates.

Selection is *per run*: pass ``backend="array"`` to
:func:`make_simulator` / :func:`repro.network.simulator.simulate`, or
set ``REPRO_SIM_BACKEND=array`` in the environment to switch every run
that does not name a backend explicitly -- including the sweep
executor's worker processes and the sweep service, which inherit the
environment and need no changes.

Equivalence contract
--------------------

The array backend is not allowed to be "roughly right"; its agreement
with the scalar engine is a declared, machine-checked contract
(:func:`contract_for`), asserted by the backend-differential harness
(``tests/network/test_backend_differential.py``) over the 184-case
corpus, the golden fixtures, and a Hypothesis shape fuzzer:

* **Single-flit configurations** (``packet_size == 1``, the paper's
  default, with or without request-reply): **bit-identical**.  The
  array engine consumes the same RNG streams in the same order (the
  traffic Bernoulli stream is batch-drawn from a Mersenne-Twister whose
  state is transplanted verbatim into numpy, which reproduces
  CPython's ``random.random`` doubles exactly), and its vectorized
  switch arbitration is an exact reformulation: within one cycle every
  output port's decision depends only on that port's own queues,
  credits and round-robin pointer, so batching the decisions cannot
  reorder anything observable.
* **Multi-flit configurations** (``packet_size > 1``): the array
  backend currently runs the scalar engine's virtual cut-through paths
  unchanged (vectorizing them is future work), so runs are today also
  bit-identical; the *declared* contract is the weaker
  statistical-equivalence tolerance below, which is what the harness
  asserts first, so a future vectorized multi-flit path can relax to
  it without weakening any promise made here.

Tolerance equivalence means: at matched seeds, mean packet latency
agrees within ``mean_latency_rtol`` (relative), accepted load within
``accepted_load_atol`` (absolute, flits/terminal/cycle), and both
backends agree on whether the run saturated.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from .config import SimulationConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..routing.base import RoutingAlgorithm
    from ..topology.dragonfly import Dragonfly
    from .simulator import Simulator

#: Environment variable selecting the default backend (default scalar).
BACKEND_ENV_VAR = "REPRO_SIM_BACKEND"

#: The recognised backend names.
BACKENDS = ("scalar", "array")


def backend_from_env() -> str:
    """Backend name from ``REPRO_SIM_BACKEND``.

    Unset or blank means ``scalar``.  Anything else must name a known
    backend -- garbage raises :class:`ValueError` naming the variable
    instead of silently running the wrong engine.
    """
    raw = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    if not raw:
        return "scalar"
    if raw not in BACKENDS:
        raise ValueError(
            f"{BACKEND_ENV_VAR} must be one of {list(BACKENDS)}, got {raw!r}"
        )
    return raw


def resolve_backend(backend: Optional[str]) -> str:
    """Normalise an explicit backend name, or fall back to the env var."""
    if backend is None:
        return backend_from_env()
    name = backend.strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown simulation backend {backend!r}; choose from {list(BACKENDS)}"
        )
    return name


def make_simulator(
    topology: "Dragonfly",
    routing: "RoutingAlgorithm",
    pattern: Callable[[int], int],
    config: SimulationConfig,
    backend: Optional[str] = None,
) -> "Simulator":
    """Build the selected engine behind the uniform Simulator interface.

    ``backend=None`` defers to ``REPRO_SIM_BACKEND`` (default scalar),
    which is how the sweep executor's workers and the sweep service
    pick the backend up without any plumbing of their own.
    """
    name = resolve_backend(backend)
    if name == "array":
        try:
            from .array_backend import ArraySimulator
        except ImportError as exc:  # pragma: no cover - numpy is baked in
            raise RuntimeError(
                "the array simulation backend requires numpy; install it "
                "or select backend='scalar'"
            ) from exc
        return ArraySimulator(topology, routing, pattern, config)
    from .simulator import Simulator

    return Simulator(topology, routing, pattern, config)


@dataclass(frozen=True)
class EquivalenceContract:
    """What the array backend promises relative to the scalar engine."""

    #: True: per-packet latency samples, global channel flit counts and
    #: every other field of the result must match bit for bit.
    bit_identical: bool
    #: Relative tolerance on mean packet latency at matched seeds.
    mean_latency_rtol: float
    #: Absolute tolerance on accepted load (flits/terminal/cycle).
    accepted_load_atol: float
    #: One-line rationale, printed by the harness on failure.
    note: str
    #: Name of the batched decide kernel the array backend will engage
    #: on this configuration (``"decide-v1"``), or ``None`` when the
    #: kernel stays off or eligibility was not evaluated (``contract_for``
    #: called without topology/routing).
    decide_kernel: Optional[str] = None
    #: When the kernel stays off despite topology/routing being known:
    #: the human-readable ineligibility reason the backend will log.
    kernel_fallback: Optional[str] = None


#: Tolerances for configurations where only statistical equivalence is
#: promised.  Deliberately tight: at matched seeds the two engines see
#: identical traffic, so even a relaxed backend has no excuse for drift
#: beyond arbitration reorderings.
TOLERANCE = EquivalenceContract(
    bit_identical=False,
    mean_latency_rtol=0.02,
    accepted_load_atol=0.01,
    note=(
        "multi-flit virtual cut-through: contract allows tolerance "
        "equivalence (current implementation delegates to the scalar "
        "paths and is in fact bit-identical)"
    ),
)

BIT_IDENTICAL = EquivalenceContract(
    bit_identical=True,
    mean_latency_rtol=0.0,
    accepted_load_atol=0.0,
    note="single-flit: same RNG draw order, exact vectorized arbitration",
)


def contract_for(
    config: SimulationConfig,
    topology: Optional["Dragonfly"] = None,
    routing: Optional["RoutingAlgorithm"] = None,
) -> EquivalenceContract:
    """The equivalence the array backend owes on this configuration.

    The strength of the promise depends only on ``config`` (single-flit
    runs are bit-identical, multi-flit runs get the tolerance contract).
    Passing ``topology`` and ``routing`` additionally stamps the
    contract with the array backend's *kernel capability* on that exact
    setup: ``decide_kernel`` names the batched decide kernel that will
    engage, or ``kernel_fallback`` carries the ineligibility reason the
    backend will log when it falls back to per-packet decides.  Either
    way the equivalence promise itself is unchanged -- the kernel is an
    implementation tier inside the same contract, and the differential
    harness uses these fields only to assert that the tier it *thinks*
    it is certifying is the tier that actually ran.
    """
    base = BIT_IDENTICAL if config.packet_size == 1 else TOLERANCE
    if topology is None or routing is None:
        return base
    import dataclasses

    from .decide_kernel import KERNEL_NAME, kernel_ineligibility

    reason = kernel_ineligibility(config, topology, routing)
    if reason is None:
        return dataclasses.replace(base, decide_kernel=KERNEL_NAME)
    return dataclasses.replace(base, kernel_fallback=reason)


# ----------------------------------------------------------------------
# Divergence diagnostics (used by the differential harness on failure)
# ----------------------------------------------------------------------
def _state_fingerprint(sim: "Simulator") -> List[Tuple[str, object]]:
    """Cheap per-cycle digest of engine state, field by field."""
    view = sim.state_view()
    return [
        ("packet_counter", view.packet_counter),
        ("flits_delivered", view.flits_delivered),
        ("outstanding_tagged", view.outstanding_tagged),
        ("samples", len(view.samples)),
        ("buf_count", _as_tuple(view.buf_count)),
        ("credits", _as_tuple(view.credits)),
        ("pending", _as_tuple(view.pending)),
        ("pending_vc", _as_tuple(view.pending_vc)),
        ("rr_vc", _as_tuple(view.rr_vc)),
        ("source_queue", tuple(len(q) for q in view.source_queue)),
        (
            "arrival_ring",
            tuple(len(batch) for batch in view.arrival_ring),
        ),
        ("credit_ring", tuple(len(batch) for batch in view.credit_ring)),
    ]


def _as_tuple(seq) -> Tuple[int, ...]:
    return tuple(int(value) for value in seq)


def first_divergence(
    topology: "Dragonfly",
    routing_factory: Callable[[], "RoutingAlgorithm"],
    pattern_factory: Callable[[], Callable[[int], int]],
    config: SimulationConfig,
    max_cycles: Optional[int] = None,
) -> Optional[Tuple[int, str, object, object]]:
    """Run both backends in lockstep and locate the first state split.

    Returns ``(cycle, field, scalar_value, array_value)`` for the first
    cycle after which any fingerprinted engine field differs, or
    ``None`` when the two engines stay in lockstep for the whole run.
    Each backend gets its own freshly built routing and pattern so RNG
    streams start identically.  This is a diagnostic -- it re-simulates
    at one-cycle granularity and is far slower than a plain run; the
    differential harness only calls it after an equivalence assertion
    has already failed.
    """
    scalar = make_simulator(
        topology, routing_factory(), pattern_factory(), config, backend="scalar"
    )
    array = make_simulator(
        topology, routing_factory(), pattern_factory(), config, backend="array"
    )
    limit = (
        scalar._measure_end + config.drain_max_cycles
        if max_cycles is None
        else max_cycles
    )
    for now in range(limit):
        for sim in (scalar, array):
            sim.now = now
            sim._deliver_arrivals(now)
            sim._deliver_credits(now)
            sim._inject(now)
            sim._switch()
        for (field, left), (_, right) in zip(
            _state_fingerprint(scalar), _state_fingerprint(array)
        ):
            if left != right:
                return now, field, left, right
        if (
            now >= scalar._measure_end
            and scalar._outstanding_tagged == 0
            and array._outstanding_tagged == 0
        ):
            break
    return None
