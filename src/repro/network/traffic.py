"""Synthetic traffic patterns (Section 4.2).

Every pattern is a callable object mapping a source terminal to a
destination terminal, possibly randomised per call.  The two patterns the
paper evaluates are:

* **uniform random (UR)** -- benign; minimal routing suffices.
* **worst-case (WC)** -- adversarial: every node in group ``G_i`` sends
  to a random node in group ``G_{i+1}``, so minimal routing funnels all
  of a group's traffic onto the single global channel to the next group.

Additional standard patterns (tornado, bit complement, transpose, shift,
hotspot, fixed permutation) are provided for wider evaluation.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Protocol

from ..topology.dragonfly import Dragonfly


class TrafficPattern(Protocol):
    """Destination selector: ``pattern(src_terminal) -> dst_terminal``."""

    name: str

    def __call__(self, src_terminal: int) -> int: ...


class UniformRandom:
    """Each packet goes to a uniformly random terminal other than the source."""

    name = "uniform_random"

    def __init__(self, num_terminals: int, seed: int = 1) -> None:
        if num_terminals < 2:
            raise ValueError("uniform random traffic needs >= 2 terminals")
        self.num_terminals = num_terminals
        self._rng = random.Random(seed)

    def __call__(self, src_terminal: int) -> int:
        # Inlined ``randrange`` (state-identical rejection sampling, see
        # Random._randbelow_with_getrandbits): one draw per packet makes
        # the call overhead measurable at scale.
        n = self.num_terminals - 1
        getrandbits = self._rng.getrandbits
        k = n.bit_length()
        dst = getrandbits(k)
        while dst >= n:
            dst = getrandbits(k)
        return dst if dst < src_terminal else dst + 1


class WorstCase:
    """Adversarial group-to-next-group traffic (the paper's WC pattern)."""

    name = "worst_case"

    def __init__(self, topology, seed: int = 1, group_offset: int = 1) -> None:
        if topology.g < 2:
            raise ValueError("worst-case traffic needs >= 2 groups")
        if group_offset % topology.g == 0:
            raise ValueError("group_offset must not map a group to itself")
        self.topology = topology
        self.group_offset = group_offset
        self._rng = random.Random(seed)
        # Works for the canonical dragonfly and the Figure 6 group
        # variants, which expose terminals_per_group directly.
        params = getattr(topology, "params", None)
        if params is not None:
            self._per_group = params.terminals_per_group
        else:
            self._per_group = topology.terminals_per_group

    def __call__(self, src_terminal: int) -> int:
        per_group = self._per_group
        src_group = src_terminal // per_group
        dst_group = (src_group + self.group_offset) % self.topology.g
        # Inlined ``randrange`` (state-identical, see UniformRandom).
        getrandbits = self._rng.getrandbits
        k = per_group.bit_length()
        r = getrandbits(k)
        while r >= per_group:
            r = getrandbits(k)
        return dst_group * per_group + r


class GroupTornado:
    """Group-level tornado: group ``i`` sends to group ``i + ceil(g/2)``."""

    name = "group_tornado"

    def __init__(self, topology: Dragonfly, seed: int = 1) -> None:
        if topology.g < 2:
            raise ValueError("tornado traffic needs >= 2 groups")
        offset = (topology.g + 1) // 2
        self._inner = WorstCase(topology, seed=seed, group_offset=offset)

    def __call__(self, src_terminal: int) -> int:
        return self._inner(src_terminal)


class BitComplement:
    """Destination is the bitwise complement of the source index.

    Requires a power-of-two terminal count.
    """

    name = "bit_complement"

    def __init__(self, num_terminals: int) -> None:
        if num_terminals < 2 or num_terminals & (num_terminals - 1):
            raise ValueError("bit complement requires a power-of-two N")
        self.mask = num_terminals - 1

    def __call__(self, src_terminal: int) -> int:
        return src_terminal ^ self.mask


class Transpose:
    """Matrix-transpose permutation; requires ``N`` a perfect square."""

    name = "transpose"

    def __init__(self, num_terminals: int) -> None:
        side = int(round(num_terminals**0.5))
        if side * side != num_terminals:
            raise ValueError("transpose requires a square terminal count")
        self.side = side

    def __call__(self, src_terminal: int) -> int:
        row, col = divmod(src_terminal, self.side)
        return col * self.side + row


class Shift:
    """Fixed shift by ``offset`` terminals, wrapping around."""

    name = "shift"

    def __init__(self, num_terminals: int, offset: int) -> None:
        if offset % num_terminals == 0:
            raise ValueError("shift offset must not map a terminal to itself")
        self.num_terminals = num_terminals
        self.offset = offset

    def __call__(self, src_terminal: int) -> int:
        return (src_terminal + self.offset) % self.num_terminals


class Hotspot:
    """A fraction of traffic targets one hot terminal, rest is uniform."""

    name = "hotspot"

    def __init__(
        self,
        num_terminals: int,
        hot_terminal: int = 0,
        hot_fraction: float = 0.2,
        seed: int = 1,
    ) -> None:
        if not (0.0 < hot_fraction <= 1.0):
            raise ValueError("hot_fraction must be in (0, 1]")
        if not (0 <= hot_terminal < num_terminals):
            raise ValueError("hot_terminal out of range")
        self.hot_terminal = hot_terminal
        self.hot_fraction = hot_fraction
        self._uniform = UniformRandom(num_terminals, seed=seed)
        self._rng = random.Random(seed + 1)

    def __call__(self, src_terminal: int) -> int:
        if self._rng.random() < self.hot_fraction and src_terminal != self.hot_terminal:
            return self.hot_terminal
        return self._uniform(src_terminal)


class FbAdversarial:
    """Adversarial pattern for a flattened butterfly (extension).

    Every router sends to the router whose coordinate in one dimension
    (the last by default) is shifted by +1 -- the DOR analogue of the
    dragonfly's worst case: all of a router's traffic funnels onto one
    channel of that dimension, so minimal routing caps at ``1/c`` of
    capacity while adaptive/non-minimal routing spreads it.
    """

    name = "fb_adversarial"

    def __init__(self, topology, seed: int = 1, dim: int = -1) -> None:
        from ..topology.flattened_butterfly import FlattenedButterfly

        if not isinstance(topology, FlattenedButterfly):
            raise TypeError("FbAdversarial requires a FlattenedButterfly")
        num_dims = len(topology.dims)
        dim = dim % num_dims
        if topology.dims[dim] < 2:
            raise ValueError("adversarial dimension must have size >= 2")
        self.topology = topology
        self.dim = dim
        self._rng = random.Random(seed)

    def __call__(self, src_terminal: int) -> int:
        topology = self.topology
        src_router = topology.terminal_router(src_terminal)
        coords = list(topology.coords_of(src_router))
        coords[self.dim] = (coords[self.dim] + 1) % topology.dims[self.dim]
        dst_router = topology.router_at(coords)
        concentration = topology.concentration
        return dst_router * concentration + self._rng.randrange(concentration)


class TorusTornado:
    """Tornado pattern on a torus (extension).

    Every router sends to the router nearly half way around its dim-0
    ring -- the classic adversary for minimal routing on tori (all
    traffic circulates one way, loading each ring link ~(m-1)/2-fold).
    """

    name = "torus_tornado"

    def __init__(self, topology, seed: int = 1, dim: int = 0) -> None:
        from ..topology.torus import Torus

        if not isinstance(topology, Torus):
            raise TypeError("TorusTornado requires a Torus")
        dim = dim % len(topology.dims)
        if topology.dims[dim] < 3:
            raise ValueError("tornado needs a ring of size >= 3")
        self.topology = topology
        self.dim = dim
        self.offset = (topology.dims[dim] - 1) // 2
        self._rng = random.Random(seed)

    def __call__(self, src_terminal: int) -> int:
        topology = self.topology
        src_router = topology.terminal_router(src_terminal)
        coords = list(topology.coords_of(src_router))
        coords[self.dim] = (coords[self.dim] + self.offset) % topology.dims[self.dim]
        dst_router = topology.router_at(coords)
        concentration = topology.concentration
        return dst_router * concentration + self._rng.randrange(concentration)


class BurstyInterGroup:
    """Bursty inter-group traffic: each source streams to one random
    remote group for a burst, then redraws.

    Every source keeps a current destination group (never its own) and
    sends ``burst_length`` consecutive packets into it, choosing a
    uniformly random terminal inside the group per packet, before
    redrawing the group.  The result is adversarial in a way uniform
    random is not -- during a burst a source's minimal path pins the one
    global channel towards its burst group -- while still shifting the
    load around, so adaptive routing's per-packet decisions flip
    mid-stream.  Built as a decide-heavy stressor for the batched
    route-decision kernel: group popularity (and hence the UGAL queue
    comparison) changes on burst boundaries rather than per packet.
    """

    name = "bursty"

    def __init__(self, topology, seed: int = 1, burst_length: int = 8) -> None:
        if topology.g < 2:
            raise ValueError("bursty inter-group traffic needs >= 2 groups")
        if burst_length < 1:
            raise ValueError("burst_length must be >= 1")
        self.topology = topology
        self.burst_length = burst_length
        self._rng = random.Random(seed)
        params = getattr(topology, "params", None)
        if params is not None:
            self._per_group = params.terminals_per_group
        else:
            self._per_group = topology.terminals_per_group
        # Per-source burst state, created lazily on first send so the
        # RNG stream depends only on the order of draws, not on N.
        self._burst_group: Dict[int, int] = {}
        self._remaining: Dict[int, int] = {}

    def __call__(self, src_terminal: int) -> int:
        per_group = self._per_group
        g = self.topology.g
        left = self._remaining.get(src_terminal, 0)
        if left == 0:
            # Redraw the burst group: uniform over the g-1 other groups
            # (inlined randrange, state-identical to UniformRandom).
            src_group = src_terminal // per_group
            n = g - 1
            getrandbits = self._rng.getrandbits
            k = n.bit_length()
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            self._burst_group[src_terminal] = r if r < src_group else r + 1
            left = self.burst_length
        self._remaining[src_terminal] = left - 1
        dst_group = self._burst_group[src_terminal]
        getrandbits = self._rng.getrandbits
        k = per_group.bit_length()
        r = getrandbits(k)
        while r >= per_group:
            r = getrandbits(k)
        return dst_group * per_group + r


class RandomPermutation:
    """A fixed random permutation drawn once at construction."""

    name = "random_permutation"

    def __init__(self, num_terminals: int, seed: int = 1) -> None:
        rng = random.Random(seed)
        perm = list(range(num_terminals))
        rng.shuffle(perm)
        # Remove fixed points by rotating them onto a neighbour.
        for i in range(num_terminals):
            if perm[i] == i:
                j = (i + 1) % num_terminals
                perm[i], perm[j] = perm[j], perm[i]
        self.perm = perm

    def __call__(self, src_terminal: int) -> int:
        return self.perm[src_terminal]


def make_pattern(
    name: str,
    topology,
    seed: int = 1,
    **kwargs: object,
) -> TrafficPattern:
    """Factory by name; the names the experiment registry uses.

    ``topology`` is a dragonfly for the paper's patterns; the
    uniform/shift/hotspot/permutation families only need
    ``num_terminals`` and work on any topology, and ``fb_adversarial``
    requires a flattened butterfly.
    """
    n = topology.num_terminals
    factories: Dict[str, Callable[[], TrafficPattern]] = {
        "uniform_random": lambda: UniformRandom(n, seed=seed),
        "worst_case": lambda: WorstCase(topology, seed=seed, **kwargs),
        "group_tornado": lambda: GroupTornado(topology, seed=seed),
        "bit_complement": lambda: BitComplement(n),
        "transpose": lambda: Transpose(n),
        "shift": lambda: Shift(n, **kwargs) if kwargs else Shift(n, offset=n // 2),
        "hotspot": lambda: Hotspot(n, seed=seed, **kwargs),
        "random_permutation": lambda: RandomPermutation(n, seed=seed),
        "bursty": lambda: BurstyInterGroup(topology, seed=seed, **kwargs),
        "fb_adversarial": lambda: FbAdversarial(topology, seed=seed, **kwargs),
        "torus_tornado": lambda: TorusTornado(topology, seed=seed, **kwargs),
    }
    if name not in factories:
        raise ValueError(f"unknown traffic pattern {name!r}; choose from {sorted(factories)}")
    return factories[name]()
