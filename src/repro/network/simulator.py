"""Cycle-accurate flit-level dragonfly simulator.

Models the paper's evaluation vehicle (Section 4.2): single-cycle
input-queued routers with per-port virtual-channel buffers, credit-based
flow control, Bernoulli packet injection, and the warm-up / tagged
measurement window / drain methodology.

Routers are given "sufficient speedup" as in the paper -- the switch is
never the bottleneck.  Concretely: buffered flits are organised per
(output port, VC), so a flit is never blocked behind one heading to a
*different* output (no input head-of-line blocking), and each *output
port* forwards at most one flit per cycle (channel bandwidth is the only
switching constraint), round-robin over its VCs.  Buffer *space*
accounting stays on the input side: each flit occupies one slot of the
(input port, VC) buffer it arrived into, and that slot's credit returns
upstream when the flit leaves, exactly as in credit-based flow control.

Multi-flit packets use virtual cut-through allocation: each output VC
serves one packet at a time (a FIFO of per-packet flit streams), and a
head flit advances only when the downstream VC buffer has room for the
entire packet -- so a packet in flight can never stall mid-stream for
credits, and packets never interleave within a VC.

The credit round-trip latency mechanism of UGAL-L_CR (Section 4.3.2) is
implemented here: every router timestamps flits per output in a credit
time queue (CTQ) when they arrive, measures the credit round-trip time
``t_crt`` when the matching credit returns (so ``t_crt`` includes the
flit's queueing toward the output -- the congestion being sensed), stores
the excess ``t_d(O) = t_crt(O) - t_crt0(O)`` in a register, and delays
credits it returns upstream by ``gain * (t_d(O) - min_o t_d(o))``.
Credits that cross global channels are never delayed, which keeps the
expensive global channels fully utilisable and breaks feedback cycles.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..routing.base import RoutingAlgorithm
from ..topology.base import ChannelKind
from ..topology.dragonfly import Dragonfly
from .config import SimulationConfig
from .packet import Flit, Packet, make_flits
from .stats import LatencySample, SimulationResult

#: (dst_router, dst_port, latency, is_global, channel_index)
_ChannelInfo = Tuple[int, int, int, bool, int]


class _Stream:
    """Arrived-but-unsent flits of one packet at one output VC.

    Virtual cut-through: the stream at the *front* of an output VC's
    queue owns that VC's downstream buffer until its tail flit leaves.
    """

    __slots__ = ("packet", "flits")

    def __init__(self, packet: Packet) -> None:
        self.packet = packet
        self.flits: Deque[Flit] = deque()


class Simulator:
    """One simulation run binding a topology, routing algorithm, traffic
    pattern and configuration.  Also serves as the
    :class:`~repro.routing.base.CongestionView` the routing algorithms
    query."""

    def __init__(
        self,
        topology: Dragonfly,
        routing: RoutingAlgorithm,
        pattern: Callable[[int], int],
        config: SimulationConfig,
    ) -> None:
        self.topology = topology
        self.routing = routing
        self.pattern = pattern
        self.config = config
        self.now = 0
        terminal_latency = getattr(topology, "terminal_latency", 1)
        self._terminal_latency = terminal_latency
        self._rng_traffic = random.Random(config.seed)
        self._rng_route = random.Random(config.seed + 0x9E3779B9)

        num_routers = topology.fabric.num_routers
        radix = topology.fabric.max_radix()
        vcs = config.num_vcs
        self._num_routers = num_routers
        self._radix = radix
        self._vcs = vcs
        self._depth = config.vc_buffer_depth
        self._multi_flit = config.packet_size > 1

        # Per-router state.  Buffer *space* is accounted per input
        # (port, VC) slot; buffered flits are *queued* per output
        # (port, VC) so the switch has no input HOL blocking.
        self._buf_count: List[List[int]] = [
            [0] * (radix * vcs) for _ in range(num_routers)
        ]
        self._out_q: List[List[Deque[Flit]]] = [
            [deque() for _ in range(radix * vcs)] for _ in range(num_routers)
        ]
        self._credits: List[List[int]] = [
            [config.vc_buffer_depth] * (radix * vcs) for _ in range(num_routers)
        ]
        self._pending: List[List[int]] = [[0] * radix for _ in range(num_routers)]
        self._pending_vc: List[List[int]] = [
            [0] * (radix * vcs) for _ in range(num_routers)
        ]
        self._rr_vc: List[List[int]] = [[0] * radix for _ in range(num_routers)]
        # Multi-flit mode: per-router map (out_idx, packet index) -> the
        # packet's open stream, for appending body flits.
        self._streams: List[Dict[Tuple[int, int], _Stream]] = [
            {} for _ in range(num_routers)
        ]

        # Static wiring lookups.
        self._channel_info: List[List[Optional[_ChannelInfo]]] = [
            [None] * radix for _ in range(num_routers)
        ]
        self._network_ports: List[List[int]] = [[] for _ in range(num_routers)]
        fabric = topology.fabric
        for router in range(num_routers):
            for port in fabric.ports(router):
                channel = fabric.out_channel(router, port)
                if channel is None:
                    continue
                self._channel_info[router][port] = (
                    channel.dst.router,
                    channel.dst.port,
                    # The router pipeline is modelled as extra per-hop
                    # flight time; credits return over the same delay.
                    channel.latency + config.router_pipeline_cycles,
                    channel.kind == ChannelKind.GLOBAL,
                    channel.index,
                )
                self._network_ports[router].append(port)

        # Credit round-trip sensing (UGAL-L_CR).
        self._credit_delay_enabled = routing.needs_credit_delay
        self._ctq: List[List[Deque[int]]] = [
            [deque() for _ in range(radix)] for _ in range(num_routers)
        ]
        self._td: List[List[float]] = [[0.0] * radix for _ in range(num_routers)]
        self._tcrt0: List[List[int]] = [[0] * radix for _ in range(num_routers)]
        for router in range(num_routers):
            for port in self._network_ports[router]:
                info = self._channel_info[router][port]
                assert info is not None
                # Zero-load round trip: flit flight + same-cycle downstream
                # forwarding + credit flight.  Timestamps are taken when
                # the flit is *enqueued* toward the output, so t_crt
                # includes queueing toward O at this router -- the
                # congestion the mechanism exists to sense.
                self._tcrt0[router][port] = 2 * info[2]

        # Event wheels keyed by absolute cycle.
        self._arrivals: Dict[int, List[Tuple[int, int, Flit]]] = {}
        self._credit_events: Dict[int, List[Tuple[int, int]]] = {}

        # Injection state per terminal.
        num_terminals = topology.num_terminals
        self._source_queue: List[Deque[Packet]] = [deque() for _ in range(num_terminals)]
        self._inflight_injection: List[Deque[Flit]] = [deque() for _ in range(num_terminals)]
        self._terminal_router = [fabric.terminals[t].router for t in range(num_terminals)]
        self._terminal_port = [fabric.terminals[t].port for t in range(num_terminals)]

        # Measurement state.
        self._packet_counter = 0
        self._source_queue_at_end = 0.0
        self._outstanding_tagged = 0
        self._samples: List[LatencySample] = []
        self._ejected_flits_in_window = 0
        self._global_channel_flits: Dict[int, int] = {}
        self._measure_start = config.warmup_cycles
        self._measure_end = config.warmup_cycles + config.measure_cycles
        # Bulk-synchronous mode: the whole workload is created up front
        # and the run completes when every packet has been delivered.
        self._bulk_mode = config.packets_per_terminal is not None
        if self._bulk_mode:
            self._measure_start = 0
            self._measure_end = 0
            for terminal in range(num_terminals):
                for _ in range(config.packets_per_terminal):
                    packet = Packet(
                        index=self._packet_counter,
                        src_terminal=terminal,
                        dst_terminal=self.pattern(terminal),
                        creation_time=0,
                        size=config.packet_size,
                        measured=True,
                    )
                    self._packet_counter += 1
                    self._outstanding_tagged += 1
                    self._source_queue[terminal].append(packet)

    # ------------------------------------------------------------------
    # CongestionView interface (queried by routing algorithms)
    # ------------------------------------------------------------------
    def output_occupancy(self, router: int, out_port: int) -> int:
        """Queue occupancy of an output port *at this router*: flits
        buffered here that are routed to that output.

        Deliberately excludes any downstream state -- a router only learns
        about congestion elsewhere when exhausted credits stop its own
        queue from draining (backpressure).  This is exactly the
        indirect-information limitation of Section 4.3: the local queue
        ``q1`` reflects the remote global-channel queue ``q0`` only after
        ``q0`` is completely full.
        """
        return self._pending[router][out_port]

    def output_vc_occupancy(self, router: int, out_port: int, vc: int) -> int:
        """Per-VC component of :meth:`output_occupancy`."""
        return self._pending_vc[router][out_port * self._vcs + vc]

    def check_invariants(self) -> None:
        """Flow-control invariants; raises AssertionError on violation.

        Used by the test suite (and callable at any cycle): buffer
        occupancies stay within the configured depth, credit counters stay
        in range, and per-output pending counters match the queues.
        """
        depth = self._depth
        for router in range(self._num_routers):
            for index in range(self._radix * self._vcs):
                assert 0 <= self._buf_count[router][index] <= depth, (
                    f"buffer {index} of router {router} out of range"
                )
                assert 0 <= self._credits[router][index] <= depth, (
                    f"credit counter {index} of router {router} out of range"
                )
            for port in range(self._radix):
                queued = sum(
                    self._pending_vc[router][port * self._vcs + vc]
                    for vc in range(self._vcs)
                )
                assert queued == self._pending[router][port], (
                    f"pending counter of router {router} port {port} drifted"
                )

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        config = self.config
        limit = self._measure_end + config.drain_max_cycles
        drained = False
        for now in range(limit):
            self.now = now
            self._deliver_arrivals(now)
            self._deliver_credits(now)
            self._inject(now)
            self._switch()
            if now == self._measure_end:
                queues = self._source_queue
                self._source_queue_at_end = sum(
                    len(queue) for queue in queues
                ) / max(1, len(queues))
            if now >= self._measure_end and self._outstanding_tagged == 0:
                drained = True
                break
        return SimulationResult(
            routing_name=self.routing.name,
            pattern_name=getattr(self.pattern, "name", "custom"),
            offered_load=config.load,
            num_terminals=self.topology.num_terminals,
            measure_cycles=config.measure_cycles,
            drained=drained,
            samples=self._samples,
            ejected_flits_in_window=self._ejected_flits_in_window,
            global_channel_flits=self._global_channel_flits,
            unfinished_tagged=self._outstanding_tagged,
            warmup_cycles=config.warmup_cycles,
            total_cycles=self.now + 1,
            avg_source_queue_at_end=self._source_queue_at_end,
        )

    # ------------------------------------------------------------------
    # Phase 1: channel and credit deliveries
    # ------------------------------------------------------------------
    def _deliver_arrivals(self, now: int) -> None:
        batch = self._arrivals.pop(now, None)
        if not batch:
            return
        for router, port, flit in batch:
            assert flit.upstream is not None
            in_idx = port * self._vcs + flit.upstream[2]
            self._enqueue(router, in_idx, flit)

    def _deliver_credits(self, now: int) -> None:
        batch = self._credit_events.pop(now, None)
        if not batch:
            return
        for router, index in batch:
            self._credits[router][index] += 1
            if self._credit_delay_enabled:
                port = index // self._vcs
                ctq = self._ctq[router][port]
                if ctq:
                    t_crt = now - ctq.popleft()
                    excess = t_crt - self._tcrt0[router][port]
                    self._td[router][port] = float(max(0, excess))

    # ------------------------------------------------------------------
    # Phase 2: injection
    # ------------------------------------------------------------------
    def _inject(self, now: int) -> None:
        config = self.config
        if self._bulk_mode:
            for terminal in range(len(self._source_queue)):
                self._inject_one(terminal, now)
            return
        packet_prob = config.load / config.packet_size
        rng = self._rng_traffic
        tagged_window = self._measure_start <= now < self._measure_end
        for terminal in range(len(self._source_queue)):
            if rng.random() < packet_prob:
                packet = Packet(
                    index=self._packet_counter,
                    src_terminal=terminal,
                    dst_terminal=self.pattern(terminal),
                    creation_time=now,
                    size=config.packet_size,
                    measured=tagged_window,
                )
                self._packet_counter += 1
                if tagged_window:
                    self._outstanding_tagged += 1
                self._source_queue[terminal].append(packet)
            self._inject_one(terminal, now)

    def _inject_one(self, terminal: int, now: int) -> None:
        """Move at most one flit from the terminal into its router."""
        inflight = self._inflight_injection[terminal]
        router = self._terminal_router[terminal]
        port = self._terminal_port[terminal]
        if inflight:
            # Continue the current packet; space was reserved at head
            # injection and only this terminal fills the buffer.
            flit = inflight.popleft()
            in_idx = port * self._vcs + flit.packet.hop_assignment[router][1]
            self._enqueue(router, in_idx, flit)
            return
        queue = self._source_queue[terminal]
        if not queue:
            return
        packet = queue[0]
        if packet.plan is None:
            packet.plan = self.routing.decide(
                self, self.topology, self._rng_route, router, packet.dst_terminal
            )
            first_port, first_vc, _ = self.routing.next_hop(
                self.topology, router, packet.plan, 0, packet.dst_terminal
            )
            packet.hop_assignment[router] = (first_port, first_vc)
        in_vc = packet.hop_assignment[router][1]
        in_idx = port * self._vcs + in_vc
        free = self._depth - self._buf_count[router][in_idx]
        if free < packet.size:
            return
        queue.popleft()
        packet.inject_time = now
        flits = make_flits(packet)
        self._enqueue(router, in_idx, flits[0])
        for body in flits[1:]:
            inflight.append(body)

    # ------------------------------------------------------------------
    # Phase 3: switch traversal
    # ------------------------------------------------------------------
    def _enqueue(self, router: int, in_idx: int, flit: Flit) -> None:
        packet = flit.packet
        if flit.is_head:
            out_port, out_vc, next_progress = self.routing.next_hop(
                self.topology,
                router,
                packet.plan,
                flit.progress,
                packet.dst_terminal,
            )
            if packet.vc_class and self._channel_info[router][out_port] is not None:
                # Protocol classes ride disjoint VC sets (Section 4.1).
                out_vc += 3 * packet.vc_class
            packet.hop_assignment[router] = (out_port, out_vc)
            flit.next_progress = next_progress
        else:
            out_port, out_vc = packet.hop_assignment[router]
        flit.out_port = out_port
        flit.out_vc = out_vc
        flit.in_idx = in_idx
        if (
            self._credit_delay_enabled
            and self._channel_info[router][out_port] is not None
        ):
            # Credit time queue: stamp the flit toward its output now; the
            # stamp is popped when the downstream credit returns, so t_crt
            # measures queueing toward the output plus the round trip.
            self._ctq[router][out_port].append(self.now)
        self._buf_count[router][in_idx] += 1
        out_idx = out_port * self._vcs + out_vc
        if self._multi_flit:
            key = (out_idx, packet.index)
            if flit.is_head:
                stream = _Stream(packet)
                self._streams[router][key] = stream
                self._out_q[router][out_idx].append(stream)
            else:
                stream = self._streams[router][key]
            stream.flits.append(flit)
        else:
            self._out_q[router][out_idx].append(flit)
        self._pending[router][out_port] += 1
        self._pending_vc[router][out_idx] += 1

    def _switch(self) -> None:
        vcs = self._vcs
        for router in range(self._num_routers):
            pending = self._pending[router]
            out_q = self._out_q[router]
            rr = self._rr_vc[router]
            for out_port in range(self._radix):
                if not pending[out_port]:
                    continue
                base = out_port * vcs
                start = rr[out_port]
                for offset in range(vcs):
                    vc = (start + offset) % vcs
                    queue = out_q[base + vc]
                    if not queue:
                        continue
                    if self._multi_flit:
                        stream = queue[0]
                        if not stream.flits:
                            continue  # owner's next flit still in flight
                        flit = stream.flits[0]
                    else:
                        flit = queue[0]
                    if self._can_forward(router, out_port, vc, flit):
                        self._forward(router, out_port, flit)
                        rr[out_port] = (vc + 1) % vcs
                        break

    def _can_forward(self, router: int, out_port: int, vc: int, flit: Flit) -> bool:
        if self._channel_info[router][out_port] is None:
            return True  # ejection ports sink one flit per cycle
        available = self._credits[router][out_port * self._vcs + vc]
        if self._multi_flit and flit.is_head:
            # Virtual cut-through: reserve room for the whole packet.  The
            # stream queue guarantees no other packet consumes this VC's
            # credits before our tail leaves.
            return available >= flit.packet.size
        return available >= 1

    def _forward(self, router: int, out_port: int, flit: Flit) -> None:
        now = self.now
        vcs = self._vcs
        out_vc = flit.out_vc
        out_idx = out_port * vcs + out_vc
        if self._multi_flit:
            stream = self._out_q[router][out_idx][0]
            stream.flits.popleft()
            if flit.is_tail:
                self._out_q[router][out_idx].popleft()
                del self._streams[router][(out_idx, flit.packet.index)]
        else:
            self._out_q[router][out_idx].popleft()
        self._pending[router][out_port] -= 1
        self._pending_vc[router][out_idx] -= 1
        self._buf_count[router][flit.in_idx] -= 1

        info = self._channel_info[router][out_port]

        # Return the credit for the vacated buffer slot upstream, possibly
        # delayed by the credit round-trip mechanism.
        upstream = flit.upstream
        if upstream is not None:
            up_router, up_port, up_vc, up_latency = upstream
            delay = 0
            if (
                self._credit_delay_enabled
                and info is not None
                and not flit.arrived_on_global
            ):
                delay = self._credit_delay(router, out_port)
            self._credit_events.setdefault(now + up_latency + delay, []).append(
                (up_router, up_port * vcs + up_vc)
            )

        if info is None:
            self._eject(router, out_port, flit, now)
            return

        dst_router, dst_port, latency, is_global, channel_index = info
        self._credits[router][out_idx] -= 1
        flit.progress = flit.next_progress
        if is_global:
            if self._measure_start <= now < self._measure_end:
                self._global_channel_flits[channel_index] = (
                    self._global_channel_flits.get(channel_index, 0) + 1
                )
        flit.upstream = (router, out_port, out_vc, latency)
        flit.arrived_on_global = is_global
        self._arrivals.setdefault(now + latency, []).append((dst_router, dst_port, flit))

    def _credit_delay(self, router: int, out_port: int) -> int:
        """``gain * (t_d(O) - min_o t_d(o))`` over the network outputs."""
        td = self._td[router]
        minimum = min(td[port] for port in self._network_ports[router])
        excess = td[out_port] - minimum
        if excess <= 0:
            return 0
        return int(self.config.credit_delay_gain * excess)

    def _eject(self, router: int, port: int, flit: Flit, now: int) -> None:
        if self._measure_start <= now < self._measure_end:
            self._ejected_flits_in_window += 1
        if not flit.is_tail:
            return
        packet = flit.packet
        terminal = self.topology.fabric.terminal_at(router, port)
        assert terminal is not None and terminal.index == packet.dst_terminal, (
            f"packet {packet.index} for terminal {packet.dst_terminal} "
            f"ejected at router {router} port {port} (misrouted)"
        )
        packet.eject_time = now + self._terminal_latency
        if self.config.request_reply and packet.vc_class == 0:
            # The request stays open until its reply lands; spawn the
            # reply at the destination NIC.
            reply = Packet(
                index=self._packet_counter,
                src_terminal=packet.dst_terminal,
                dst_terminal=packet.src_terminal,
                creation_time=now + self._terminal_latency,
                size=packet.size,
                measured=packet.measured,
                vc_class=1,
                request=packet,
            )
            self._packet_counter += 1
            self._source_queue[packet.dst_terminal].append(reply)
            return
        if packet.measured:
            self._outstanding_tagged -= 1
            assert packet.plan is not None
            origin = packet.request if packet.request is not None else packet
            latency = packet.eject_time - origin.creation_time
            self._samples.append(
                LatencySample(latency=latency, minimal=packet.plan.minimal)
            )


def simulate(
    topology: Dragonfly,
    routing: RoutingAlgorithm,
    pattern: Callable[[int], int],
    config: SimulationConfig,
) -> SimulationResult:
    """Convenience one-shot run."""
    return Simulator(topology, routing, pattern, config).run()
