"""Cycle-accurate flit-level dragonfly simulator.

Models the paper's evaluation vehicle (Section 4.2): single-cycle
input-queued routers with per-port virtual-channel buffers, credit-based
flow control, Bernoulli packet injection, and the warm-up / tagged
measurement window / drain methodology.

Routers are given "sufficient speedup" as in the paper -- the switch is
never the bottleneck.  Concretely: buffered flits are organised per
(output port, VC), so a flit is never blocked behind one heading to a
*different* output (no input head-of-line blocking), and each *output
port* forwards at most one flit per cycle (channel bandwidth is the only
switching constraint), round-robin over its VCs.  Buffer *space*
accounting stays on the input side: each flit occupies one slot of the
(input port, VC) buffer it arrived into, and that slot's credit returns
upstream when the flit leaves, exactly as in credit-based flow control.

Multi-flit packets use virtual cut-through allocation: each output VC
serves one packet at a time (a FIFO of per-packet flit streams), and a
head flit advances only when the downstream VC buffer has room for the
entire packet -- so a packet in flight can never stall mid-stream for
credits, and packets never interleave within a VC.

The credit round-trip latency mechanism of UGAL-L_CR (Section 4.3.2) is
implemented here: every router timestamps flits per output in a credit
time queue (CTQ) when they arrive, measures the credit round-trip time
``t_crt`` when the matching credit returns (so ``t_crt`` includes the
flit's queueing toward the output -- the congestion being sensed), stores
the excess ``t_d(O) = t_crt(O) - t_crt0(O)`` in a register, and delays
credits it returns upstream by ``gain * (t_d(O) - min_o t_d(o))``.
Credits that cross global channels are never delayed, which keeps the
expensive global channels fully utilisable and breaks feedback cycles.

Engine organisation (see ``docs/simulator-performance.md``): the core
loop is *occupancy-driven* -- per-cycle work is proportional to traffic,
not machine size.  Every per-router counter lives in a flat list indexed
by precomputed bases (``router * radix * vcs + port * vcs + vc``); each
router keeps a bitmask of output ports with queued flits, and the switch
visits only those (routers with an empty mask are skipped entirely).
Channel and credit events travel through fixed-horizon calendar-queue
rings instead of hashed event maps; credit events whose delay exceeds
the ring horizon spill into an overflow map.  All of this is behaviour
preserving: the golden fixtures under ``tests/golden/`` pin the engine's
output bit for bit.
"""

from __future__ import annotations

import os
import random
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from ..routing.base import RoutingAlgorithm
from ..topology.base import ChannelKind
from ..topology.dragonfly import Dragonfly
from .config import SimulationConfig
from .packet import Flit, Packet, RoutePlan, make_flits
from .stats import LatencySample, SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing-only, avoids an import cycle
    from ..check.sanitizer import SimulatorSanitizer


class SimulatorStateError(RuntimeError):
    """Internal engine state violated a flow-control invariant.

    Raised (never asserted -- library code must fail under ``python -O``
    too) by :meth:`Simulator.check_invariants` and by consistency checks
    on the hot path."""


class SimulatorStateView:
    """Backend-neutral read window onto a live engine's state.

    The conservation sanitizer (:mod:`repro.check.sanitizer`) and the
    backend-differential diagnostics read engine state exclusively
    through this view, never through backend-private fields -- so the
    same audits run unchanged against the scalar engine and the array
    backend (:mod:`repro.network.array_backend`), and a future backend
    with a different layout only has to supply a view subclass.

    Every accessor delegates to the live simulator at call time rather
    than copying: an audit sees exactly the state the engine holds at
    that instant, including any corruption a test injects in place.
    """

    __slots__ = ("_sim",)

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim

    # -- run identity ---------------------------------------------------
    @property
    def config(self) -> SimulationConfig:
        return self._sim.config

    @property
    def now(self) -> int:
        return self._sim.now

    # -- geometry -------------------------------------------------------
    @property
    def num_routers(self) -> int:
        return self._sim._num_routers

    @property
    def radix(self) -> int:
        return self._sim._radix

    @property
    def vcs(self) -> int:
        return self._sim._vcs

    @property
    def rv(self) -> int:
        return self._sim._rv

    @property
    def depth(self) -> int:
        return self._sim._depth

    @property
    def multi_flit(self) -> bool:
        return self._sim._multi_flit

    @property
    def channel_info(self):
        return self._sim._channel_info

    @property
    def network_ports(self):
        return self._sim._network_ports

    # -- flow-control counters (flat layouts, see class docstring) ------
    @property
    def buf_count(self):
        return self._sim._buf_count

    @property
    def credits(self):
        return self._sim._credits

    @property
    def pending(self):
        return self._sim._pending

    @property
    def pending_vc(self):
        return self._sim._pending_vc

    @property
    def rr_vc(self):
        return self._sim._rr_vc

    # -- queues, rings, streams -----------------------------------------
    @property
    def out_q(self):
        return self._sim._out_q

    @property
    def streams(self):
        return self._sim._streams

    @property
    def source_queue(self):
        return self._sim._source_queue

    @property
    def inflight_injection(self):
        return self._sim._inflight_injection

    @property
    def arrival_ring(self):
        return self._sim._arrival_ring

    @property
    def credit_ring(self):
        return self._sim._credit_ring

    @property
    def credit_overflow(self):
        return self._sim._credit_overflow

    # -- measurement ----------------------------------------------------
    @property
    def packet_counter(self) -> int:
        return self._sim._packet_counter

    @property
    def flits_delivered(self) -> int:
        return self._sim._flits_delivered

    @property
    def outstanding_tagged(self) -> int:
        return self._sim._outstanding_tagged

    @property
    def samples(self):
        return self._sim._samples

    # -- active set -----------------------------------------------------
    # The scalar engine maintains explicit bitmasks and an active-router
    # set; the array backend derives activity from its pending array.
    # These two methods are the only polymorphic part of the view.
    def active_port_mask(self, router: int) -> int:
        """Bitmask of this router's output ports the engine considers
        active (bit ``p`` set iff port ``p`` has queued flits)."""
        return self._sim._active_mask[router]

    def router_marked_active(self, router: int) -> bool:
        """Whether the engine's switch phase would visit this router."""
        return router in self._sim._active_routers

#: (dst_router, dst_in_base, latency, is_global, channel_index) where
#: ``dst_in_base`` is the absolute VC-slot base of the downstream input
#: (``dst_router * radix * vcs + dst_port * vcs``), so arrival delivery
#: only adds the VC.
_ChannelInfo = Tuple[int, int, int, bool, int]

#: Entry cap for the next-hop memo (see ``_enqueue``).  Hop results are
#: tiny but key diversity grows with ``routers x destinations x plans``;
#: past the cap lookups still hit the hot entries populated first, we
#: just stop inserting cold ones.
_HOP_CACHE_MAX = 1 << 18

#: Extra calendar-queue slots for delayed credits beyond the maximum
#: channel round trip.  UGAL-L_CR's credit delay is unbounded in theory
#: (it scales with sensed queueing), so delays beyond the horizon fall
#: back to an overflow map -- the ring only has to catch the common case.
_CREDIT_RING_SLACK = 128


class _Stream:
    """Arrived-but-unsent flits of one packet at one output VC.

    Virtual cut-through: the stream at the *front* of an output VC's
    queue owns that VC's downstream buffer until its tail flit leaves.
    """

    __slots__ = ("packet", "flits")

    def __init__(self, packet: Packet) -> None:
        self.packet = packet
        self.flits: Deque[Flit] = deque()


class Simulator:
    """One simulation run binding a topology, routing algorithm, traffic
    pattern and configuration.  Also serves as the
    :class:`~repro.routing.base.CongestionView` the routing algorithms
    query."""

    def __init__(
        self,
        topology: Dragonfly,
        routing: RoutingAlgorithm,
        pattern: Callable[[int], int],
        config: SimulationConfig,
    ) -> None:
        self.topology = topology
        self.routing = routing
        self.pattern = pattern
        self.config = config
        self.now = 0
        terminal_latency = getattr(topology, "terminal_latency", 1)
        self._terminal_latency = terminal_latency
        self._rng_traffic = random.Random(config.seed)
        self._rng_route = random.Random(config.seed + 0x9E3779B9)

        num_routers = topology.fabric.num_routers
        radix = topology.fabric.max_radix()
        vcs = config.num_vcs
        rv = radix * vcs
        self._num_routers = num_routers
        self._radix = radix
        self._vcs = vcs
        self._rv = rv
        self._depth = config.vc_buffer_depth
        self._multi_flit = config.packet_size > 1
        self._request_reply = config.request_reply

        # Per-router state, flattened into contiguous lists indexed by
        # ``router * rv + port * vcs + vc`` (per input/output VC slot) or
        # ``router * radix + port`` (per port).  Buffer *space* is
        # accounted per input (port, VC) slot; buffered flits are
        # *queued* per output (port, VC) so the switch has no input HOL
        # blocking.
        self._buf_count: List[int] = [0] * (num_routers * rv)
        self._out_q: List[Deque] = [deque() for _ in range(num_routers * rv)]
        self._credits: List[int] = [config.vc_buffer_depth] * (num_routers * rv)
        self._pending: List[int] = [0] * (num_routers * radix)
        self._pending_vc: List[int] = [0] * (num_routers * rv)
        self._rr_vc: List[int] = [0] * (num_routers * radix)
        # Active set: per-router bitmask of output ports with queued
        # flits (a port's bit is set iff its pending counter is > 0) and
        # the set of routers whose mask is non-zero.  _enqueue/_forward
        # keep both exact, so _switch touches only occupied ports.
        self._active_mask: List[int] = [0] * num_routers
        self._active_routers: set = set()
        # Multi-flit mode: (absolute out_idx, packet index) -> the
        # packet's open stream, for appending body flits.
        self._streams: Dict[Tuple[int, int], _Stream] = {}

        # Static wiring lookups, flat per (router * radix + port).
        self._channel_info: List[Optional[_ChannelInfo]] = [None] * (
            num_routers * radix
        )
        self._network_ports: List[List[int]] = [[] for _ in range(num_routers)]
        #: Terminal index attached at (router * radix + port), -1 if none.
        self._eject_terminal: List[int] = [-1] * (num_routers * radix)
        fabric = topology.fabric
        max_latency = 1
        for router in range(num_routers):
            for port in fabric.ports(router):
                channel = fabric.out_channel(router, port)
                if channel is None:
                    terminal = fabric.terminal_at(router, port)
                    if terminal is not None:
                        self._eject_terminal[router * radix + port] = terminal.index
                    continue
                # The router pipeline is modelled as extra per-hop
                # flight time; credits return over the same delay.
                latency = channel.latency + config.router_pipeline_cycles
                if latency < 1:
                    raise ValueError(
                        f"channel {channel.index} has non-positive hop "
                        f"latency {latency}; the engine needs >= 1 cycle"
                    )
                if latency > max_latency:
                    max_latency = latency
                self._channel_info[router * radix + port] = (
                    channel.dst.router,
                    channel.dst.router * rv + channel.dst.port * vcs,
                    latency,
                    channel.kind == ChannelKind.GLOBAL,
                    channel.index,
                )
                self._network_ports[router].append(port)

        # Next-hop memo (see ``_hop``): the default dragonfly executor
        # is a pure function of (plan contents, router, progress,
        # destination), so its results can be cached across packets.
        # Plans are interned at decide time (``hop_key`` holds partial
        # keys derived from the plan's global links) and the memo
        # mirrors the executor's three phases, each of which depends on
        # only a slice of the arguments, so the keys are coarse and the
        # hit rates high.  Disabled when the routing overrides
        # ``next_hop`` -- a custom executor may not be pure (or may not
        # use dragonfly plans at all).
        self._hop_cache_enabled = (
            type(routing).next_hop is RoutingAlgorithm.next_hop
        )
        #: Dense id per directed global link, in deterministic
        #: (router, port) order, for packing hop-memo keys.
        self._link_ids: Dict = {}
        if self._hop_cache_enabled and hasattr(topology, "global_links_of"):
            for router in range(num_routers):
                for link in topology.global_links_of(router):
                    if link not in self._link_ids:
                        self._link_ids[link] = len(self._link_ids)
        #: Phase caches: toward gc1 (progress 0), toward gc2 (progress
        #: 1), both keyed ``hop_key[phase] + router``; and the final
        #: local hop keyed ``router * num_routers + dst_router``.
        self._hop_cache0: Dict[int, Tuple[int, int, int]] = {}
        self._hop_cache1: Dict[int, Tuple[int, int, int]] = {}
        self._hop_cache2: Dict[int, Tuple[int, int]] = {}
        self._num_terminals = topology.num_terminals
        #: Destination router and ejection (port, vc) per terminal.
        self._dst_router: List[int] = [
            topology.terminal_router(t) for t in range(self._num_terminals)
        ]
        self._eject_hop: List[Tuple[int, int]] = [
            (topology.terminal_port(t), 0) for t in range(self._num_terminals)
        ]
        #: Round-robin VC visit orders: ``_vc_order[start]`` is the full
        #: rotation starting at ``start``, precomputed so the switch
        #: avoids per-probe modular arithmetic.
        self._vc_order: List[Tuple[int, ...]] = [
            tuple((start + offset) % vcs for offset in range(vcs))
            for start in range(vcs)
        ]

        # Credit round-trip sensing (UGAL-L_CR), flat per (router, port).
        # ``_td_min`` caches ``min_o t_d(o)`` over each router's network
        # ports; _deliver_credits keeps it exact on every t_d update so
        # _forward never recomputes the min per forwarded flit.
        self._credit_delay_enabled = routing.needs_credit_delay
        self._credit_gain = config.credit_delay_gain
        self._ctq: List[Deque[int]] = [deque() for _ in range(num_routers * radix)]
        self._td: List[float] = [0.0] * (num_routers * radix)
        self._td_min: List[float] = [0.0] * num_routers
        self._tcrt0: List[int] = [0] * (num_routers * radix)
        for router in range(num_routers):
            for port in self._network_ports[router]:
                info = self._channel_info[router * radix + port]
                if info is None:
                    raise SimulatorStateError(
                        f"network port {port} of router {router} has no "
                        "channel wiring"
                    )
                # Zero-load round trip: flit flight + same-cycle downstream
                # forwarding + credit flight.  Timestamps are taken when
                # the flit is *enqueued* toward the output, so t_crt
                # includes queueing toward O at this router -- the
                # congestion the mechanism exists to sense.
                self._tcrt0[router * radix + port] = 2 * info[2]

        # Calendar-queue event wheels.  An event scheduled ``offset``
        # cycles ahead lands in slot ``(now + offset) % size``; since
        # every offset is in [1, size] and slot ``t % size`` is drained
        # at the start of cycle ``t`` (before any same-cycle scheduling),
        # slots never mix events of different cycles.  Arrival offsets
        # are channel latencies, bounded by ``max_latency``; credit
        # offsets additionally carry the UGAL-L_CR delay, so they get
        # slack plus an overflow map for delays beyond the horizon.
        self._arrival_ring_size = max_latency
        self._arrival_ring: List[List[Tuple[int, int, Flit]]] = [
            [] for _ in range(self._arrival_ring_size)
        ]
        self._credit_ring_size = max_latency + _CREDIT_RING_SLACK
        self._credit_ring: List[List[Tuple[int, int]]] = [
            [] for _ in range(self._credit_ring_size)
        ]
        self._credit_overflow: Dict[int, List[Tuple[int, int]]] = {}

        # Injection state per terminal.
        num_terminals = topology.num_terminals
        self._source_queue: List[Deque[Packet]] = [deque() for _ in range(num_terminals)]
        self._inflight_injection: List[Deque[Flit]] = [deque() for _ in range(num_terminals)]
        self._terminal_router = [fabric.terminals[t].router for t in range(num_terminals)]
        self._terminal_port = [fabric.terminals[t].port for t in range(num_terminals)]
        #: Absolute base of the (router, injection port) VC slots.
        self._inject_base = [
            self._terminal_router[t] * rv + self._terminal_port[t] * vcs
            for t in range(num_terminals)
        ]

        # Measurement state.
        self._packet_counter = 0
        #: Flits ejected so far (all of them, not just measured ones) --
        #: the "delivered" leg of the sanitizer's flit-conservation law.
        self._flits_delivered = 0
        self._source_queue_at_end = 0.0
        self._outstanding_tagged = 0
        self._samples: List[LatencySample] = []
        self._ejected_flits_in_window = 0
        #: Flits per directed channel index during the window (dense;
        #: converted to the sparse dict of SimulationResult at run end).
        self._global_flits: List[int] = [0] * fabric.num_channels
        self._measure_start = config.warmup_cycles
        self._measure_end = config.warmup_cycles + config.measure_cycles
        # Bulk-synchronous mode: the whole workload is created up front
        # and the run completes when every packet has been delivered.
        self._bulk_mode = config.packets_per_terminal is not None
        if self._bulk_mode:
            self._measure_start = 0
            self._measure_end = 0
            for terminal in range(num_terminals):
                for _ in range(config.packets_per_terminal):
                    packet = Packet(
                        index=self._packet_counter,
                        src_terminal=terminal,
                        dst_terminal=self.pattern(terminal),
                        creation_time=0,
                        size=config.packet_size,
                        measured=True,
                    )
                    self._packet_counter += 1
                    self._outstanding_tagged += 1
                    self._source_queue[terminal].append(packet)

        # Opt-in conservation sanitizer (``REPRO_SANITIZE=1``); imported
        # lazily so the disabled mode never touches repro.check at all.
        self._sanitizer: Optional[SimulatorSanitizer] = None
        if os.environ.get("REPRO_SANITIZE", "") not in ("", "0"):
            from ..check.sanitizer import sanitizer_from_env

            self._sanitizer = sanitizer_from_env()

    # ------------------------------------------------------------------
    # CongestionView interface (queried by routing algorithms)
    # ------------------------------------------------------------------
    def output_occupancy(self, router: int, out_port: int) -> int:
        """Queue occupancy of an output port *at this router*: flits
        buffered here that are routed to that output.

        Deliberately excludes any downstream state -- a router only learns
        about congestion elsewhere when exhausted credits stop its own
        queue from draining (backpressure).  This is exactly the
        indirect-information limitation of Section 4.3: the local queue
        ``q1`` reflects the remote global-channel queue ``q0`` only after
        ``q0`` is completely full.
        """
        return self._pending[router * self._radix + out_port]

    def output_vc_occupancy(self, router: int, out_port: int, vc: int) -> int:
        """Per-VC component of :meth:`output_occupancy`."""
        return self._pending_vc[router * self._rv + out_port * self._vcs + vc]

    def state_view(self) -> SimulatorStateView:
        """Backend-neutral window onto the live engine state.

        The sanitizer's conservation laws and the backend-differential
        fingerprint read through this; a backend whose internal layout
        diverges from the flat-list reference overrides it with a view
        subclass answering the same questions.
        """
        return SimulatorStateView(self)

    def check_invariants(self) -> None:
        """Flow-control invariants; raises SimulatorStateError on violation.

        Used by the test suite (and callable at any cycle, including
        mid-run): buffer occupancies stay within the configured depth,
        credit counters stay in range, per-output pending counters match
        the queues, and the active set mirrors the pending counters (a
        port's bit is set iff its pending counter is > 0, a router is in
        the active set iff its mask is non-zero).  The checks are the
        structural subset (SAN001/SAN004) of the conservation sanitizer
        (:mod:`repro.check.sanitizer`); the full cross-structure laws
        run under ``REPRO_SANITIZE=1``.
        """
        from ..check.sanitizer import structural_findings

        findings = structural_findings(self)
        if findings:
            raise SimulatorStateError(
                "\n".join(finding.format() for finding in findings)
            )

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def backend_provenance(self) -> Dict[str, str]:
        """Engine identity stamped on every result (see ``backend_info``).

        The array backend overrides this to report its kernel variant
        and, when the decide kernel is bypassed, the fallback reason.
        """
        return {"backend": "scalar", "kernel": "none"}

    def run(self) -> SimulationResult:
        config = self.config
        limit = self._measure_end + config.drain_max_cycles
        measure_end = self._measure_end
        drained = False
        deliver_arrivals = self._deliver_arrivals
        deliver_credits = self._deliver_credits
        inject = self._inject
        switch = self._switch
        sanitizer = self._sanitizer
        for now in range(limit):
            self.now = now
            deliver_arrivals(now)
            deliver_credits(now)
            inject(now)
            switch()
            if sanitizer is not None:
                # Post-switch is a phase boundary: every conservation
                # law the sanitizer audits holds here.
                sanitizer.maybe_audit(self, now)
            if now >= measure_end:
                if now == measure_end:
                    queues = self._source_queue
                    self._source_queue_at_end = sum(
                        len(queue) for queue in queues
                    ) / max(1, len(queues))
                if self._outstanding_tagged == 0:
                    drained = True
                    break
        if sanitizer is not None:
            # Final audit regardless of where the stride landed.
            sanitizer.audit(self)
        return SimulationResult(
            routing_name=self.routing.name,
            pattern_name=getattr(self.pattern, "name", "custom"),
            offered_load=config.load,
            num_terminals=self.topology.num_terminals,
            measure_cycles=config.measure_cycles,
            drained=drained,
            samples=self._samples,
            ejected_flits_in_window=self._ejected_flits_in_window,
            global_channel_flits={
                index: count
                for index, count in enumerate(self._global_flits)
                if count
            },
            unfinished_tagged=self._outstanding_tagged,
            warmup_cycles=config.warmup_cycles,
            total_cycles=self.now + 1,
            avg_source_queue_at_end=self._source_queue_at_end,
            backend_info=self.backend_provenance(),
        )

    # ------------------------------------------------------------------
    # Phase 1: channel and credit deliveries
    # ------------------------------------------------------------------
    def _deliver_arrivals(self, now: int) -> None:
        batch = self._arrival_ring[now % self._arrival_ring_size]
        if not batch:
            return
        if self._multi_flit or not self._hop_cache_enabled:
            enqueue = self._enqueue
            for router, in_idx, flit in batch:
                enqueue(router, in_idx, flit)
            batch.clear()
            return
        # Single-flit fast path: ``_enqueue`` (and ``_hop``'s phase
        # dispatch) inlined so the state bindings are paid once per
        # batch instead of once per flit (every flit is a head flit
        # here).  Mirrors ``_enqueue`` exactly.
        radix = self._radix
        vcs = self._vcs
        hop = self._hop
        cache0 = self._hop_cache0
        cache1 = self._hop_cache1
        cache2 = self._hop_cache2
        dst_routers = self._dst_router
        eject_hop = self._eject_hop
        num_routers = self._num_routers
        channel_info = self._channel_info
        credit_delay = self._credit_delay_enabled
        ctq = self._ctq
        buf_count = self._buf_count
        out_q = self._out_q
        pending = self._pending
        pending_vc = self._pending_vc
        active_mask = self._active_mask
        active_routers = self._active_routers
        for router, in_idx, flit in batch:
            packet = flit.packet
            plan = packet.plan
            hop_key = plan.hop_key
            dst = packet.dst_terminal
            progress = flit.progress
            if hop_key is None:
                h = self.routing.next_hop(self.topology, router, plan, progress, dst)
                out_port, out_vc, flit.next_progress = h
            elif progress == 0 and plan.gc1 is not None:
                h = cache0.get(hop_key[0] + router)
                if h is None:
                    h = hop(plan, hop_key, router, 0, dst)
                out_port, out_vc, flit.next_progress = h
            elif progress == 1 and plan.gc2 is not None:
                h = cache1.get(hop_key[1] + router)
                if h is None:
                    h = hop(plan, hop_key, router, 1, dst)
                out_port, out_vc, flit.next_progress = h
            else:
                dst_router = dst_routers[dst]
                if router == dst_router:
                    out_port, out_vc = eject_hop[dst]
                    flit.next_progress = progress
                else:
                    h2 = cache2.get(router * num_routers + dst_router)
                    if h2 is None:
                        h = self.routing.next_hop(
                            self.topology, router, plan, progress, dst
                        )
                        cache2[router * num_routers + dst_router] = (h[0], h[1])
                        out_port, out_vc, flit.next_progress = h
                    else:
                        out_port, out_vc = h2
                        flit.next_progress = progress
            p_idx = router * radix + out_port
            if packet.vc_class and channel_info[p_idx] is not None:
                out_vc += 3 * packet.vc_class
            # (No ``hop_assignment`` store: single-flit packets have no
            # body flits to replay the head's decision, and the source
            # router's entry -- the one injection retries read -- was
            # written at inject time.)
            flit.in_idx = in_idx
            if credit_delay and channel_info[p_idx] is not None:
                ctq[p_idx].append(now)
            buf_count[in_idx] += 1
            out_idx = p_idx * vcs + out_vc
            out_q[out_idx].append(flit)
            count = pending[p_idx] + 1
            pending[p_idx] = count
            if count == 1:
                mask = active_mask[router]
                if not mask:
                    active_routers.add(router)
                active_mask[router] = mask | (1 << out_port)
            pending_vc[out_idx] += 1
        batch.clear()

    def _deliver_credits(self, now: int) -> None:
        batch = self._credit_ring[now % self._credit_ring_size]
        if self._credit_overflow:
            overflow = self._credit_overflow.pop(now, None)
            if overflow:
                batch.extend(overflow)
        if not batch:
            return
        credits = self._credits
        if not self._credit_delay_enabled:
            for credit_idx, _ in batch:
                credits[credit_idx] += 1
        else:
            td = self._td
            radix = self._radix
            for credit_idx, port_idx in batch:
                credits[credit_idx] += 1
                ctq = self._ctq[port_idx]
                if ctq:
                    t_crt = now - ctq.popleft()
                    excess = t_crt - self._tcrt0[port_idx]
                    new = float(excess) if excess > 0 else 0.0
                    old = td[port_idx]
                    if new != old:
                        td[port_idx] = new
                        router = port_idx // radix
                        minimum = self._td_min[router]
                        if new < minimum:
                            self._td_min[router] = new
                        elif old == minimum:
                            # The old value defined the min and rose:
                            # recompute over this router's network ports.
                            base = router * radix
                            self._td_min[router] = min(
                                td[base + port]
                                for port in self._network_ports[router]
                            )
        batch.clear()

    # ------------------------------------------------------------------
    # Phase 2: injection
    # ------------------------------------------------------------------
    def _inject(self, now: int) -> None:
        source_queue = self._source_queue
        inflight = self._inflight_injection
        inject_one = self._inject_one
        if self._bulk_mode:
            for terminal in range(len(source_queue)):
                if source_queue[terminal] or inflight[terminal]:
                    inject_one(terminal, now)
            return
        config = self.config
        packet_prob = config.load / config.packet_size
        packet_size = config.packet_size
        rng_random = self._rng_traffic.random
        pattern = self.pattern
        tagged_window = self._measure_start <= now < self._measure_end
        counter = self._packet_counter
        for terminal in range(len(source_queue)):
            # The Bernoulli draw happens for every terminal every cycle
            # (the traffic stream is part of the determinism contract);
            # only the injection attempt is skipped for idle terminals.
            if rng_random() < packet_prob:
                # Positional construction (fields: index, src, dst,
                # creation_time, size, plan, measured): kwarg binding is
                # measurable at one packet per terminal-cycle.
                packet = Packet(
                    counter, terminal, pattern(terminal), now, packet_size,
                    None, tagged_window,
                )
                counter += 1
                if tagged_window:
                    self._outstanding_tagged += 1
                source_queue[terminal].append(packet)
                inject_one(terminal, now)
            elif source_queue[terminal] or inflight[terminal]:
                inject_one(terminal, now)
        self._packet_counter = counter

    def _inject_one(self, terminal: int, now: int) -> None:
        """Move at most one flit from the terminal into its router."""
        inflight = self._inflight_injection[terminal]
        router = self._terminal_router[terminal]
        base = self._inject_base[terminal]
        if inflight:
            # Continue the current packet; space was reserved at head
            # injection and only this terminal fills the buffer.
            flit = inflight.popleft()
            in_idx = base + flit.packet.hop_assignment[router][1]
            self._enqueue(router, in_idx, flit)
            return
        queue = self._source_queue[terminal]
        if not queue:
            return
        packet = queue[0]
        plan = packet.plan
        hop = None
        if plan is None:
            dst = packet.dst_terminal
            plan = self.routing.decide(
                self, self.topology, self._rng_route, router, dst
            )
            packet.plan = plan
            hop_key = None
            if self._hop_cache_enabled and type(plan) is RoutePlan:
                hop_key = plan.hop_key
                if hop_key is None:
                    hop_key = self._intern_plan(plan)
            if hop_key is not None:
                hop = self._hop(plan, hop_key, router, 0, dst)
            else:
                hop = self.routing.next_hop(self.topology, router, plan, 0, dst)
            packet.hop_assignment[router] = (hop[0], hop[1])
            in_idx = base + hop[1]
        else:
            # Retry after backpressure: the cheap stored (port, vc) is
            # enough for the space check; the full hop is recomputed
            # (a memo hit) only once space is actually available.
            in_idx = base + packet.hop_assignment[router][1]
        if self._depth - self._buf_count[in_idx] < packet.size:
            return
        queue.popleft()
        packet.inject_time = now
        if packet.size != 1 or self._multi_flit:
            flits = make_flits(packet)
            self._enqueue(router, in_idx, flits[0])
            for body in flits[1:]:
                inflight.append(body)
            return
        # Single-flit inline enqueue (mirrors the ``_enqueue`` head path)
        # reusing the hop already computed at decide time.
        flit = Flit(packet)
        if hop is None:
            dst = packet.dst_terminal
            hop_key = plan.hop_key if self._hop_cache_enabled else None
            if hop_key is not None:
                hop = self._hop(plan, hop_key, router, 0, dst)
            else:
                hop = self.routing.next_hop(self.topology, router, plan, 0, dst)
        out_port, out_vc, flit.next_progress = hop
        p_idx = router * self._radix + out_port
        channel = self._channel_info[p_idx]
        if packet.vc_class and channel is not None:
            # Protocol classes ride disjoint VC sets (Section 4.1); the
            # memo holds the raw hop, the offset is applied here.
            out_vc += 3 * packet.vc_class
        packet.hop_assignment[router] = (out_port, out_vc)
        flit.in_idx = in_idx
        if self._credit_delay_enabled and channel is not None:
            self._ctq[p_idx].append(now)
        self._buf_count[in_idx] += 1
        out_idx = p_idx * self._vcs + out_vc
        self._out_q[out_idx].append(flit)
        pending = self._pending
        count = pending[p_idx] + 1
        pending[p_idx] = count
        if count == 1:
            mask = self._active_mask[router]
            if not mask:
                self._active_routers.add(router)
            self._active_mask[router] = mask | (1 << out_port)
        self._pending_vc[out_idx] += 1

    # ------------------------------------------------------------------
    # Phase 3: switch traversal
    # ------------------------------------------------------------------
    def _intern_plan(self, plan: RoutePlan) -> Optional[Tuple[int, int]]:
        """Attach partial hop-memo keys derived from the plan's links.

        ``hop_key[phase]`` is ``(link_id * 2 + minimal) * num_routers``
        for the phase's global link, so ``hop_key[phase] + router`` is a
        collision-free small-int memo key.  Keys are a pure function of
        plan contents, so re-interning an equal plan (or a shared memoised
        plan across simulators of the same shape) writes the same value.
        Returns ``None`` for links outside this topology (a hand-built
        plan), leaving the plan uninterned.
        """
        link_ids = self._link_ids
        gc1 = plan.gc1
        gc2 = plan.gc2
        i0 = link_ids.get(gc1) if gc1 is not None else -1
        i1 = link_ids.get(gc2) if gc2 is not None else -1
        if i0 is None or i1 is None:
            return None
        nr = self._num_routers
        m = 1 if plan.minimal else 0
        key = (
            (i0 * 2 + m) * nr if i0 >= 0 else -1,
            (i1 * 2 + m) * nr if i1 >= 0 else -1,
        )
        plan.hop_key = key
        return key

    def _hop(
        self,
        plan: RoutePlan,
        hop_key: Tuple[int, int],
        router: int,
        progress: int,
        dst: int,
    ) -> Tuple[int, int, int]:
        """Memoised dragonfly next-hop: (out_port, out_vc, next_progress).

        Mirrors the three phases of the default executor
        (:func:`repro.routing.paths.next_hop`), each of which reads only
        a slice of the arguments -- so each phase caches under the
        smallest sound key.  Only used when ``_hop_cache_enabled``
        (i.e. the routing runs that exact executor); misses populate the
        caches from the executor itself, so a hit is bit-identical to a
        call by construction:

        * toward ``gc1`` (``progress == 0``): depends on plan contents
          and router only -> keyed ``(hop_key, router)``;
        * toward ``gc2`` (``progress == 1``): same shape;
        * final phase: ejection depends on the destination terminal
          alone (precomputed per terminal), the last local hop on
          ``(router, dst_router)`` alone (progress passes through
          unchanged -- local and terminal ports never advance it).
        """
        if progress == 0 and plan.gc1 is not None:
            cache = self._hop_cache0
            key = hop_key[0] + router
        elif progress == 1 and plan.gc2 is not None:
            cache = self._hop_cache1
            key = hop_key[1] + router
        else:
            dst_router = self._dst_router[dst]
            if router == dst_router:
                port, vc = self._eject_hop[dst]
                return port, vc, progress
            cache2 = self._hop_cache2
            key = router * self._num_routers + dst_router
            hop2 = cache2.get(key)
            if hop2 is None:
                hop = self.routing.next_hop(self.topology, router, plan, progress, dst)
                cache2[key] = (hop[0], hop[1])
                return hop
            return hop2[0], hop2[1], progress
        hop = cache.get(key)
        if hop is None:
            hop = self.routing.next_hop(self.topology, router, plan, progress, dst)
            if len(cache) < _HOP_CACHE_MAX:
                cache[key] = hop
        return hop

    def _enqueue(self, router: int, in_idx: int, flit: Flit) -> None:
        packet = flit.packet
        if flit.is_head:
            plan = packet.plan
            progress = flit.progress
            dst = packet.dst_terminal
            hop_key = plan.hop_key if self._hop_cache_enabled else None
            if hop_key is not None:
                hop = self._hop(plan, hop_key, router, progress, dst)
            else:
                hop = self.routing.next_hop(
                    self.topology, router, plan, progress, dst
                )
            out_port, out_vc, flit.next_progress = hop
            p_idx = router * self._radix + out_port
            if packet.vc_class and self._channel_info[p_idx] is not None:
                # Protocol classes ride disjoint VC sets (Section 4.1);
                # the memo holds the raw hop, the offset is applied here.
                out_vc += 3 * packet.vc_class
            packet.hop_assignment[router] = (out_port, out_vc)
        else:
            out_port, out_vc = packet.hop_assignment[router]
            p_idx = router * self._radix + out_port
        flit.in_idx = in_idx
        if self._credit_delay_enabled and self._channel_info[p_idx] is not None:
            # Credit time queue: stamp the flit toward its output now; the
            # stamp is popped when the downstream credit returns, so t_crt
            # measures queueing toward the output plus the round trip.
            self._ctq[p_idx].append(self.now)
        self._buf_count[in_idx] += 1
        out_idx = p_idx * self._vcs + out_vc
        if self._multi_flit:
            stream_key = (out_idx, packet.index)
            if flit.is_head:
                stream = _Stream(packet)
                self._streams[stream_key] = stream
                self._out_q[out_idx].append(stream)
            else:
                stream = self._streams[stream_key]
            stream.flits.append(flit)
        else:
            self._out_q[out_idx].append(flit)
        pending = self._pending
        count = pending[p_idx] + 1
        pending[p_idx] = count
        if count == 1:
            mask = self._active_mask[router]
            if not mask:
                self._active_routers.add(router)
            self._active_mask[router] = mask | (1 << out_port)
        self._pending_vc[out_idx] += 1

    def _switch(self) -> None:
        active = self._active_routers
        if not active:
            return
        now = self.now
        vcs = self._vcs
        radix = self._radix
        rv = self._rv
        out_q = self._out_q
        rr_vc = self._rr_vc
        credits = self._credits
        masks = self._active_mask
        channel_info = self._channel_info
        vc_order = self._vc_order
        pending = self._pending
        pending_vc = self._pending_vc
        buf_count = self._buf_count
        streams = self._streams
        global_flits = self._global_flits
        arrival_ring = self._arrival_ring
        arrival_ring_size = self._arrival_ring_size
        credit_ring = self._credit_ring
        credit_ring_size = self._credit_ring_size
        credit_delay = self._credit_delay_enabled
        td = self._td
        td_min = self._td_min
        credit_gain = self._credit_gain
        measuring = self._measure_start <= now < self._measure_end
        eject = self._eject
        # sorted() snapshots the set (forwarding may shrink it) and
        # fixes the visit order to ascending router, ascending port --
        # the same order the dense scan used, which sample ordering
        # (and therefore the golden fixtures) depends on.
        # Two copies of the arbitration loop: the single-flit one (the
        # common case) sheds the per-flit stream bookkeeping and
        # cut-through credit checks of the multi-flit one.  Keep them in
        # lockstep when editing.
        if not self._multi_flit:
            for router in sorted(active):
                mask = masks[router]
                qbase = router * rv
                rbase = router * radix
                while mask:
                    low = mask & -mask
                    mask -= low
                    out_port = low.bit_length() - 1
                    p_idx = rbase + out_port
                    base = qbase + out_port * vcs
                    info = channel_info[p_idx]
                    for vc in vc_order[rr_vc[p_idx]]:
                        out_idx = base + vc
                        queue = out_q[out_idx]
                        if not queue:
                            continue
                        # Ejection ports sink one flit per cycle; network
                        # ports need downstream credit.
                        if info is not None and credits[out_idx] < 1:
                            continue
                        flit = queue.popleft()
                        count = pending[p_idx] - 1
                        pending[p_idx] = count
                        if not count:
                            left = masks[router] & ~low
                            masks[router] = left
                            if not left:
                                active.discard(router)
                        pending_vc[out_idx] -= 1
                        buf_count[flit.in_idx] -= 1
                        # Return the credit for the vacated buffer slot
                        # upstream (``upstream`` carries the precomputed
                        # absolute credit/port indices), possibly delayed
                        # by the credit round-trip mechanism.
                        upstream = flit.upstream
                        if upstream is not None:
                            credit_idx, up_p_idx, offset = upstream
                            if (
                                credit_delay
                                and info is not None
                                and not flit.arrived_on_global
                            ):
                                excess = td[p_idx] - td_min[router]
                                if excess > 0:
                                    offset += int(credit_gain * excess)
                            if offset <= credit_ring_size:
                                credit_ring[
                                    (now + offset) % credit_ring_size
                                ].append((credit_idx, up_p_idx))
                            else:
                                overflow = self._credit_overflow
                                batch = overflow.get(now + offset)
                                if batch is None:
                                    overflow[now + offset] = [(credit_idx, up_p_idx)]
                                else:
                                    batch.append((credit_idx, up_p_idx))
                        if info is None:
                            eject(p_idx, flit, now, measuring)
                        else:
                            dst_router, dst_base, latency, is_global, channel_index = info
                            credits[out_idx] -= 1
                            flit.progress = flit.next_progress
                            if is_global and measuring:
                                global_flits[channel_index] += 1
                            flit.upstream = (out_idx, p_idx, latency)
                            flit.arrived_on_global = is_global
                            arrival_ring[(now + latency) % arrival_ring_size].append(
                                (dst_router, dst_base + vc, flit)
                            )
                        rr_vc[p_idx] = vc + 1 if vc + 1 < vcs else 0
                        break
            return
        for router in sorted(active):
            mask = masks[router]
            qbase = router * rv
            rbase = router * radix
            while mask:
                low = mask & -mask
                mask -= low
                out_port = low.bit_length() - 1
                p_idx = rbase + out_port
                base = qbase + out_port * vcs
                info = channel_info[p_idx]
                for vc in vc_order[rr_vc[p_idx]]:
                    out_idx = base + vc
                    queue = out_q[out_idx]
                    if not queue:
                        continue
                    stream = queue[0]
                    flits = stream.flits
                    if not flits:
                        continue  # owner's next flit still in flight
                    flit = flits[0]
                    if info is not None:
                        # Ejection ports sink one flit per cycle; network
                        # ports need downstream credit -- a whole packet's
                        # worth for a virtual cut-through head flit.
                        available = credits[out_idx]
                        if flit.is_head:
                            if available < flit.packet.size:
                                continue
                        elif available < 1:
                            continue
                    # Forward the flit.  This is the innermost hot path,
                    # inlined so the state bindings above are paid once
                    # per cycle instead of once per flit.
                    flits.popleft()
                    if flit.is_tail:
                        queue.popleft()
                        del streams[(out_idx, flit.packet.index)]
                    count = pending[p_idx] - 1
                    pending[p_idx] = count
                    if not count:
                        left = masks[router] & ~low
                        masks[router] = left
                        if not left:
                            active.discard(router)
                    pending_vc[out_idx] -= 1
                    buf_count[flit.in_idx] -= 1
                    # Return the credit for the vacated buffer slot
                    # upstream (``upstream`` carries the precomputed
                    # absolute credit/port indices), possibly delayed by
                    # the credit round-trip mechanism.
                    upstream = flit.upstream
                    if upstream is not None:
                        credit_idx, up_p_idx, offset = upstream
                        if (
                            credit_delay
                            and info is not None
                            and not flit.arrived_on_global
                        ):
                            excess = td[p_idx] - td_min[router]
                            if excess > 0:
                                offset += int(credit_gain * excess)
                        if offset <= credit_ring_size:
                            credit_ring[(now + offset) % credit_ring_size].append(
                                (credit_idx, up_p_idx)
                            )
                        else:
                            overflow = self._credit_overflow
                            batch = overflow.get(now + offset)
                            if batch is None:
                                overflow[now + offset] = [(credit_idx, up_p_idx)]
                            else:
                                batch.append((credit_idx, up_p_idx))
                    if info is None:
                        eject(p_idx, flit, now, measuring)
                    else:
                        dst_router, dst_base, latency, is_global, channel_index = info
                        credits[out_idx] -= 1
                        flit.progress = flit.next_progress
                        if is_global and measuring:
                            global_flits[channel_index] += 1
                        flit.upstream = (out_idx, p_idx, latency)
                        flit.arrived_on_global = is_global
                        arrival_ring[(now + latency) % arrival_ring_size].append(
                            (dst_router, dst_base + vc, flit)
                        )
                    rr_vc[p_idx] = vc + 1 if vc + 1 < vcs else 0
                    break

    def _eject(self, p_idx: int, flit: Flit, now: int, measuring: bool) -> None:
        self._flits_delivered += 1
        if measuring:
            self._ejected_flits_in_window += 1
        if not flit.is_tail:
            return
        packet = flit.packet
        terminal_index = self._eject_terminal[p_idx]
        if terminal_index != packet.dst_terminal:
            raise SimulatorStateError(
                f"packet {packet.index} for terminal {packet.dst_terminal} "
                f"ejected at router {p_idx // self._radix} port "
                f"{p_idx % self._radix} (misrouted)"
            )
        packet.eject_time = now + self._terminal_latency
        if self._request_reply and packet.vc_class == 0:
            # The request stays open until its reply lands; spawn the
            # reply at the destination NIC.
            reply = Packet(
                index=self._packet_counter,
                src_terminal=packet.dst_terminal,
                dst_terminal=packet.src_terminal,
                creation_time=now + self._terminal_latency,
                size=packet.size,
                measured=packet.measured,
                vc_class=1,
                request=packet,
            )
            self._packet_counter += 1
            self._source_queue[packet.dst_terminal].append(reply)
            return
        if packet.measured:
            self._outstanding_tagged -= 1
            if packet.plan is None:
                raise SimulatorStateError(
                    f"packet {packet.index} ejected without a route plan"
                )
            origin = packet.request if packet.request is not None else packet
            latency = packet.eject_time - origin.creation_time
            self._samples.append(
                LatencySample(latency=latency, minimal=packet.plan.minimal)
            )


def simulate(
    topology: Dragonfly,
    routing: RoutingAlgorithm,
    pattern: Callable[[int], int],
    config: SimulationConfig,
    backend: Optional[str] = None,
) -> SimulationResult:
    """Convenience one-shot run.

    ``backend`` selects the engine implementation (``"scalar"`` or
    ``"array"``); ``None`` defers to ``REPRO_SIM_BACKEND`` (default
    scalar).  See :mod:`repro.network.backend` for the equivalence
    contract between the engines.
    """
    from .backend import make_simulator

    return make_simulator(topology, routing, pattern, config, backend).run()
