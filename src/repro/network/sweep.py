"""Load sweeps and saturation-throughput search.

The paper's latency/throughput figures are load sweeps: run the simulator
at a series of offered loads and plot average latency (Figures 8, 10, 11,
14, 16) or read off the load where latency diverges (throughput).  This
module provides the sweep driver and a saturation-throughput bisection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..routing.base import RoutingAlgorithm
from ..routing.ugal import make_routing
from ..topology.dragonfly import Dragonfly
from .config import SimulationConfig
from .simulator import Simulator
from .stats import SimulationResult
from .traffic import make_pattern


@dataclass
class SweepPoint:
    """One (offered load, result) pair of a sweep."""

    load: float
    result: SimulationResult

    @property
    def latency(self) -> float:
        """Average latency, infinite when the run saturated."""
        if self.result.saturated:
            return math.inf
        return self.result.avg_latency


def run_point(
    topology: Dragonfly,
    routing: RoutingAlgorithm,
    pattern_name: str,
    config: SimulationConfig,
) -> SimulationResult:
    """One simulation run with a freshly seeded pattern."""
    pattern = make_pattern(pattern_name, topology, seed=config.seed + 17)
    return Simulator(topology, routing, pattern, config).run()


def load_sweep(
    topology: Dragonfly,
    routing_name: str,
    pattern_name: str,
    loads: Sequence[float],
    config: SimulationConfig,
) -> List[SweepPoint]:
    """Latency-vs-offered-load curve for one routing algorithm.

    Each point gets a fresh simulator and routing instance so runs are
    independent and reproducible.
    """
    points = []
    for load in loads:
        routing = make_routing(routing_name)
        result = run_point(topology, routing, pattern_name, config.with_load(load))
        points.append(SweepPoint(load=load, result=result))
    return points


def saturation_load(
    topology: Dragonfly,
    routing_name: str,
    pattern_name: str,
    config: SimulationConfig,
    low: float = 0.02,
    high: float = 1.0,
    tolerance: float = 0.02,
    latency_limit: Optional[float] = None,
    accepted_fraction: float = 0.97,
) -> float:
    """Bisection estimate of saturation throughput.

    A load is "beyond saturation" when the run fails to drain its tagged
    packets, when accepted load falls below ``accepted_fraction`` of the
    offered load (the robust criterion -- beyond saturation the network
    delivers its capacity regardless of the measurement window), or when
    ``latency_limit`` is given and average latency exceeds it.  Returns
    the highest load found below saturation.
    """

    def is_stable(load: float) -> bool:
        routing = make_routing(routing_name)
        result = run_point(topology, routing, pattern_name, config.with_load(load))
        if result.saturated:
            return False
        if result.accepted_load < accepted_fraction * load:
            return False
        if latency_limit is not None and result.avg_latency > latency_limit:
            return False
        return True

    if not is_stable(low):
        return 0.0
    if is_stable(high):
        return high
    while high - low > tolerance:
        mid = (low + high) / 2
        if is_stable(mid):
            low = mid
        else:
            high = mid
    return low
