"""Load sweeps and saturation-throughput search.

The paper's latency/throughput figures are load sweeps: run the simulator
at a series of offered loads and plot average latency (Figures 8, 10, 11,
14, 16) or read off the load where latency diverges (throughput).  This
module provides the sweep driver and a saturation-throughput bisection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..routing.base import RoutingAlgorithm
from ..topology.dragonfly import Dragonfly
from .backend import make_simulator
from .config import SimulationConfig
from .parallel import PointSpec, SweepExecutor
from .stats import SimulationResult
from .traffic import make_pattern


@dataclass
class SweepPoint:
    """One (offered load, result) pair of a sweep."""

    load: float
    result: SimulationResult

    @property
    def latency(self) -> float:
        """Average latency, infinite when the run saturated."""
        if self.result.saturated:
            return math.inf
        return self.result.avg_latency


def run_point(
    topology: Dragonfly,
    routing: RoutingAlgorithm,
    pattern_name: str,
    config: SimulationConfig,
) -> SimulationResult:
    """One simulation run with a freshly seeded pattern.

    The engine backend comes from ``REPRO_SIM_BACKEND`` (default
    scalar); worker processes inherit the environment, so the whole
    sweep/cache/service stack switches backends with no plumbing.
    """
    pattern = make_pattern(pattern_name, topology, seed=config.seed + 17)
    return make_simulator(topology, routing, pattern, config).run()


def load_sweep(
    topology: Dragonfly,
    routing_name: str,
    pattern_name: str,
    loads: Sequence[float],
    config: SimulationConfig,
    executor: Optional[SweepExecutor] = None,
) -> List[SweepPoint]:
    """Latency-vs-offered-load curve for one routing algorithm.

    Each point gets a fresh simulator and routing instance so runs are
    independent and reproducible.  ``executor`` selects parallelism and
    result caching (:mod:`repro.network.parallel`); the default runs
    serially in-process.  Points are returned in ``loads`` order and are
    bit-identical whichever executor computes them.
    """
    executor = executor or SweepExecutor()
    specs = [
        PointSpec(routing_name, pattern_name, config.with_load(load))
        for load in loads
    ]
    results = executor.run_points(topology, specs)
    return [
        SweepPoint(load=load, result=result)
        for load, result in zip(loads, results)
    ]


def saturation_load(
    topology: Dragonfly,
    routing_name: str,
    pattern_name: str,
    config: SimulationConfig,
    low: float = 0.02,
    high: float = 1.0,
    tolerance: float = 0.02,
    latency_limit: Optional[float] = None,
    accepted_fraction: float = 0.97,
    executor: Optional[SweepExecutor] = None,
) -> float:
    """Bisection estimate of saturation throughput.

    A load is "beyond saturation" when the run fails to drain its tagged
    packets, when accepted load falls below ``accepted_fraction`` of the
    offered load (the robust criterion -- beyond saturation the network
    delivers its capacity regardless of the measurement window), or when
    ``latency_limit`` is given and average latency exceeds it.  Returns
    the highest load found below saturation.

    Stable/unstable probes are memoised per load within the call, so no
    load is ever simulated twice, and routed through ``executor`` so an
    attached :class:`~repro.network.parallel.SweepCache` lets repeated
    bisections (tighter tolerance, different brackets, figure re-runs)
    reuse every previously probed load.
    """
    executor = executor or SweepExecutor()
    probes: Dict[float, bool] = {}

    def is_stable(load: float) -> bool:
        if load in probes:
            return probes[load]
        result = executor.run_point(
            topology, routing_name, pattern_name, config.with_load(load)
        )
        stable = True
        if result.saturated:
            stable = False
        elif result.accepted_load < accepted_fraction * load:
            stable = False
        elif latency_limit is not None and result.avg_latency > latency_limit:
            stable = False
        probes[load] = stable
        return stable

    if not is_stable(low):
        return 0.0
    if is_stable(high):
        return high
    while high - low > tolerance:
        mid = (low + high) / 2
        if is_stable(mid):
            low = mid
        else:
            high = mid
    return low
