"""Batched numpy engine for the cycle-accurate simulator.

:class:`ArraySimulator` is a drop-in engine behind the same
:class:`~repro.network.config.SimulationConfig`, the same routing layer
(``decide``/``next_hop`` are called exactly as the scalar engine calls
them, so :class:`~repro.routing.tables.TableDrivenRouting` and every
custom executor plug in unchanged) and the same
:class:`~repro.network.stats.SimulationResult`.  It exists for the
paper's 1056-node default scale (``p = h = 4, a = 8``) and beyond,
where the scalar engine's per-terminal and per-port Python overhead
dominates the run time.

What is vectorized, and why it stays bit-identical
--------------------------------------------------

* **Traffic Bernoulli draws.**  The scalar engine draws one
  ``random.random()`` per terminal per cycle -- the determinism
  contract pins the stream, but N Python-level draws per cycle are pure
  overhead.  The array engine transplants the Mersenne-Twister state of
  the traffic :class:`random.Random` into a
  :class:`numpy.random.RandomState` (both are MT19937 and both derive
  53-bit doubles from two 32-bit words the same way), then batch-draws
  one row of doubles per cycle.  The doubles are *equal bit for bit* to
  what the scalar engine would have drawn, in the same order --
  asserted at construction time on a probe draw.
* **Injection visits.**  Only terminals that drew an injection or have
  backlog are visited (a boolean busy array replaces the
  every-terminal scan), in ascending terminal order -- exactly the
  order the scalar engine consumes the pattern and route RNGs in.
* **Switch arbitration.**  Within one cycle, every output port's
  arbitration (round-robin VC probe, credit eligibility, at most one
  flit forwarded) reads and writes only that port's own queues,
  credits and round-robin pointer -- decisions are independent across
  ports, so they batch into masked array operations over the active
  ports with no observable reordering.  The per-flit tail work
  (dequeue, credit return, arrival scheduling, ejection) runs in
  ascending flat-port order, which is precisely the scalar engine's
  ``sorted(active)`` x ascending-port visit order, so sample order,
  ring order and every downstream FIFO order match.
* **Credit delivery.**  Returned credits apply as one duplicate-safe
  scatter-add per cycle instead of an element-at-a-time loop (in the
  plain credit path; UGAL-L_CR's round-trip sensing stays per event).

State lives where each representation is cheapest: ``pending_vc``,
``credits`` and ``rr_vc`` are int64 numpy arrays because the switch
probe gathers and scatters them wholesale, while ``pending`` and
``buf_count`` stay plain Python lists because their traffic is
element-at-a-time -- per-flit bookkeeping, and above all the routing
layer's ``output_occupancy`` reads on every UGAL decision, which must
not pay numpy scalar-boxing overhead.  The active-set bitmasks are
maintained exactly as in the scalar engine.

Multi-flit configurations (``packet_size > 1``) currently run the
inherited scalar virtual cut-through paths unchanged (the declared
contract for them is tolerance equivalence -- see
:mod:`repro.network.backend`); everything else, including request-reply
protocol traffic and bulk-synchronous workloads, takes the vectorized
paths.
"""

from __future__ import annotations

import random
from typing import Callable, List

import numpy as np

from ..routing.base import RoutingAlgorithm
from ..topology.dragonfly import Dragonfly
from .config import SimulationConfig
from .packet import Flit, Packet, RoutePlan
from .simulator import Simulator


def transplant_rng(rng: random.Random) -> np.random.RandomState:
    """A numpy RandomState continuing ``rng``'s exact double stream.

    CPython's :class:`random.Random` and numpy's legacy
    :class:`~numpy.random.RandomState` both run MT19937 and both build
    ``random()`` doubles as ``((a >> 5) * 2^26 + (b >> 6)) / 2^53`` from
    two consecutive 32-bit outputs, so copying the 624-word key and
    position reproduces the scalar stream bit for bit.
    """
    state = rng.getstate()
    if state[0] != 3:  # pragma: no cover - CPython's only current version
        raise RuntimeError(
            f"unsupported random.Random state version {state[0]}"
        )
    keys = np.asarray(state[1][:-1], dtype=np.uint32)
    pos = state[1][-1]
    np_rng = np.random.RandomState()
    np_rng.set_state(("MT19937", keys, pos))
    return np_rng


class ArraySimulator(Simulator):
    """Batched numpy implementation of the simulator engine."""

    def __init__(
        self,
        topology: Dragonfly,
        routing: RoutingAlgorithm,
        pattern: Callable[[int], int],
        config: SimulationConfig,
    ) -> None:
        super().__init__(topology, routing, pattern, config)
        #: Vectorized paths cover single-flit packets (the paper's
        #: default); multi-flit runs fall through to the inherited
        #: scalar cut-through machinery untouched.
        self._vectorized = config.packet_size == 1
        if not self._vectorized:
            return
        # Switch-probe state as int64 arrays (see module docstring for
        # why only these three); the inherited scalar paths that still
        # touch them element-wise keep working transparently.
        self._credits = np.asarray(self._credits, dtype=np.int64)
        self._pending_vc = np.asarray(self._pending_vc, dtype=np.int64)
        self._rr_vc = np.asarray(self._rr_vc, dtype=np.int64)
        #: True per flat port that has a network channel (ejection and
        #: unwired ports need no credit to forward).
        self._is_network = np.asarray(
            [info is not None for info in self._channel_info], dtype=bool
        )
        #: Busy terminals: source queue or mid-injection stream
        #: non-empty.  Injection visits busy terminals plus this
        #: cycle's Bernoulli winners instead of scanning all N.
        self._busy = np.asarray(
            [
                bool(self._source_queue[t]) or bool(self._inflight_injection[t])
                for t in range(self._num_terminals)
            ],
            dtype=bool,
        )
        # Continue the traffic RNG's exact stream in numpy, and prove
        # it on a probe draw: one double from a copy of each generator
        # must agree bit for bit.
        probe = random.Random()
        probe.setstate(self._rng_traffic.getstate())
        self._np_traffic = transplant_rng(self._rng_traffic)
        if transplant_rng(probe).random_sample() != probe.random():
            raise RuntimeError(  # pragma: no cover - MT19937 contract
                "numpy RandomState failed to reproduce random.Random's "
                "double stream; the array backend would break bit-identity"
            )
        # The probe consumed draws from copies only; self._np_traffic
        # still sits at the scalar stream's position.

    # ------------------------------------------------------------------
    # Phase 1: arrivals (per-flit hop dispatch, batched VC counters)
    # ------------------------------------------------------------------
    def _deliver_arrivals(self, now: int) -> None:
        if not self._vectorized:
            return super()._deliver_arrivals(now)
        batch = self._arrival_ring[now % self._arrival_ring_size]
        if not batch:
            return
        # Mirrors the scalar single-flit fast path: the hop decision and
        # FIFO appends stay per flit (the next-hop memo and the routing
        # executors are Python); the per-VC counter increments batch at
        # the end.  Also used when the hop cache is disabled
        # (table-driven or custom routing): ``hop_key`` is then None per
        # flit and the executor is consulted directly, exactly as
        # ``_enqueue`` does.
        radix = self._radix
        vcs = self._vcs
        hop = self._hop
        hop_cache_enabled = self._hop_cache_enabled
        cache0 = self._hop_cache0
        cache1 = self._hop_cache1
        cache2 = self._hop_cache2
        dst_routers = self._dst_router
        eject_hop = self._eject_hop
        num_routers = self._num_routers
        channel_info = self._channel_info
        credit_delay = self._credit_delay_enabled
        ctq = self._ctq
        buf_count = self._buf_count
        out_q = self._out_q
        pending = self._pending
        active_mask = self._active_mask
        active_routers = self._active_routers
        out_idxs: List[int] = []
        for router, in_idx, flit in batch:
            packet = flit.packet
            plan = packet.plan
            hop_key = plan.hop_key if hop_cache_enabled else None
            dst = packet.dst_terminal
            progress = flit.progress
            if hop_key is None:
                h = self.routing.next_hop(self.topology, router, plan, progress, dst)
                out_port, out_vc, flit.next_progress = h
            elif progress == 0 and plan.gc1 is not None:
                h = cache0.get(hop_key[0] + router)
                if h is None:
                    h = hop(plan, hop_key, router, 0, dst)
                out_port, out_vc, flit.next_progress = h
            elif progress == 1 and plan.gc2 is not None:
                h = cache1.get(hop_key[1] + router)
                if h is None:
                    h = hop(plan, hop_key, router, 1, dst)
                out_port, out_vc, flit.next_progress = h
            else:
                dst_router = dst_routers[dst]
                if router == dst_router:
                    out_port, out_vc = eject_hop[dst]
                    flit.next_progress = progress
                else:
                    h2 = cache2.get(router * num_routers + dst_router)
                    if h2 is None:
                        h = self.routing.next_hop(
                            self.topology, router, plan, progress, dst
                        )
                        cache2[router * num_routers + dst_router] = (h[0], h[1])
                        out_port, out_vc, flit.next_progress = h
                    else:
                        out_port, out_vc = h2
                        flit.next_progress = progress
            p_idx = router * radix + out_port
            if packet.vc_class and channel_info[p_idx] is not None:
                out_vc += 3 * packet.vc_class
            flit.in_idx = in_idx
            if credit_delay and channel_info[p_idx] is not None:
                ctq[p_idx].append(now)
            buf_count[in_idx] += 1
            out_idx = p_idx * vcs + out_vc
            out_q[out_idx].append(flit)
            count = pending[p_idx] + 1
            pending[p_idx] = count
            if count == 1:
                mask = active_mask[router]
                if not mask:
                    active_routers.add(router)
                active_mask[router] = mask | (1 << out_port)
            out_idxs.append(out_idx)
        # Two inputs can be routed to the same output VC in one cycle,
        # so the batched increment must be duplicate-safe.
        np.add.at(self._pending_vc, np.asarray(out_idxs, dtype=np.intp), 1)
        batch.clear()

    # ------------------------------------------------------------------
    # Phase 1b: credit delivery (batched scatter-add)
    # ------------------------------------------------------------------
    def _deliver_credits(self, now: int) -> None:
        if not self._vectorized or self._credit_delay_enabled:
            # UGAL-L_CR's round-trip sensing pops per-event CTQ stamps
            # and maintains running minima -- inherently sequential, so
            # the scalar path keeps it.
            return super()._deliver_credits(now)
        batch = self._credit_ring[now % self._credit_ring_size]
        if self._credit_overflow:
            overflow = self._credit_overflow.pop(now, None)
            if overflow:
                batch.extend(overflow)
        if not batch:
            return
        np.add.at(
            self._credits,
            np.asarray([event[0] for event in batch], dtype=np.intp),
            1,
        )
        batch.clear()

    # ------------------------------------------------------------------
    # Phase 2: injection (batched Bernoulli, busy-set visits)
    # ------------------------------------------------------------------
    def _inject(self, now: int) -> None:
        if not self._vectorized:
            return super()._inject(now)
        busy = self._busy
        inject_one = self._inject_one_array
        if self._bulk_mode:
            for terminal in np.nonzero(busy)[0].tolist():
                inject_one(terminal, now)
            return
        config = self.config
        packet_prob = config.load / config.packet_size
        # One batched row per cycle == the scalar engine's one draw per
        # terminal per cycle, double for double.
        draws = self._np_traffic.random_sample(self._num_terminals)
        injecting = draws < packet_prob
        visits = np.nonzero(injecting | busy)[0]
        if visits.size == 0:
            return
        pattern = self.pattern
        tagged_window = self._measure_start <= now < self._measure_end
        counter = self._packet_counter
        source_queue = self._source_queue
        for terminal, injects in zip(
            visits.tolist(), injecting[visits].tolist()
        ):
            if injects:
                packet = Packet(
                    counter, terminal, pattern(terminal), now, 1,
                    None, tagged_window,
                )
                counter += 1
                if tagged_window:
                    self._outstanding_tagged += 1
                source_queue[terminal].append(packet)
            inject_one(terminal, now)
        self._packet_counter = counter

    def _inject_one_array(self, terminal: int, now: int) -> None:
        """Single-flit injection attempt (mirrors ``_inject_one``).

        Differences from the scalar method: no multi-flit branches (the
        vectorized mode guarantees ``packet_size == 1``) and the busy
        flag is refreshed on exit so the visit set stays exact.
        """
        queue = self._source_queue[terminal]
        if not queue:
            self._busy[terminal] = False
            return
        router = self._terminal_router[terminal]
        base = self._inject_base[terminal]
        packet = queue[0]
        plan = packet.plan
        hop = None
        if plan is None:
            dst = packet.dst_terminal
            plan = self.routing.decide(
                self, self.topology, self._rng_route, router, dst
            )
            packet.plan = plan
            hop_key = None
            if self._hop_cache_enabled and type(plan) is RoutePlan:
                hop_key = plan.hop_key
                if hop_key is None:
                    hop_key = self._intern_plan(plan)
            if hop_key is not None:
                hop = self._hop(plan, hop_key, router, 0, dst)
            else:
                hop = self.routing.next_hop(self.topology, router, plan, 0, dst)
            packet.hop_assignment[router] = (hop[0], hop[1])
            in_idx = base + hop[1]
        else:
            # Retry after backpressure (see the scalar engine).
            in_idx = base + packet.hop_assignment[router][1]
        if self._depth - self._buf_count[in_idx] < 1:
            # No space: the queue is non-empty, so the terminal must be
            # revisited next cycle even if this visit came from a fresh
            # Bernoulli draw rather than the busy set.
            self._busy[terminal] = True
            return
        queue.popleft()
        packet.inject_time = now
        flit = Flit(packet)
        if hop is None:
            dst = packet.dst_terminal
            hop_key = plan.hop_key if self._hop_cache_enabled else None
            if hop_key is not None:
                hop = self._hop(plan, hop_key, router, 0, dst)
            else:
                hop = self.routing.next_hop(self.topology, router, plan, 0, dst)
        out_port, out_vc, flit.next_progress = hop
        p_idx = router * self._radix + out_port
        channel = self._channel_info[p_idx]
        if packet.vc_class and channel is not None:
            out_vc += 3 * packet.vc_class
        packet.hop_assignment[router] = (out_port, out_vc)
        flit.in_idx = in_idx
        if self._credit_delay_enabled and channel is not None:
            self._ctq[p_idx].append(now)
        self._buf_count[in_idx] += 1
        out_idx = p_idx * self._vcs + out_vc
        self._out_q[out_idx].append(flit)
        pending = self._pending
        count = pending[p_idx] + 1
        pending[p_idx] = count
        if count == 1:
            mask = self._active_mask[router]
            if not mask:
                self._active_routers.add(router)
            self._active_mask[router] = mask | (1 << out_port)
        self._pending_vc[out_idx] += 1
        self._busy[terminal] = bool(queue)

    # ------------------------------------------------------------------
    # Phase 3: switch (vectorized arbitration, ordered per-flit tail)
    # ------------------------------------------------------------------
    def _switch(self) -> None:
        if not self._vectorized:
            return super()._switch()
        active = self._active_routers
        if not active:
            return
        radix = self._radix
        masks = self._active_mask
        # Snapshot the active ports in ascending flat-port order -- the
        # scalar visit order (sorted routers, ascending ports), which
        # sample ordering and the golden fixtures depend on.
        act_ports: List[int] = []
        for router in sorted(active):
            mask = masks[router]
            rbase = router * radix
            while mask:
                low = mask & -mask
                mask -= low
                act_ports.append(rbase + low.bit_length() - 1)
        act = np.asarray(act_ports, dtype=np.intp)
        vcs = self._vcs
        credits = self._credits
        pending_vc = self._pending_vc
        rr = self._rr_vc[act]
        slot_base = act * vcs
        needs_no_credit = ~self._is_network[act]
        # Round-robin VC probe, all active ports at once: for each
        # offset in the rotation, a port still unselected takes this VC
        # iff the VC has queued flits and (ejection port, or downstream
        # credit available) -- the scalar loop's conditions verbatim.
        # Port decisions are independent within a cycle (each touches
        # only its own slots), so batching cannot reorder anything.
        selected_vc = np.full(act.size, -1, dtype=np.int64)
        for offset in range(vcs):
            vc = rr + offset
            vc[vc >= vcs] -= vcs
            slot = slot_base + vc
            take = (
                (selected_vc < 0)
                & (pending_vc[slot] > 0)
                & (needs_no_credit | (credits[slot] > 0))
            )
            selected_vc[take] = vc[take]
        chosen = selected_vc >= 0
        if not chosen.any():
            return
        ports = act[chosen]
        vc_sel = selected_vc[chosen]
        out_idx = ports * vcs + vc_sel
        # Batched bookkeeping: each selected port forwards exactly one
        # flit, network ports additionally consume one downstream
        # credit, and the round-robin pointer advances past the winner.
        pending_vc[out_idx] -= 1
        credits[out_idx] -= self._is_network[ports]
        next_rr = vc_sel + 1
        next_rr[next_rr >= vcs] = 0
        self._rr_vc[ports] = next_rr
        # Per-flit tail in ascending flat-port order (== scalar order):
        # dequeue, pending/active-set bookkeeping, upstream credit
        # return, forward or eject.
        now = self.now
        measuring = self._measure_start <= now < self._measure_end
        out_q = self._out_q
        buf_count = self._buf_count
        pending = self._pending
        channel_info = self._channel_info
        credit_delay = self._credit_delay_enabled
        td = self._td
        td_min = self._td_min
        credit_gain = self._credit_gain
        global_flits = self._global_flits
        arrival_ring = self._arrival_ring
        arrival_ring_size = self._arrival_ring_size
        credit_ring = self._credit_ring
        credit_ring_size = self._credit_ring_size
        eject = self._eject
        for p_idx, slot, vc in zip(
            ports.tolist(), out_idx.tolist(), vc_sel.tolist()
        ):
            flit = out_q[slot].popleft()
            count = pending[p_idx] - 1
            pending[p_idx] = count
            if not count:
                router = p_idx // radix
                left = masks[router] & ~(1 << (p_idx - router * radix))
                masks[router] = left
                if not left:
                    active.discard(router)
            buf_count[flit.in_idx] -= 1
            info = channel_info[p_idx]
            upstream = flit.upstream
            if upstream is not None:
                credit_idx, up_p_idx, offset = upstream
                if (
                    credit_delay
                    and info is not None
                    and not flit.arrived_on_global
                ):
                    excess = td[p_idx] - td_min[p_idx // radix]
                    if excess > 0:
                        offset += int(credit_gain * excess)
                if offset <= credit_ring_size:
                    credit_ring[(now + offset) % credit_ring_size].append(
                        (credit_idx, up_p_idx)
                    )
                else:
                    overflow = self._credit_overflow
                    batch = overflow.get(now + offset)
                    if batch is None:
                        overflow[now + offset] = [(credit_idx, up_p_idx)]
                    else:
                        batch.append((credit_idx, up_p_idx))
            if info is None:
                eject(p_idx, flit, now, measuring)
            else:
                dst_router, dst_base, latency, is_global, channel_index = info
                flit.progress = flit.next_progress
                if is_global and measuring:
                    global_flits[channel_index] += 1
                flit.upstream = (slot, p_idx, latency)
                flit.arrived_on_global = is_global
                arrival_ring[(now + latency) % arrival_ring_size].append(
                    (dst_router, dst_base + vc, flit)
                )

    def _eject(self, p_idx: int, flit: Flit, now: int, measuring: bool) -> None:
        super()._eject(p_idx, flit, now, measuring)
        if (
            self._vectorized
            and self._request_reply
            and flit.packet.vc_class == 0
        ):
            # The spawned reply queued at the request's destination NIC
            # must wake that terminal's injection.
            self._busy[flit.packet.dst_terminal] = True
