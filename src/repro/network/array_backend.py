"""Batched numpy engine for the cycle-accurate simulator.

:class:`ArraySimulator` is a drop-in engine behind the same
:class:`~repro.network.config.SimulationConfig`, the same routing layer
and the same :class:`~repro.network.stats.SimulationResult`.  It exists
for the paper's 1056-node default scale (``p = h = 4, a = 8``) and
beyond, where the scalar engine's per-terminal and per-port Python
overhead dominates the run time.

The engine has three tiers, selected at construction:

**Decide-kernel mode** (single-flit + registry routing on the canonical
single-link dragonfly -- the overwhelmingly common case).  Flits are
*integers* indexing columnar numpy state, and the per-packet routing
layer is replaced by the table lowering of
:mod:`repro.network.decide_kernel`:

* **Route decisions** batch per cycle: the Valiant intermediate-group
  draws replay the route rng's exact Mersenne-Twister stream
  (:class:`~repro.network.decide_kernel.VectorizedMT19937`), candidate
  first hops and UGAL hop counts come from dense per-group-pair tables,
  and only the final ``q_m * H_m <= q_nm * H_nm`` comparison stays
  sequential -- it must, because decisions earlier in the same cycle
  enqueue flits that change the occupancies later decisions read.
* **Hop advancement** in arrivals and the switch becomes numpy gathers
  over per-flit hop-key columns instead of per-flit executor calls.
* Per-packet objects survive only where observable: source queues hold
  real :class:`~repro.network.packet.Packet` objects until injection
  (blocked heads keep their decided plan exactly as the scalar engine
  does), and latency samples / spawned replies are reconstructed from
  flit columns at ejection, in the scalar engine's eject order.

**Vectorized fallback mode** (single-flit but non-registry routing,
non-dragonfly topology, or multiple global links per group pair): the
routing layer's ``decide``/``next_hop`` are called per packet exactly
as the scalar engine calls them -- :class:`TableDrivenRouting` and
custom executors plug in unchanged -- while traffic draws, switch
arbitration and credit delivery stay batched.  The fallback is never
silent: the reason is logged and recorded in
:meth:`backend_provenance`.

**Inherited scalar mode** (``packet_size > 1``): the virtual
cut-through paths of the scalar engine run unchanged.

What stays bit-identical, and why
---------------------------------

* **Traffic Bernoulli draws** transplant the Mersenne-Twister state of
  the traffic :class:`random.Random` into a
  :class:`numpy.random.RandomState` (both derive 53-bit doubles from
  two 32-bit words the same way) -- the batched row of doubles is equal
  bit for bit to the scalar per-terminal draws, asserted on a probe at
  construction.
* **Route decisions** (kernel mode) consume the route rng word-for-word
  as the scalar inlined rejection loop does, in the same
  ascending-terminal order, and the occupancy comparison reads the same
  live counters at the same point of the injection scan.
* **Switch arbitration** batches only decisions that are independent
  within a cycle (each output port touches its own queues, credits and
  round-robin pointer); the per-flit tail work runs in ascending
  flat-port order -- precisely the scalar visit order -- so sample
  order, ring order and every downstream FIFO order match.
* **Credit delivery** applies as one duplicate-safe scatter-add per
  cycle (plain path; UGAL-L_CR's round-trip sensing stays per event).
"""

from __future__ import annotations

import logging
import random
from itertools import chain
from typing import Callable, Dict, List, Optional

import numpy as np

from ..routing.base import RoutingAlgorithm
from ..topology.dragonfly import Dragonfly
from .config import SimulationConfig
from .decide_kernel import (
    KERNEL_NAME,
    DecideTables,
    VectorizedMT19937,
    kernel_ineligibility,
    lower_traffic,
)
from .packet import Flit, Packet, RoutePlan
from .simulator import Simulator, SimulatorStateError
from .stats import LatencySample

logger = logging.getLogger(__name__)


def transplant_rng(rng: random.Random) -> np.random.RandomState:
    """A numpy RandomState continuing ``rng``'s exact double stream.

    CPython's :class:`random.Random` and numpy's legacy
    :class:`~numpy.random.RandomState` both run MT19937 and both build
    ``random()`` doubles as ``((a >> 5) * 2^26 + (b >> 6)) / 2^53`` from
    two consecutive 32-bit outputs, so copying the 624-word key and
    position reproduces the scalar stream bit for bit.
    """
    state = rng.getstate()
    if state[0] != 3:  # pragma: no cover - CPython's only current version
        raise RuntimeError(
            f"unsupported random.Random state version {state[0]}"
        )
    keys = np.asarray(state[1][:-1], dtype=np.uint32)
    pos = state[1][-1]
    np_rng = np.random.RandomState()
    np_rng.set_state(("MT19937", keys, pos))
    return np_rng


#: Per-flit columnar state of the decide kernel.  A flit is an int id
#: indexing these; ids are recycled through a free list at ejection.
_FLIT_COLUMNS = (
    ("dst", np.int64),              # destination terminal
    ("dst_router", np.int64),       # its router (gather-friendly)
    ("hop0", np.int64),             # phase-0 hop-table key, -1 if none
    ("hop1", np.int64),             # phase-1 hop-table key, -1 if none
    ("minimal", np.bool_),          # RoutePlan.minimal of the decision
    ("measured", np.bool_),         # tagged for latency sampling
    ("progress", np.int64),         # global hops taken
    ("next_progress", np.int64),    # progress after the queued hop
    ("in_idx", np.int64),           # input VC slot holding the flit
    ("up_credit", np.int64),        # upstream credit slot, -1 at source
    ("up_pidx", np.int64),          # upstream flat port (CR sensing)
    ("up_lat", np.int64),           # upstream channel latency
    ("on_global", np.bool_),        # arrived over a global channel
    ("vc_off", np.int64),           # 3 * vc_class network-VC offset
    ("origin_creation", np.int64),  # creation time of the sample origin
    ("src_terminal", np.int64),     # source terminal (reply addressing)
    ("pkt", np.int64),              # packet index (error messages)
)


class ArraySimulator(Simulator):
    """Batched numpy implementation of the simulator engine."""

    def __init__(
        self,
        topology: Dragonfly,
        routing: RoutingAlgorithm,
        pattern: Callable[[int], int],
        config: SimulationConfig,
    ) -> None:
        super().__init__(topology, routing, pattern, config)
        #: Vectorized paths cover single-flit packets (the paper's
        #: default); multi-flit runs fall through to the inherited
        #: scalar cut-through machinery untouched.
        self._vectorized = config.packet_size == 1
        #: Decide-kernel mode: flits as column indices, batched routing.
        self._kernel = False
        #: Why the kernel is off (``None`` when it is on) -- surfaced by
        #: :meth:`backend_provenance` and logged at construction so the
        #: fallback is never silent.
        self._kernel_fallback_reason: Optional[str] = None
        #: Batched destination draws for the lowered random patterns
        #: (kernel mode only; ``None`` keeps the per-packet call).
        self._traffic_lowering = None
        if not self._vectorized:
            self._kernel_fallback_reason = (
                f"multi-flit packets (packet_size={config.packet_size})"
            )
            logger.info(
                "decide kernel disabled (%s); running inherited scalar paths",
                self._kernel_fallback_reason,
            )
            return
        # Switch-probe state as int64 arrays (see module docstring for
        # why only these three); the inherited scalar paths that still
        # touch them element-wise keep working transparently.
        self._credits = np.asarray(self._credits, dtype=np.int64)
        self._pending_vc = np.asarray(self._pending_vc, dtype=np.int64)
        self._rr_vc = np.asarray(self._rr_vc, dtype=np.int64)
        #: True per flat port that has a network channel (ejection and
        #: unwired ports need no credit to forward).
        self._is_network = np.asarray(
            [info is not None for info in self._channel_info], dtype=bool
        )
        self._port_shifts = np.arange(self._radix, dtype=np.int64)
        #: Busy terminals: source queue or mid-injection stream
        #: non-empty.  Injection visits busy terminals plus this
        #: cycle's Bernoulli winners instead of scanning all N.
        self._busy = np.asarray(
            [
                bool(self._source_queue[t]) or bool(self._inflight_injection[t])
                for t in range(self._num_terminals)
            ],
            dtype=bool,
        )
        # Continue the traffic RNG's exact stream in numpy, and prove
        # it on a probe draw: one double from a copy of each generator
        # must agree bit for bit.
        probe = random.Random()
        probe.setstate(self._rng_traffic.getstate())
        self._np_traffic = transplant_rng(self._rng_traffic)
        if transplant_rng(probe).random_sample() != probe.random():
            raise RuntimeError(  # pragma: no cover - MT19937 contract
                "numpy RandomState failed to reproduce random.Random's "
                "double stream; the array backend would break bit-identity"
            )
        # The probe consumed draws from copies only; self._np_traffic
        # still sits at the scalar stream's position.

        # Decide-kernel eligibility: exact registry routing on the
        # canonical dragonfly.  Anything else keeps the per-packet
        # vectorized fallback above.
        reason = kernel_ineligibility(config, topology, routing)
        if reason is None:
            try:
                self._mt_route = VectorizedMT19937.from_python_rng(
                    self._rng_route
                )
                self._tables = DecideTables(topology, routing, config.num_vcs)
            except ValueError as exc:  # pragma: no cover - defensive
                reason = str(exc)
        if reason is not None:
            self._kernel_fallback_reason = reason
            logger.info(
                "decide kernel disabled (%s); array backend falls back to "
                "per-packet decide",
                reason,
            )
            return
        self._kernel = True
        # The pattern rng transplant is only sound in kernel mode, where
        # every destination draw goes through the batched injection pass
        # (the scalar ``pattern(src)`` path would advance the Python rng
        # the lowering no longer tracks).
        self._traffic_lowering = lower_traffic(self.pattern)
        self._init_kernel_state()

    # ------------------------------------------------------------------
    # Provenance (recorded on every SimulationResult)
    # ------------------------------------------------------------------
    def backend_provenance(self) -> Dict[str, str]:
        info = {"backend": "array"}
        if self._kernel:
            info["kernel"] = KERNEL_NAME
        else:
            info["kernel"] = "none"
            if self._kernel_fallback_reason:
                info["kernel_fallback"] = self._kernel_fallback_reason
        return info

    # ------------------------------------------------------------------
    # Kernel state
    # ------------------------------------------------------------------
    def _init_kernel_state(self) -> None:
        # Kernel mode promotes two more counters to numpy so the hot
        # phases can scatter-add instead of looping: ``_pending`` (read
        # sequentially by the UGAL q-compare, batch-updated everywhere
        # else) and ``_buf_count``.  The fingerprint and sanitizer
        # consume both through ``_as_tuple``-style iteration, which
        # handles numpy transparently.
        self._pending = np.asarray(self._pending, dtype=np.int64)
        self._buf_count = np.asarray(self._buf_count, dtype=np.int64)
        num_ports = self._num_routers * self._radix
        ch_dstr = np.zeros(num_ports, np.int64)
        ch_dbase = np.zeros(num_ports, np.int64)
        ch_lat = np.zeros(num_ports, np.int64)
        ch_glob = np.zeros(num_ports, np.bool_)
        ch_cidx = np.zeros(num_ports, np.int64)
        for idx, info in enumerate(self._channel_info):
            if info is not None:
                ch_dstr[idx] = info[0]
                ch_dbase[idx] = info[1]
                ch_lat[idx] = info[2]
                ch_glob[idx] = info[3]
                ch_cidx[idx] = info[4]
        self._ch_dstr = ch_dstr
        self._ch_dbase = ch_dbase
        self._ch_lat = ch_lat
        self._ch_glob = ch_glob
        self._ch_cidx = ch_cidx
        #: The handful of distinct channel latencies (local vs global,
        #: typically two) -- the switch phase groups its ring appends by
        #: latency value instead of calling np.unique per cycle.
        self._distinct_lats = sorted(
            {int(lat) for lat, net in zip(ch_lat, self._is_network) if net}
        )
        self._dst_router_np = np.asarray(self._dst_router, np.int64)
        self._terminal_router_np = np.asarray(self._terminal_router, np.int64)
        # Flit columns: free-list allocation, capacity doubling.
        self._f_cap = 0
        self._f_next = 0
        self._f_free: List[int] = []
        self._grow_columns(4096)

    def _grow_columns(self, need: int) -> None:
        new_cap = max(self._f_cap * 2, need, 4096)
        for name, dtype in _FLIT_COLUMNS:
            attr = "_f_" + name
            old = getattr(self, attr, None)
            grown = np.zeros(new_cap, dtype)
            if old is not None:
                grown[: self._f_cap] = old
            setattr(self, attr, grown)
        self._f_cap = new_cap

    # ------------------------------------------------------------------
    # Phase 1: arrivals
    # ------------------------------------------------------------------
    def _deliver_arrivals(self, now: int) -> None:
        if self._kernel:
            return self._deliver_arrivals_kernel(now)
        if not self._vectorized:
            return super()._deliver_arrivals(now)
        batch = self._arrival_ring[now % self._arrival_ring_size]
        if not batch:
            return
        # Mirrors the scalar single-flit fast path: the hop decision and
        # FIFO appends stay per flit (the next-hop memo and the routing
        # executors are Python); the per-VC counter increments batch at
        # the end.  Also used when the hop cache is disabled
        # (table-driven or custom routing): ``hop_key`` is then None per
        # flit and the executor is consulted directly, exactly as
        # ``_enqueue`` does.
        radix = self._radix
        vcs = self._vcs
        hop = self._hop
        hop_cache_enabled = self._hop_cache_enabled
        cache0 = self._hop_cache0
        cache1 = self._hop_cache1
        cache2 = self._hop_cache2
        dst_routers = self._dst_router
        eject_hop = self._eject_hop
        num_routers = self._num_routers
        channel_info = self._channel_info
        credit_delay = self._credit_delay_enabled
        ctq = self._ctq
        buf_count = self._buf_count
        out_q = self._out_q
        pending = self._pending
        active_mask = self._active_mask
        active_routers = self._active_routers
        out_idxs: List[int] = []
        for router, in_idx, flit in batch:
            packet = flit.packet
            plan = packet.plan
            hop_key = plan.hop_key if hop_cache_enabled else None
            dst = packet.dst_terminal
            progress = flit.progress
            if hop_key is None:
                h = self.routing.next_hop(self.topology, router, plan, progress, dst)
                out_port, out_vc, flit.next_progress = h
            elif progress == 0 and plan.gc1 is not None:
                h = cache0.get(hop_key[0] + router)
                if h is None:
                    h = hop(plan, hop_key, router, 0, dst)
                out_port, out_vc, flit.next_progress = h
            elif progress == 1 and plan.gc2 is not None:
                h = cache1.get(hop_key[1] + router)
                if h is None:
                    h = hop(plan, hop_key, router, 1, dst)
                out_port, out_vc, flit.next_progress = h
            else:
                dst_router = dst_routers[dst]
                if router == dst_router:
                    out_port, out_vc = eject_hop[dst]
                    flit.next_progress = progress
                else:
                    h2 = cache2.get(router * num_routers + dst_router)
                    if h2 is None:
                        h = self.routing.next_hop(
                            self.topology, router, plan, progress, dst
                        )
                        cache2[router * num_routers + dst_router] = (h[0], h[1])
                        out_port, out_vc, flit.next_progress = h
                    else:
                        out_port, out_vc = h2
                        flit.next_progress = progress
            p_idx = router * radix + out_port
            if packet.vc_class and channel_info[p_idx] is not None:
                out_vc += 3 * packet.vc_class
            flit.in_idx = in_idx
            if credit_delay and channel_info[p_idx] is not None:
                ctq[p_idx].append(now)
            buf_count[in_idx] += 1
            out_idx = p_idx * vcs + out_vc
            out_q[out_idx].append(flit)
            count = pending[p_idx] + 1
            pending[p_idx] = count
            if count == 1:
                mask = active_mask[router]
                if not mask:
                    active_routers.add(router)
                active_mask[router] = mask | (1 << out_port)
            out_idxs.append(out_idx)
        # Two inputs can be routed to the same output VC in one cycle,
        # so the batched increment must be duplicate-safe.
        np.add.at(self._pending_vc, np.asarray(out_idxs, dtype=np.intp), 1)
        batch.clear()

    def _deliver_arrivals_kernel(self, now: int) -> None:
        batch = self._arrival_ring[now % self._arrival_ring_size]
        if not batch:
            return
        n = len(batch)
        arr = np.fromiter(
            chain.from_iterable(batch), np.int64, count=3 * n
        ).reshape(n, 3)
        routers = arr[:, 0]
        in_idx = arr[:, 1]
        fids = arr[:, 2]
        tables = self._tables
        a = tables.a
        p = tables.p
        radix = self._radix
        prog = self._f_progress[fids]
        hk0 = self._f_hop0[fids]
        hk1 = self._f_hop1[fids]
        dst = self._f_dst[fids]
        dstr = self._f_dst_router[fids]
        li = routers % a
        cond0 = (prog == 0) & (hk0 >= 0)
        cond1 = (prog == 1) & (hk1 >= 0)
        # Final phase: eject at the destination router, else the direct
        # local hop toward it on the final-stage VC.
        same = routers == dstr
        dl = dstr % a
        fin_port = np.where(same, dst % p, p + dl - (dl > li))
        fin_vc = np.where(same, 0, np.int64(tables.final_local_vc))
        # Hop-table gathers (keys < 0 wrap to harmless in-range garbage,
        # masked out by the phase conditions).
        i0 = hk0 * a + li
        i1 = hk1 * a + li
        port = np.where(
            cond0,
            tables.hop0_port[i0],
            np.where(cond1, tables.hop1_port[i1], fin_port),
        )
        vc = np.where(
            cond0,
            tables.hop0_vc[i0],
            np.where(cond1, tables.hop1_vc[i1], fin_vc),
        )
        # Local and terminal ports never advance progress; global ports
        # (the top of the port range) always do.
        nprog = prog + (port >= p + a - 1)
        p_idx = routers * radix + port
        is_net = self._is_network[p_idx]
        out_vc = vc + self._f_vc_off[fids] * is_net
        out_idx = p_idx * self._vcs + out_vc
        self._f_in_idx[fids] = in_idx
        self._f_next_progress[fids] = nprog
        # Order-insensitive counter updates batch as scatter-adds; the
        # FIFO appends stay a (minimal) loop in batch order == scalar
        # order.  Port activation only needs the ports whose pending
        # count crosses zero, read *before* the scatter.
        np.add.at(self._pending_vc, out_idx, 1)
        np.add.at(self._buf_count, in_idx, 1)
        pending = self._pending
        # Ports whose pending count crosses zero, read before the
        # scatter; duplicates (two flits to one idle port) are fine --
        # the activation below is idempotent.
        newly = p_idx[pending[p_idx] == 0]
        np.add.at(pending, p_idx, 1)
        if newly.size:
            active_mask = self._active_mask
            active_routers = self._active_routers
            for pi in newly.tolist():
                router, out_port = divmod(pi, radix)
                mask = active_mask[router]
                if not mask:
                    active_routers.add(router)
                active_mask[router] = mask | (1 << out_port)
        out_q = self._out_q
        for oi, fid in zip(out_idx.tolist(), fids.tolist()):
            out_q[oi].append(fid)
        if self._credit_delay_enabled:
            ctq = self._ctq
            for pi, net in zip(p_idx.tolist(), is_net.tolist()):
                if net:
                    ctq[pi].append(now)
        batch.clear()

    # ------------------------------------------------------------------
    # Phase 1b: credit delivery (batched scatter-add)
    # ------------------------------------------------------------------
    def _deliver_credits(self, now: int) -> None:
        if not self._vectorized or self._credit_delay_enabled:
            # UGAL-L_CR's round-trip sensing pops per-event CTQ stamps
            # and maintains running minima -- inherently sequential, so
            # the scalar path keeps it.
            return super()._deliver_credits(now)
        batch = self._credit_ring[now % self._credit_ring_size]
        if self._credit_overflow:
            overflow = self._credit_overflow.pop(now, None)
            if overflow:
                batch.extend(overflow)
        if not batch:
            return
        np.add.at(
            self._credits,
            np.asarray([event[0] for event in batch], dtype=np.intp),
            1,
        )
        batch.clear()

    # ------------------------------------------------------------------
    # Phase 2: injection
    # ------------------------------------------------------------------
    def _inject(self, now: int) -> None:
        if self._kernel:
            return self._inject_kernel(now)
        if not self._vectorized:
            return super()._inject(now)
        busy = self._busy
        inject_one = self._inject_one_array
        if self._bulk_mode:
            for terminal in np.nonzero(busy)[0].tolist():
                inject_one(terminal, now)
            return
        config = self.config
        packet_prob = config.load / config.packet_size
        # One batched row per cycle == the scalar engine's one draw per
        # terminal per cycle, double for double.
        draws = self._np_traffic.random_sample(self._num_terminals)
        injecting = draws < packet_prob
        visits = np.nonzero(injecting | busy)[0]
        if visits.size == 0:
            return
        pattern = self.pattern
        tagged_window = self._measure_start <= now < self._measure_end
        counter = self._packet_counter
        source_queue = self._source_queue
        for terminal, injects in zip(
            visits.tolist(), injecting[visits].tolist()
        ):
            if injects:
                packet = Packet(
                    counter, terminal, pattern(terminal), now, 1,
                    None, tagged_window,
                )
                counter += 1
                if tagged_window:
                    self._outstanding_tagged += 1
                source_queue[terminal].append(packet)
            inject_one(terminal, now)
        self._packet_counter = counter

    def _inject_one_array(self, terminal: int, now: int) -> None:
        """Single-flit injection attempt (mirrors ``_inject_one``).

        Differences from the scalar method: no multi-flit branches (the
        vectorized mode guarantees ``packet_size == 1``) and the busy
        flag is refreshed on exit so the visit set stays exact.
        """
        queue = self._source_queue[terminal]
        if not queue:
            self._busy[terminal] = False
            return
        router = self._terminal_router[terminal]
        base = self._inject_base[terminal]
        packet = queue[0]
        plan = packet.plan
        hop = None
        if plan is None:
            dst = packet.dst_terminal
            plan = self.routing.decide(
                self, self.topology, self._rng_route, router, dst
            )
            packet.plan = plan
            hop_key = None
            if self._hop_cache_enabled and type(plan) is RoutePlan:
                hop_key = plan.hop_key
                if hop_key is None:
                    hop_key = self._intern_plan(plan)
            if hop_key is not None:
                hop = self._hop(plan, hop_key, router, 0, dst)
            else:
                hop = self.routing.next_hop(self.topology, router, plan, 0, dst)
            packet.hop_assignment[router] = (hop[0], hop[1])
            in_idx = base + hop[1]
        else:
            # Retry after backpressure (see the scalar engine).
            in_idx = base + packet.hop_assignment[router][1]
        if self._depth - self._buf_count[in_idx] < 1:
            # No space: the queue is non-empty, so the terminal must be
            # revisited next cycle even if this visit came from a fresh
            # Bernoulli draw rather than the busy set.
            self._busy[terminal] = True
            return
        queue.popleft()
        packet.inject_time = now
        flit = Flit(packet)
        if hop is None:
            dst = packet.dst_terminal
            hop_key = plan.hop_key if self._hop_cache_enabled else None
            if hop_key is not None:
                hop = self._hop(plan, hop_key, router, 0, dst)
            else:
                hop = self.routing.next_hop(self.topology, router, plan, 0, dst)
        out_port, out_vc, flit.next_progress = hop
        p_idx = router * self._radix + out_port
        channel = self._channel_info[p_idx]
        if packet.vc_class and channel is not None:
            out_vc += 3 * packet.vc_class
        packet.hop_assignment[router] = (out_port, out_vc)
        flit.in_idx = in_idx
        if self._credit_delay_enabled and channel is not None:
            self._ctq[p_idx].append(now)
        self._buf_count[in_idx] += 1
        out_idx = p_idx * self._vcs + out_vc
        self._out_q[out_idx].append(flit)
        pending = self._pending
        count = pending[p_idx] + 1
        pending[p_idx] = count
        if count == 1:
            mask = self._active_mask[router]
            if not mask:
                self._active_routers.add(router)
            self._active_mask[router] = mask | (1 << out_port)
        self._pending_vc[out_idx] += 1
        self._busy[terminal] = bool(queue)

    def _inject_kernel(self, now: int) -> None:
        """Kernel-mode injection: batched decide, sequential commit.

        Pass A walks the visit set in ascending-terminal order creating
        this cycle's packets (pattern rng order preserved) and collects
        the queue heads that still need a route decision.  Pass B
        lowers all of those decisions at once
        (:meth:`DecideTables.batch_decide` -- one rejection-sampled
        Valiant draw per inter-group decider, in visit order).  Pass C
        revisits the terminals in the same order, finishing each UGAL
        decision with two live occupancy reads and committing the
        injection; the pending counters update inline because the next
        decision may read them.
        """
        busy = self._busy
        source_queue = self._source_queue
        if self._bulk_mode:
            visits_l = np.nonzero(busy)[0].tolist()
            if not visits_l:
                return
            deciders: List[int] = []
            dec_dsts: List[int] = []
            for terminal in visits_l:
                q = source_queue[terminal]
                if q and q[0].plan is None:
                    deciders.append(terminal)
                    dec_dsts.append(q[0].dst_terminal)
        else:
            config = self.config
            packet_prob = config.load / config.packet_size
            draws = self._np_traffic.random_sample(self._num_terminals)
            injecting = draws < packet_prob
            visits = np.nonzero(injecting | busy)[0]
            if visits.size == 0:
                return
            pattern = self.pattern
            tagged_window = self._measure_start <= now < self._measure_end
            counter = self._packet_counter
            visits_l = visits.tolist()
            deciders = []
            dec_dsts = []
            lowering = self._traffic_lowering
            batched_dsts = None
            if lowering is not None:
                # Ascending injecting terminals == the order the scalar
                # loop below calls ``pattern(terminal)``, so one batched
                # draw replays the whole cycle's destinations.
                inj = np.nonzero(injecting)[0]
                if inj.size:
                    batched_dsts = lowering.batch(inj).tolist()
            di = 0
            for terminal, injects in zip(
                visits_l, injecting[visits].tolist()
            ):
                if injects:
                    if batched_dsts is None:
                        dst = pattern(terminal)
                    else:
                        dst = batched_dsts[di]
                        di += 1
                    packet = Packet(
                        counter, terminal, dst, now, 1,
                        None, tagged_window,
                    )
                    counter += 1
                    source_queue[terminal].append(packet)
                q = source_queue[terminal]
                if q and q[0].plan is None:
                    deciders.append(terminal)
                    dec_dsts.append(q[0].dst_terminal)
            if tagged_window:
                self._outstanding_tagged += counter - self._packet_counter
            self._packet_counter = counter

        if deciders:
            dsts = np.asarray(dec_dsts, np.int64)
            b = self._tables.batch_decide(
                self._mt_route,
                self._terminal_router_np[deciders],
                dsts,
                self._dst_router_np[dsts],
            )
            # Candidate A rows as ready-made decision tuples (zip runs
            # in C; indexing one list beats six in the hot loop below).
            a_dec = list(
                zip(b.a_port, b.a_vc, b.a_hk0, b.a_hk1, b.a_min, b.a_key)
            )
            mode = b.mode
            use_vc = b.use_vc
            qa = b.qa
            qb = b.qb
            hm = b.hm
            hn = b.hn
            b_port = b.b_port
            b_vc = b.b_vc
            b_hk0 = b.b_hk0
            b_hk1 = b.b_hk1
            b_key = b.b_key

        # Pass C: sequential injection attempts, ascending terminals.
        tables = self._tables
        pending = self._pending
        pending_vc = self._pending_vc
        buf_count = self._buf_count
        depth = self._depth
        inject_base = self._inject_base
        terminal_router = self._terminal_router
        radix = self._radix
        vcs = self._vcs
        p_cut = tables.p + tables.a - 1  # first global port
        channel_info = self._channel_info
        credit_delay = self._credit_delay_enabled
        ctq = self._ctq
        out_q = self._out_q
        active_mask = self._active_mask
        active_routers = self._active_routers
        free = self._f_free
        next_id = self._f_next
        di = 0
        rows: List[tuple] = []
        # ndarray.item() returns plain Python ints -- the per-visit
        # reads below then run int arithmetic instead of boxed numpy
        # scalar ufunc calls (3-4x faster at this call volume).
        bc_item = buf_count.item
        pd_item = pending.item
        pv_item = pending_vc.item
        for terminal in visits_l:
            q = source_queue[terminal]
            if not q:
                busy[terminal] = False
                continue
            packet = q[0]
            if packet.plan is None:
                # Consume decision ``di``; finish UGAL against the live
                # occupancy counters (mutated by earlier iterations).
                if mode[di]:
                    if use_vc[di]:
                        q_a = pv_item(qa[di])
                        q_b = pv_item(qb[di])
                    else:
                        q_a = pd_item(qa[di])
                        q_b = pd_item(qb[di])
                    if q_a * hm[di] <= q_b * hn[di]:
                        decision = a_dec[di]
                    else:
                        decision = (
                            b_port[di], b_vc[di], b_hk0[di], b_hk1[di],
                            False, b_key[di],
                        )
                else:
                    decision = a_dec[di]
                di += 1
                fresh = True
            else:
                decision = packet.hop_assignment[-1]
                fresh = False
            port, vc, hk0, hk1, minimal, key = decision
            in_idx = inject_base[terminal] + vc
            if depth - bc_item(in_idx) < 1:
                if fresh:
                    # Blocked: pin the decision on the packet exactly as
                    # the scalar engine pins the decided plan, so the
                    # retry neither redraws rng nor re-reads occupancy.
                    packet.plan = tables.plan_for(key, minimal)
                    packet.hop_assignment[-1] = decision
                busy[terminal] = True
                continue
            q.popleft()
            router = terminal_router[terminal]
            p_idx = router * radix + port
            vc_class = packet.vc_class
            if vc_class and channel_info[p_idx] is not None:
                out_idx = p_idx * vcs + vc + 3 * vc_class
            else:
                out_idx = p_idx * vcs + vc
            if credit_delay and channel_info[p_idx] is not None:
                ctq[p_idx].append(now)
            buf_count[in_idx] = bc_item(in_idx) + 1
            if free:
                fid = free.pop()
            else:
                fid = next_id
                next_id += 1
            out_q[out_idx].append(fid)
            count = pd_item(p_idx) + 1
            pending[p_idx] = count
            if count == 1:
                mask = active_mask[router]
                if not mask:
                    active_routers.add(router)
                active_mask[router] = mask | (1 << port)
            pending_vc[out_idx] = pv_item(out_idx) + 1
            busy[terminal] = bool(q)
            request = packet.request
            rows.append((
                fid, packet.dst_terminal, hk0, hk1, minimal,
                packet.measured, in_idx, port,
                # Ungated network-VC offset: the channel gate applies
                # per hop (in arrivals); zero must mean "request class".
                3 * vc_class,
                request.creation_time if request is not None
                else packet.creation_time,
                packet.src_terminal, packet.index,
            ))
        self._f_next = next_id
        if not rows:
            return
        if next_id > self._f_cap:
            self._grow_columns(next_id)
        (
            c_fid, c_dst, c_hk0, c_hk1, c_min, c_meas,
            c_in, c_port, c_voff, c_orig, c_src, c_pkt,
        ) = zip(*rows)
        # Batched column writes (fancy-index stores beat ~17 scalar
        # numpy writes per flit by an order of magnitude).
        fa = np.asarray(c_fid, np.int64)
        dst_a = np.asarray(c_dst, np.int64)
        self._f_dst[fa] = dst_a
        self._f_dst_router[fa] = self._dst_router_np[dst_a]
        self._f_hop0[fa] = c_hk0
        self._f_hop1[fa] = c_hk1
        self._f_minimal[fa] = c_min
        self._f_measured[fa] = c_meas
        self._f_progress[fa] = 0
        self._f_next_progress[fa] = np.asarray(c_port, np.int64) >= p_cut
        self._f_in_idx[fa] = c_in
        self._f_up_credit[fa] = -1
        self._f_on_global[fa] = False
        self._f_vc_off[fa] = c_voff
        self._f_origin_creation[fa] = c_orig
        self._f_src_terminal[fa] = c_src
        self._f_pkt[fa] = c_pkt

    # ------------------------------------------------------------------
    # Phase 3: switch (vectorized arbitration, ordered per-flit tail)
    # ------------------------------------------------------------------
    def _arbitrate(self):
        """Batched output-port arbitration over the active set.

        Returns ``(ports, vc_sel, out_idx)`` -- winners in ascending
        flat-port order with their pending/credit/round-robin updates
        already applied -- or ``None`` when nothing forwards.  Shared by
        the kernel and fallback switch phases; decisions are
        independent within a cycle (each port reads and writes only its
        own slots), so batching cannot reorder anything observable.
        """
        active = self._active_routers
        if not active:
            return None
        radix = self._radix
        masks = self._active_mask
        # Snapshot the active ports in ascending flat-port order -- the
        # scalar visit order (sorted routers, ascending ports), which
        # sample ordering and the golden fixtures depend on.  Expanding
        # the per-router bitmasks as a (router, port) bit matrix keeps
        # the scan in numpy: 2-D nonzero yields row-major order, i.e.
        # exactly the ascending (router, port) sequence.
        routers = np.fromiter(active, np.int64, len(active))
        routers.sort()
        mask_arr = np.asarray([masks[r] for r in routers.tolist()], np.int64)
        ri, pi = np.nonzero((mask_arr[:, None] >> self._port_shifts) & 1)
        act = routers[ri] * radix + pi
        vcs = self._vcs
        credits = self._credits
        pending_vc = self._pending_vc
        rr = self._rr_vc[act]
        slot_base = act * vcs
        needs_no_credit = ~self._is_network[act]
        # Round-robin VC probe, all active ports at once: for each
        # offset in the rotation, a port still unselected takes this VC
        # iff the VC has queued flits and (ejection port, or downstream
        # credit available) -- the scalar loop's conditions verbatim.
        selected_vc = np.full(act.size, -1, dtype=np.int64)
        for offset in range(vcs):
            vc = rr + offset
            vc[vc >= vcs] -= vcs
            slot = slot_base + vc
            take = (
                (selected_vc < 0)
                & (pending_vc[slot] > 0)
                & (needs_no_credit | (credits[slot] > 0))
            )
            selected_vc[take] = vc[take]
        chosen = selected_vc >= 0
        if not chosen.any():
            return None
        ports = act[chosen]
        vc_sel = selected_vc[chosen]
        out_idx = ports * vcs + vc_sel
        # Batched bookkeeping: each selected port forwards exactly one
        # flit, network ports additionally consume one downstream
        # credit, and the round-robin pointer advances past the winner.
        pending_vc[out_idx] -= 1
        credits[out_idx] -= self._is_network[ports]
        next_rr = vc_sel + 1
        next_rr[next_rr >= vcs] = 0
        self._rr_vc[ports] = next_rr
        return ports, vc_sel, out_idx

    def _switch(self) -> None:
        if self._kernel:
            return self._switch_kernel()
        if not self._vectorized:
            return super()._switch()
        won = self._arbitrate()
        if won is None:
            return
        ports, vc_sel, out_idx = won
        radix = self._radix
        masks = self._active_mask
        active = self._active_routers
        # Per-flit tail in ascending flat-port order (== scalar order):
        # dequeue, pending/active-set bookkeeping, upstream credit
        # return, forward or eject.
        now = self.now
        measuring = self._measure_start <= now < self._measure_end
        out_q = self._out_q
        buf_count = self._buf_count
        pending = self._pending
        channel_info = self._channel_info
        credit_delay = self._credit_delay_enabled
        td = self._td
        td_min = self._td_min
        credit_gain = self._credit_gain
        global_flits = self._global_flits
        arrival_ring = self._arrival_ring
        arrival_ring_size = self._arrival_ring_size
        credit_ring = self._credit_ring
        credit_ring_size = self._credit_ring_size
        eject = self._eject
        for p_idx, slot, vc in zip(
            ports.tolist(), out_idx.tolist(), vc_sel.tolist()
        ):
            flit = out_q[slot].popleft()
            count = pending[p_idx] - 1
            pending[p_idx] = count
            if not count:
                router = p_idx // radix
                left = masks[router] & ~(1 << (p_idx - router * radix))
                masks[router] = left
                if not left:
                    active.discard(router)
            buf_count[flit.in_idx] -= 1
            info = channel_info[p_idx]
            upstream = flit.upstream
            if upstream is not None:
                credit_idx, up_p_idx, offset = upstream
                if (
                    credit_delay
                    and info is not None
                    and not flit.arrived_on_global
                ):
                    excess = td[p_idx] - td_min[p_idx // radix]
                    if excess > 0:
                        offset += int(credit_gain * excess)
                if offset <= credit_ring_size:
                    credit_ring[(now + offset) % credit_ring_size].append(
                        (credit_idx, up_p_idx)
                    )
                else:
                    overflow = self._credit_overflow
                    batch = overflow.get(now + offset)
                    if batch is None:
                        overflow[now + offset] = [(credit_idx, up_p_idx)]
                    else:
                        batch.append((credit_idx, up_p_idx))
            if info is None:
                eject(p_idx, flit, now, measuring)
            else:
                dst_router, dst_base, latency, is_global, channel_index = info
                flit.progress = flit.next_progress
                if is_global and measuring:
                    global_flits[channel_index] += 1
                flit.upstream = (slot, p_idx, latency)
                flit.arrived_on_global = is_global
                arrival_ring[(now + latency) % arrival_ring_size].append(
                    (dst_router, dst_base + vc, flit)
                )

    def _switch_kernel(self) -> None:
        won = self._arbitrate()
        if won is None:
            return
        ports, vc_sel, out_idx = won
        radix = self._radix
        now = self.now
        measuring = self._measure_start <= now < self._measure_end
        out_q = self._out_q
        # Dequeue in ascending port order; pending decrements batch
        # (each winner is a distinct port) and only ports drained to
        # zero need the active-set walk.
        fa = np.asarray(
            [out_q[slot].popleft() for slot in out_idx.tolist()], np.int64
        )
        pending = self._pending
        pending[ports] -= 1
        drained = ports[pending[ports] == 0]
        if drained.size:
            masks = self._active_mask
            active = self._active_routers
            for p_idx in drained.tolist():
                router, out_port = divmod(p_idx, radix)
                left = masks[router] & ~(1 << out_port)
                masks[router] = left
                if not left:
                    active.discard(router)
        np.subtract.at(self._buf_count, self._f_in_idx[fa], 1)
        # Upstream credit returns, in port order over every winner
        # (ejecting flits return credits too).  Gather the upstream
        # columns *before* the forward stores below overwrite them.
        upc = self._f_up_credit[fa]
        upp = self._f_up_pidx[fa]
        upl = self._f_up_lat[fa]
        is_net = self._is_network[ports]
        credit_ring = self._credit_ring
        credit_ring_size = self._credit_ring_size
        if self._credit_delay_enabled:
            # Per-event path: the round-trip excess adjustment can push
            # a credit past the ring horizon, and offsets vary per port.
            td = self._td
            td_min = self._td_min
            credit_gain = self._credit_gain
            upc_l = upc.tolist()
            upp_l = upp.tolist()
            upl_l = upl.tolist()
            og_l = self._f_on_global[fa].tolist()
            net_l = is_net.tolist()
            for j, p_idx in enumerate(ports.tolist()):
                credit_idx = upc_l[j]
                if credit_idx < 0:
                    continue
                offset = upl_l[j]
                if net_l[j] and not og_l[j]:
                    excess = td[p_idx] - td_min[p_idx // radix]
                    if excess > 0:
                        offset += int(credit_gain * excess)
                if offset <= credit_ring_size:
                    credit_ring[(now + offset) % credit_ring_size].append(
                        (credit_idx, upp_l[j])
                    )
                else:
                    overflow = self._credit_overflow
                    batch = overflow.get(now + offset)
                    if batch is None:
                        overflow[now + offset] = [(credit_idx, upp_l[j])]
                    else:
                        batch.append((credit_idx, upp_l[j]))
        else:
            # Plain path: the offset is the upstream latency, always
            # within the ring, and takes only a few distinct values --
            # group by value and bulk-append.  Distinct offsets land in
            # distinct slots (latencies differ by less than the ring
            # size), so each slot receives its events in port order.
            valid = np.nonzero(upc >= 0)[0]
            if valid.size:
                upcv = upc[valid]
                uppv = upp[valid]
                uplv = upl[valid]
                for offset in self._distinct_lats:
                    sel = uplv == offset
                    if sel.any():
                        credit_ring[(now + offset) % credit_ring_size].extend(
                            zip(upcv[sel].tolist(), uppv[sel].tolist())
                        )
        # Forwards: batched column stores, then ring appends grouped by
        # latency (same distinct-slot argument as the credits above).
        fwd = np.nonzero(is_net)[0]
        if fwd.size:
            fwd_f = fa[fwd]
            fwd_p = ports[fwd]
            lat = self._ch_lat[fwd_p]
            glob = self._ch_glob[fwd_p]
            self._f_progress[fwd_f] = self._f_next_progress[fwd_f]
            self._f_up_credit[fwd_f] = out_idx[fwd]
            self._f_up_pidx[fwd_f] = fwd_p
            self._f_up_lat[fwd_f] = lat
            self._f_on_global[fwd_f] = glob
            if measuring:
                global_flits = self._global_flits
                for channel_index in self._ch_cidx[fwd_p[glob]].tolist():
                    global_flits[channel_index] += 1
            arrival_ring = self._arrival_ring
            arrival_ring_size = self._arrival_ring_size
            dstr = self._ch_dstr[fwd_p]
            din = self._ch_dbase[fwd_p] + vc_sel[fwd]
            for latency in self._distinct_lats:
                sel = lat == latency
                if sel.any():
                    arrival_ring[(now + latency) % arrival_ring_size].extend(
                        zip(
                            dstr[sel].tolist(),
                            din[sel].tolist(),
                            fwd_f[sel].tolist(),
                        )
                    )
        # Ejections: scalar eject semantics from flit columns, in
        # ascending port order (sample order is part of bit-identity).
        ej = np.nonzero(~is_net)[0]
        if ej.size:
            ej_f = fa[ej]
            ej_p_l = ports[ej].tolist()
            dst_l = self._f_dst[ej_f].tolist()
            meas_l = self._f_measured[ej_f].tolist()
            min_l = self._f_minimal[ej_f].tolist()
            orig_l = self._f_origin_creation[ej_f].tolist()
            src_l = self._f_src_terminal[ej_f].tolist()
            voff_l = self._f_vc_off[ej_f].tolist()
            pkt_l = self._f_pkt[ej_f].tolist()
            eject_terminal = self._eject_terminal
            terminal_latency = self._terminal_latency
            request_reply = self._request_reply
            samples = self._samples
            source_queue = self._source_queue
            busy = self._busy
            eject_time = now + terminal_latency
            for j, p_idx in enumerate(ej_p_l):
                dst = dst_l[j]
                if eject_terminal[p_idx] != dst:
                    raise SimulatorStateError(
                        f"packet {pkt_l[j]} for terminal {dst} ejected at "
                        f"router {p_idx // radix} port {p_idx % radix} "
                        "(misrouted)"
                    )
                if request_reply and voff_l[j] == 0:
                    # The request stays open until its reply lands;
                    # spawn the reply at the destination NIC.  The
                    # reply's creation_time carries the *request's*
                    # creation forward -- the only thing the latency
                    # sample at reply ejection needs from the request.
                    reply = Packet(
                        self._packet_counter, dst, src_l[j], orig_l[j], 1,
                        None, meas_l[j], 1,
                    )
                    self._packet_counter += 1
                    source_queue[dst].append(reply)
                    busy[dst] = True
                elif meas_l[j]:
                    self._outstanding_tagged -= 1
                    samples.append(
                        LatencySample(
                            latency=eject_time - orig_l[j],
                            minimal=min_l[j],
                        )
                    )
            self._flits_delivered += len(ej_p_l)
            if measuring:
                self._ejected_flits_in_window += len(ej_p_l)
            self._f_free.extend(ej_f.tolist())

    def _eject(self, p_idx: int, flit: Flit, now: int, measuring: bool) -> None:
        super()._eject(p_idx, flit, now, measuring)
        if (
            self._vectorized
            and self._request_reply
            and flit.packet.vc_class == 0
        ):
            # The spawned reply queued at the request's destination NIC
            # must wake that terminal's injection (fallback tier; the
            # kernel tier ejects flits in ``_switch_kernel``).
            self._busy[flit.packet.dst_terminal] = True
