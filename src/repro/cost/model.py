"""Per-topology network cost models (Section 5, Figures 18 and 19).

Each topology is described by an analytic *cable enumerator* that yields
``CableRun`` records -- (length, count, bandwidth, intra-cabinet?) -- for
every class of physical link, plus the total router pin bandwidth.  The
pricing rules are:

* intra-cabinet connections are backplane traces (flat $/Gb/s),
* inter-cabinet runs shorter than the crossover use the electrical cable
  cost line, longer runs the active-optical line (Figure 2),
* router cost is proportional to aggregate pin bandwidth.

Bandwidth normalisation: every topology is provisioned to sustain the
same uniform-random injection bandwidth per node ("networks of the same
bandwidth", Section 7):

* dragonfly -- balanced (``a = 2p = 2h``); global channels are wired up
  to the uniform full-bisection requirement (``ceil(a*p/g)`` channels per
  group pair), which is also where the balanced wiring converges for
  large ``g``;
* flattened butterfly -- concentration-16 / dimension-16 is balanced;
  a smaller dimension of size ``m`` needs ``c/m`` wider channels;
* folded Clos -- full bisection by construction;
* 3-D torus -- a dimension-``m`` ring with concentration ``c`` needs
  ``c*m/8`` of the injection bandwidth per channel, which is why the
  torus is expensive despite short, cheap, electrical cables.

Absolute dollar values are calibration-dependent; the reproduced claims
are the *relative* positions of Figure 19 (dragonfly ~= flattened
butterfly up to ~1K where both degenerate to one fully-connected router
layer, ~10-20% cheaper beyond, >50% cheaper than the folded Clos, and
~50-60% cheaper than the torus).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .cables import cable_cost_per_gbps
from .packaging import FloorPlan, PackagingConfig


@dataclass(frozen=True)
class CostConfig:
    """Pricing knobs shared by all topology cost models."""

    #: Per-direction bandwidth of one channel in the balanced high-radix
    #: networks (and the injection bandwidth all topologies must sustain).
    channel_gbps: float = 10.0
    #: Router silicon/package cost per Gb/s of pin bandwidth.
    router_cost_per_gbps: float = 0.35
    #: Backplane trace cost per Gb/s (intra-cabinet connections).
    backplane_cost_per_gbps: float = 0.6
    #: Electrical/optical choice threshold (Figure 19 uses 8 m).
    crossover_m: float = 8.0
    packaging: PackagingConfig = field(default_factory=PackagingConfig)

    def __post_init__(self) -> None:
        if self.channel_gbps <= 0:
            raise ValueError("channel_gbps must be > 0")
        if self.router_cost_per_gbps < 0 or self.backplane_cost_per_gbps < 0:
            raise ValueError("costs must be >= 0")


@dataclass(frozen=True)
class CableRun:
    """A class of identical physical links."""

    length_m: float
    count: int
    gbps: float
    intra_cabinet: bool
    kind: str  # "terminal" | "local" | "global" -- reporting only


@dataclass
class CostBreakdown:
    """Dollar totals by component, plus the counts behind them."""

    topology: str
    num_terminals: int
    router_dollars: float = 0.0
    backplane_dollars: float = 0.0
    electrical_cable_dollars: float = 0.0
    optical_cable_dollars: float = 0.0
    num_routers: int = 0
    num_backplane_links: int = 0
    num_electrical_cables: int = 0
    num_optical_cables: int = 0
    total_cable_length_m: float = 0.0

    @property
    def num_inter_cabinet_cables(self) -> int:
        return self.num_electrical_cables + self.num_optical_cables

    @property
    def cable_dollars(self) -> float:
        return (
            self.backplane_dollars
            + self.electrical_cable_dollars
            + self.optical_cable_dollars
        )

    @property
    def total_dollars(self) -> float:
        return self.router_dollars + self.cable_dollars

    @property
    def dollars_per_node(self) -> float:
        return self.total_dollars / self.num_terminals

    def summary(self) -> str:
        return (
            f"{self.topology:20s} N={self.num_terminals:6d} "
            f"${self.dollars_per_node:8.2f}/node "
            f"(router ${self.router_dollars / self.num_terminals:6.2f}, "
            f"backplane ${self.backplane_dollars / self.num_terminals:6.2f}, "
            f"electrical ${self.electrical_cable_dollars / self.num_terminals:6.2f}, "
            f"optical ${self.optical_cable_dollars / self.num_terminals:6.2f})"
        )


class TopologyCost(abc.ABC):
    """Base class: subclasses provide cable runs and router pin counts."""

    name = "topology"

    def __init__(self, num_terminals: int, config: CostConfig) -> None:
        if num_terminals < 1:
            raise ValueError("num_terminals must be >= 1")
        self.num_terminals = num_terminals
        self.config = config

    @abc.abstractmethod
    def cable_runs(self) -> Iterator[CableRun]:
        """Enumerate every class of physical link."""

    @abc.abstractmethod
    def num_routers(self) -> int: ...

    @abc.abstractmethod
    def router_pin_gbps(self) -> float:
        """Aggregate pin bandwidth over all routers."""

    # ------------------------------------------------------------------
    def breakdown(self) -> CostBreakdown:
        config = self.config
        out = CostBreakdown(topology=self.name, num_terminals=self.num_terminals)
        out.num_routers = self.num_routers()
        out.router_dollars = self.router_pin_gbps() * config.router_cost_per_gbps
        for run in self.cable_runs():
            if run.count == 0:
                continue
            if run.intra_cabinet:
                cost = config.backplane_cost_per_gbps * run.gbps
                out.backplane_dollars += cost * run.count
                out.num_backplane_links += run.count
            else:
                per_gbps = cable_cost_per_gbps(run.length_m, config.crossover_m)
                cost = per_gbps * run.gbps
                if run.length_m < config.crossover_m:
                    out.electrical_cable_dollars += cost * run.count
                    out.num_electrical_cables += run.count
                else:
                    out.optical_cable_dollars += cost * run.count
                    out.num_optical_cables += run.count
                out.total_cable_length_m += run.length_m * run.count
        return out


def _complete_graph_runs(
    num_routers: int,
    routers_per_cabinet: int,
    cabinets: Sequence[int],
    floorplan: FloorPlan,
    gbps: float,
    kind: str,
) -> Iterator[CableRun]:
    """Cable runs of a completely-connected router set spread over the
    given cabinets (``routers_per_cabinet`` in each but the last)."""
    counts: List[int] = []
    remaining = num_routers
    for _ in cabinets:
        here = min(routers_per_cabinet, remaining)
        counts.append(here)
        remaining -= here
    intra_len = floorplan.config.intra_cabinet_length_m
    for i, cabinet_a in enumerate(cabinets):
        if counts[i] > 1:
            yield CableRun(
                intra_len, counts[i] * (counts[i] - 1) // 2, gbps, True, kind
            )
        for j in range(i + 1, len(cabinets)):
            pairs = counts[i] * counts[j]
            if pairs:
                length = floorplan.cable_length(cabinet_a, cabinets[j])
                yield CableRun(length, pairs, gbps, False, kind)


# ----------------------------------------------------------------------
# Dragonfly
# ----------------------------------------------------------------------
class DragonflyCost(TopologyCost):
    """Cost of a dragonfly built from routers of a given radix.

    Uses the balanced split (``p = h = (radix + 1) // 4``, ``a = 2p``),
    giving 512-terminal groups at radix 64 -- the paper's Figure 19
    configuration.  For systems that fit in a single fully-connected
    router layer the dragonfly degenerates to a 1-D flattened butterfly,
    matching the paper's observation that the two topologies are
    identical below ~1K nodes (where attempting to use virtual routers
    would only add cost).
    """

    name = "dragonfly"

    def __init__(
        self,
        num_terminals: int,
        config: CostConfig,
        router_radix: int = 64,
    ) -> None:
        super().__init__(num_terminals, config)
        self.router_radix = router_radix
        p = (router_radix + 1) // 4
        self.p = p
        max_single_group_routers = router_radix - p + 1
        if num_terminals <= p * max_single_group_routers:
            # Single fully-connected group (no global channels).
            self.a = math.ceil(num_terminals / p)
            self.h = 0
            self.g = 1
        else:
            self.a = 2 * p
            self.h = p
            self.g = math.ceil(num_terminals / (self.a * p))
        self.group_terminals = self.a * self.p
        packaging = config.packaging
        self.cabinets_per_group = max(
            1, math.ceil(self.group_terminals / packaging.terminals_per_cabinet)
        )
        self.floorplan = FloorPlan(self.g * self.cabinets_per_group, packaging)

    def num_routers(self) -> int:
        return self.a * self.g

    def used_radix(self) -> int:
        local = self.a - 1
        used_global = self._used_global_ports_per_group() / self.a if self.g > 1 else 0
        return math.ceil(self.p + local + used_global)

    def _channels_per_pair(self) -> int:
        """Global channels between each group pair.

        The uniform full-bisection requirement is ``a*p/g`` channels per
        pair; wiring more than that (the balanced network has ``a*h``
        ports per group to spread over ``g - 1`` peers) is tapered away,
        which is what the paper's bandwidth-normalised comparison prices.
        """
        if self.g < 2:
            return 0
        needed = math.ceil(self.a * self.p / self.g)
        available = (self.a * self.h) // (self.g - 1)
        return max(1, min(needed, available) if available else needed)

    def _used_global_ports_per_group(self) -> int:
        return self._channels_per_pair() * (self.g - 1)

    def router_pin_gbps(self) -> float:
        gbps = self.config.channel_gbps
        per_group = (
            self.a * (self.p + self.a - 1) + self._used_global_ports_per_group()
        )
        return self.g * per_group * gbps

    def _group_cabinets(self, group: int) -> List[int]:
        start = group * self.cabinets_per_group
        return list(range(start, start + self.cabinets_per_group))

    def cable_runs(self) -> Iterator[CableRun]:
        gbps = self.config.channel_gbps
        packaging = self.config.packaging
        yield CableRun(
            packaging.intra_cabinet_length_m, self.num_terminals, gbps, True, "terminal"
        )
        routers_per_cabinet = math.ceil(self.a / self.cabinets_per_group)
        # Local channels: a completely-connected group over its cabinets.
        group0 = self._group_cabinets(0)
        local_runs = list(
            _complete_graph_runs(
                self.a, routers_per_cabinet, group0, self.floorplan, gbps, "local"
            )
        )
        for run in local_runs:
            yield CableRun(run.length_m, run.count * self.g, gbps, run.intra_cabinet, "local")
        # Global channels between group pairs.
        per_pair = self._channels_per_pair()
        if per_pair == 0:
            return
        for group_i in range(self.g):
            cabs_i = self._group_cabinets(group_i)
            for group_j in range(group_i + 1, self.g):
                cabs_j = self._group_cabinets(group_j)
                # Spread channel endpoints over the groups' cabinets.
                for channel in range(per_pair):
                    cab_i = cabs_i[channel % len(cabs_i)]
                    cab_j = cabs_j[channel % len(cabs_j)]
                    length = self.floorplan.cable_length(cab_i, cab_j)
                    yield CableRun(length, 1, gbps, False, "global")


# ----------------------------------------------------------------------
# Flattened butterfly
# ----------------------------------------------------------------------
class FlattenedButterflyCost(TopologyCost):
    """Cost of an n-dimensional flattened butterfly.

    Concentration 16; as long as the network fits in one fully-connected
    router layer a single dimension is used (identical to the degenerate
    dragonfly), beyond that dimensions of size 16 are added with the last
    dimension sized to fit ``N``.  A dimension of size ``m < 16`` keeps
    full bisection by widening its channels by ``16/m``.
    """

    name = "flattened_butterfly"

    def __init__(
        self,
        num_terminals: int,
        config: CostConfig,
        concentration: int = 16,
        dim_size: int = 16,
        router_radix: int = 64,
    ) -> None:
        super().__init__(num_terminals, config)
        self.concentration = concentration
        self.dim_size = dim_size
        max_single_dim = router_radix - concentration + 1
        if num_terminals <= concentration * max_single_dim:
            self.dims: Tuple[int, ...] = (math.ceil(num_terminals / concentration),)
        else:
            dims = [dim_size]
            capacity = concentration * dim_size
            while capacity < num_terminals:
                remaining = math.ceil(num_terminals / capacity)
                dims.append(min(dim_size, remaining))
                capacity *= dims[-1]
            self.dims = tuple(dims)
        self.routers = 1
        for m in self.dims:
            self.routers *= m
        packaging = config.packaging
        self.routers_per_cabinet = max(
            1, packaging.terminals_per_cabinet // concentration
        )
        self.num_cabinets = math.ceil(self.routers / self.routers_per_cabinet)
        self.floorplan = FloorPlan(self.num_cabinets, packaging)

    def _dim_gbps(self, m: int) -> float:
        """Channel bandwidth keeping full bisection in a size-``m`` dim."""
        factor = max(1.0, self.concentration / m)
        return self.config.channel_gbps * factor

    def num_routers(self) -> int:
        return self.routers

    def router_pin_gbps(self) -> float:
        per_router = self.concentration * self.config.channel_gbps
        for m in self.dims:
            per_router += (m - 1) * self._dim_gbps(m)
        return self.routers * per_router

    def _cabinet_of(self, router: int) -> int:
        return router // self.routers_per_cabinet

    def cable_runs(self) -> Iterator[CableRun]:
        packaging = self.config.packaging
        base_gbps = self.config.channel_gbps
        yield CableRun(
            packaging.intra_cabinet_length_m,
            self.num_terminals,
            base_gbps,
            True,
            "terminal",
        )
        if len(self.dims) == 1:
            # Degenerate fully-connected layer, possibly spanning cabinets.
            yield from _complete_graph_runs(
                self.routers,
                self.routers_per_cabinet,
                list(range(self.num_cabinets)),
                self.floorplan,
                self._dim_gbps(self.dims[0]),
                "local",
            )
            return
        # Dimension 1: one 16-router line is half (or all) of a cabinet.
        m1 = self.dims[0]
        num_lines = self.routers // m1
        lines_per_cabinet = max(1, self.routers_per_cabinet // m1)
        yield CableRun(
            packaging.intra_cabinet_length_m,
            num_lines * (m1 * (m1 - 1) // 2),
            self._dim_gbps(m1),
            True,
            "local",
        )
        # Higher dimensions: cables between the dim-1 lines differing in
        # one coordinate; each line pair carries m1 parallel cables (one
        # per dimension-1 position).  Lines map onto cabinets, so some
        # pairs are intra-cabinet.
        line_dims = self.dims[1:]
        for dim_index, m in enumerate(line_dims):
            gbps = self._dim_gbps(m)
            others = [size for k, size in enumerate(line_dims) if k != dim_index]
            for coords in _iter_coords(others):
                for v_a in range(m):
                    for v_b in range(v_a + 1, m):
                        coords_a = list(coords)
                        coords_a.insert(dim_index, v_a)
                        coords_b = list(coords)
                        coords_b.insert(dim_index, v_b)
                        line_a = self._flatten(coords_a, line_dims)
                        line_b = self._flatten(coords_b, line_dims)
                        cab_a = line_a // lines_per_cabinet
                        cab_b = line_b // lines_per_cabinet
                        if cab_a == cab_b:
                            yield CableRun(
                                packaging.intra_cabinet_length_m,
                                m1,
                                gbps,
                                True,
                                "global",
                            )
                        else:
                            length = self.floorplan.cable_length(cab_a, cab_b)
                            yield CableRun(length, m1, gbps, False, "global")

    @staticmethod
    def _flatten(coords: Sequence[int], dims: Sequence[int]) -> int:
        index = 0
        for coord, m in zip(coords, dims):
            index = index * m + coord
        return index


def _iter_coords(dims: Sequence[int]) -> Iterator[Tuple[int, ...]]:
    if not dims:
        yield ()
        return
    for head in range(dims[0]):
        for rest in _iter_coords(dims[1:]):
            yield (head,) + rest


# ----------------------------------------------------------------------
# Folded Clos
# ----------------------------------------------------------------------
class FoldedClosCost(TopologyCost):
    """Cost of a full-bisection folded Clos of radix-``k`` switches.

    ``L`` levels with ``(2L - 1) N / k`` switches (the paper's counting,
    which folds the top level in half).  Every level boundary carries
    ``N`` cables.  With three or more levels the leaf boundary stays
    inside the cabinet and higher boundaries run to spine cabinets at the
    centre of the floor; a two-level network cables every cabinet
    directly to the spine.
    """

    name = "folded_clos"

    def __init__(
        self,
        num_terminals: int,
        config: CostConfig,
        router_radix: int = 64,
    ) -> None:
        super().__init__(num_terminals, config)
        if router_radix % 2:
            raise ValueError("folded Clos radix must be even")
        self.router_radix = router_radix
        down = router_radix // 2
        self.levels = 1
        capacity = 2 * down
        while capacity < num_terminals:
            self.levels += 1
            capacity = 2 * down**self.levels
        self.floorplan = FloorPlan.for_terminals(num_terminals, config.packaging)

    def num_routers(self) -> int:
        return math.ceil(
            (2 * self.levels - 1) * self.num_terminals / self.router_radix
        )

    def router_pin_gbps(self) -> float:
        return self.num_routers() * self.router_radix * self.config.channel_gbps

    def cable_runs(self) -> Iterator[CableRun]:
        gbps = self.config.channel_gbps
        packaging = self.config.packaging
        intra_len = packaging.intra_cabinet_length_m
        yield CableRun(intra_len, self.num_terminals, gbps, True, "terminal")
        if self.levels < 2:
            return
        global_boundaries = self.levels - 1
        if self.levels >= 3:
            # Leaf-to-first-aggregation: an aggregation switch gathers
            # k/2 leaves, more than one cabinet holds, so about half of
            # this boundary crosses to a neighbouring cabinet.
            short_run = (
                2 * packaging.cabinet_pitch_m + packaging.cable_overhead_m
            )
            yield CableRun(intra_len, self.num_terminals // 2, gbps, True, "local")
            yield CableRun(
                short_run,
                self.num_terminals - self.num_terminals // 2,
                gbps,
                False,
                "local",
            )
            global_boundaries -= 1
        cabinets = self.floorplan.num_cabinets
        per_cabinet = math.ceil(self.num_terminals / cabinets)
        centre = self.floorplan.central_cabinet()
        for _boundary in range(global_boundaries):
            for cabinet in range(cabinets):
                length = self.floorplan.cable_length(cabinet, centre)
                yield CableRun(
                    length, per_cabinet, gbps, cabinet == centre, "global"
                )


# ----------------------------------------------------------------------
# 3-D torus
# ----------------------------------------------------------------------
class TorusCost(TopologyCost):
    """Cost of a 3-D torus normalised to the same uniform throughput.

    A dimension-``m`` ring with concentration ``c`` must carry ``c*m/8``
    of the injection bandwidth per channel to sustain uniform traffic,
    so channels widen as the machine grows; with folding, cables stay
    short (electrical) but are numerous and wide.
    """

    name = "torus_3d"

    def __init__(
        self,
        num_terminals: int,
        config: CostConfig,
        concentration: int = 2,
    ) -> None:
        super().__init__(num_terminals, config)
        self.concentration = concentration
        routers = math.ceil(num_terminals / concentration)
        side = max(2, round(routers ** (1.0 / 3.0)))
        self.dims = (side, side, max(2, math.ceil(routers / (side * side))))
        self.routers = self.dims[0] * self.dims[1] * self.dims[2]
        self.floorplan = FloorPlan.for_terminals(num_terminals, config.packaging)

    def num_routers(self) -> int:
        return self.routers

    def _dim_gbps(self, m: int) -> float:
        """Channel bandwidth for a dimension-``m`` ring (>= injection)."""
        return self.config.channel_gbps * max(1.0, self.concentration * m / 8.0)

    def router_pin_gbps(self) -> float:
        per_router = self.concentration * self.config.channel_gbps
        for m in self.dims:
            per_router += 2 * self._dim_gbps(m)
        return self.routers * per_router

    def cable_runs(self) -> Iterator[CableRun]:
        packaging = self.config.packaging
        intra_len = packaging.intra_cabinet_length_m
        yield CableRun(
            intra_len, self.num_terminals, self.config.channel_gbps, True, "terminal"
        )
        # Folded-torus packing: a cabinet holds a sub-block of routers, so
        # most neighbour links stay inside it; per dimension, roughly
        # 1/side-of-block of the links cross to the (folded-adjacent)
        # cabinet at a short run of two pitches.
        routers_per_cabinet = max(
            1, packaging.terminals_per_cabinet // self.concentration
        )
        block_side = max(1.0, routers_per_cabinet ** (1.0 / 3.0))
        crossing_fraction = min(1.0, 1.0 / block_side)
        short_run = 2 * packaging.cabinet_pitch_m + packaging.cable_overhead_m
        for m in self.dims:
            cables = self.routers  # one +-link per router per dimension
            gbps = self._dim_gbps(m)
            crossing = int(round(cables * crossing_fraction))
            yield CableRun(intra_len, cables - crossing, gbps, True, "local")
            yield CableRun(short_run, crossing, gbps, False, "local")


# ----------------------------------------------------------------------
# Figure 19 driver
# ----------------------------------------------------------------------
ALL_COST_MODELS = {
    "dragonfly": DragonflyCost,
    "flattened_butterfly": FlattenedButterflyCost,
    "folded_clos": FoldedClosCost,
    "torus_3d": TorusCost,
}


def cost_comparison(
    sizes: Sequence[int],
    config: Optional[CostConfig] = None,
) -> Dict[str, List[CostBreakdown]]:
    """$/node for all four topologies over a sweep of network sizes."""
    config = config or CostConfig()
    out: Dict[str, List[CostBreakdown]] = {name: [] for name in ALL_COST_MODELS}
    for n in sizes:
        for name, model in ALL_COST_MODELS.items():
            out[name].append(model(n, config).breakdown())
    return out
