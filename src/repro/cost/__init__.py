"""Technology-driven cost model (Sections 2 and 5)."""

from .cables import (
    DEFAULT_CROSSOVER_M,
    ELECTRICAL_CABLE,
    INTEL_CONNECTS,
    LUXTERA_BLAZAR,
    TABLE_1,
    CableTechnology,
    cable_cost,
    cable_cost_per_gbps,
    crossover_length_m,
    electrical_cost_per_gbps,
    is_optical,
    optical_cost_per_gbps,
)
from .model import (
    CableRun,
    CostBreakdown,
    CostConfig,
    DragonflyCost,
    FlattenedButterflyCost,
    FoldedClosCost,
    TopologyCost,
    TorusCost,
    cost_comparison,
)
from .packaging import FloorPlan, PackagingConfig
from .power import PowerBreakdown, PowerConfig, power_breakdown, power_comparison

__all__ = [
    "DEFAULT_CROSSOVER_M",
    "ELECTRICAL_CABLE",
    "INTEL_CONNECTS",
    "LUXTERA_BLAZAR",
    "TABLE_1",
    "CableTechnology",
    "cable_cost",
    "cable_cost_per_gbps",
    "crossover_length_m",
    "electrical_cost_per_gbps",
    "is_optical",
    "optical_cost_per_gbps",
    "CableRun",
    "CostBreakdown",
    "CostConfig",
    "DragonflyCost",
    "FlattenedButterflyCost",
    "FoldedClosCost",
    "TopologyCost",
    "TorusCost",
    "cost_comparison",
    "FloorPlan",
    "PackagingConfig",
    "PowerBreakdown",
    "PowerConfig",
    "power_breakdown",
    "power_comparison",
]
