"""Physical packaging and floor-plan model.

The network cost of Section 5 depends on where routers live: channels
inside a cabinet are backplane traces, channels between cabinets are
cables whose length -- and therefore technology and price -- follows from
the machine-room layout.  This module provides the parametric layout the
cost models share: cabinets of a fixed terminal capacity arranged on a
near-square 2-D grid, with cable runs measured as Manhattan distance plus
a fixed routing overhead (rack ingress/egress and slack).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class PackagingConfig:
    """Knobs of the packaging hierarchy.

    The default cabinet capacity of 512 terminals makes one dragonfly
    group (the paper's Figure 19 group size) the packaging unit, so
    intra-group channels are backplane traces -- the premise behind the
    paper's "group size twice the dimension size leads to lower cost"
    argument.  Set 256 to reproduce the Figure 18 drawing's smaller
    cabinets instead.
    """

    terminals_per_cabinet: int = 512
    #: Centre-to-centre spacing of adjacent cabinets (aisles included).
    cabinet_pitch_m: float = 1.5
    #: Fixed extra cable length per inter-cabinet run (vertical rack
    #: ingress/egress plus service slack).
    cable_overhead_m: float = 2.0
    #: Effective length of an intra-cabinet connection (backplane trace
    #: or very short jumper).
    intra_cabinet_length_m: float = 1.0

    def __post_init__(self) -> None:
        if self.terminals_per_cabinet < 1:
            raise ValueError("terminals_per_cabinet must be >= 1")
        if self.cabinet_pitch_m <= 0:
            raise ValueError("cabinet_pitch_m must be > 0")
        if self.cable_overhead_m < 0 or self.intra_cabinet_length_m < 0:
            raise ValueError("lengths must be >= 0")


class FloorPlan:
    """Cabinets on a near-square grid, addressed by cabinet index."""

    def __init__(self, num_cabinets: int, config: PackagingConfig) -> None:
        if num_cabinets < 1:
            raise ValueError("num_cabinets must be >= 1")
        self.num_cabinets = num_cabinets
        self.config = config
        self.columns = max(1, math.ceil(math.sqrt(num_cabinets)))
        self.rows = math.ceil(num_cabinets / self.columns)

    @classmethod
    def for_terminals(cls, num_terminals: int, config: PackagingConfig) -> "FloorPlan":
        cabinets = math.ceil(num_terminals / config.terminals_per_cabinet)
        return cls(cabinets, config)

    def position(self, cabinet: int) -> Tuple[int, int]:
        """(row, column) grid coordinates of a cabinet."""
        if not (0 <= cabinet < self.num_cabinets):
            raise ValueError(f"cabinet {cabinet} out of range")
        return divmod(cabinet, self.columns)

    def cable_length(self, cabinet_a: int, cabinet_b: int) -> float:
        """Length of a cable between two cabinets (intra-cabinet runs use
        the backplane length)."""
        if cabinet_a == cabinet_b:
            return self.config.intra_cabinet_length_m
        row_a, col_a = self.position(cabinet_a)
        row_b, col_b = self.position(cabinet_b)
        manhattan = abs(row_a - row_b) + abs(col_a - col_b)
        return manhattan * self.config.cabinet_pitch_m + self.config.cable_overhead_m

    def extent_m(self) -> float:
        """Length of the longer floor dimension (Table 2's ``E``)."""
        return max(self.rows, self.columns) * self.config.cabinet_pitch_m

    def max_cable_length(self) -> float:
        """Corner-to-corner cable run."""
        if self.num_cabinets == 1:
            return self.config.intra_cabinet_length_m
        return (
            (self.rows - 1 + self.columns - 1) * self.config.cabinet_pitch_m
            + self.config.cable_overhead_m
        )

    def average_pair_distance(self) -> float:
        """Mean cable length over distinct cabinet pairs."""
        if self.num_cabinets == 1:
            return self.config.intra_cabinet_length_m
        total = 0.0
        count = 0
        for a in range(self.num_cabinets):
            for b in range(a + 1, self.num_cabinets):
                total += self.cable_length(a, b)
                count += 1
        return total / count

    def central_cabinet(self) -> int:
        """Cabinet nearest the floor centre (spine placement for Clos)."""
        centre_row = (self.rows - 1) / 2
        centre_col = (self.columns - 1) / 2
        best = 0
        best_distance = math.inf
        for cabinet in range(self.num_cabinets):
            row, col = self.position(cabinet)
            distance = abs(row - centre_row) + abs(col - centre_col)
            if distance < best_distance:
                best, best_distance = cabinet, distance
        return best
