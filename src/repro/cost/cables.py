"""Signalling technology and cable cost models (Section 2).

Encodes Table 1 (active optical vs electrical cable characteristics) and
the Figure 2 cost-versus-length lines:

* electrical (with repeaters):  ``$/Gb/s = 1.4 * L + 2.16``
* active optical:               ``$/Gb/s = 0.364 * L + 9.7103``

Optical cables have the higher fixed cost (transceivers integrated into
the cable) but the lower per-metre cost; the lines cross near 10 m.  The
paper's Figure 19 methodology prices cables shorter than 8 m with the
electrical model and longer cables with the optical model -- exposed here
as :func:`cable_cost_per_gbps`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Fitted cost lines from Figure 2 ($ per Gb/s as a function of metres).
ELECTRICAL_FIXED = 2.16
ELECTRICAL_PER_METER = 1.4
OPTICAL_FIXED = 9.7103
OPTICAL_PER_METER = 0.364

#: Length threshold of the paper's Figure 19 methodology: electrical
#: below, optical above.
DEFAULT_CROSSOVER_M = 8.0


@dataclass(frozen=True)
class CableTechnology:
    """One row of Table 1 (characteristics of 4x cables)."""

    name: str
    max_length_m: float
    data_rate_gbps: float
    power_w: float
    energy_per_bit_pj: float
    medium: str


#: Table 1 of the paper.
INTEL_CONNECTS = CableTechnology(
    name="Intel Connects Cable",
    max_length_m=100.0,
    data_rate_gbps=20.0,
    power_w=1.2,
    energy_per_bit_pj=60.0,
    medium="VCSELs, multimode fiber",
)
LUXTERA_BLAZAR = CableTechnology(
    name="Luxtera Blazar",
    max_length_m=300.0,
    data_rate_gbps=42.0,
    power_w=2.2,
    energy_per_bit_pj=55.0,
    medium="CMOS photonics, single-mode fiber",
)
ELECTRICAL_CABLE = CableTechnology(
    name="conventional electrical cable",
    max_length_m=10.0,
    data_rate_gbps=10.0,
    power_w=0.020,
    energy_per_bit_pj=2.0,
    medium="copper",
)

TABLE_1 = [INTEL_CONNECTS, LUXTERA_BLAZAR, ELECTRICAL_CABLE]


def electrical_cost_per_gbps(length_m: float) -> float:
    """Electrical-cable cost line of Figure 2 (repeaters included)."""
    if length_m < 0:
        raise ValueError("cable length must be >= 0")
    return ELECTRICAL_PER_METER * length_m + ELECTRICAL_FIXED


def optical_cost_per_gbps(length_m: float) -> float:
    """Active-optical-cable cost line of Figure 2."""
    if length_m < 0:
        raise ValueError("cable length must be >= 0")
    return OPTICAL_PER_METER * length_m + OPTICAL_FIXED


def crossover_length_m() -> float:
    """Length where the two Figure 2 lines intersect (~7.3 m; the paper
    quotes "approximately 10 m" and uses 8 m in its cost sweeps)."""
    return (OPTICAL_FIXED - ELECTRICAL_FIXED) / (ELECTRICAL_PER_METER - OPTICAL_PER_METER)


def cable_cost_per_gbps(
    length_m: float,
    crossover_m: float = DEFAULT_CROSSOVER_M,
) -> float:
    """Cost of the technology the paper's methodology would pick.

    Electrical below ``crossover_m``, optical at or above it.
    """
    if length_m < crossover_m:
        return electrical_cost_per_gbps(length_m)
    return optical_cost_per_gbps(length_m)


def cable_cost(
    length_m: float,
    bandwidth_gbps: float,
    crossover_m: float = DEFAULT_CROSSOVER_M,
) -> float:
    """Dollar cost of one cable of the given length and bandwidth."""
    if bandwidth_gbps <= 0:
        raise ValueError("bandwidth must be > 0")
    return cable_cost_per_gbps(length_m, crossover_m) * bandwidth_gbps


def is_optical(length_m: float, crossover_m: float = DEFAULT_CROSSOVER_M) -> bool:
    """Whether the methodology uses an optical cable at this length."""
    return length_m >= crossover_m
