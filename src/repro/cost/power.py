"""Network power model (extension of Section 5).

The paper closes its cost section with "the reduction of network cost in
the dragonfly also translates to reduction of power as shown in prior
work".  This module makes that claim checkable: it reuses the cost
models' cable enumerators and prices links in watts instead of dollars,
using the energy-per-bit figures of Table 1:

* active optical cable:  60 pJ/bit (Intel Connects Cables),
* electrical cable:       2 pJ/bit (repeatered copper),
* backplane trace:        1 pJ/bit,
* router:                40 pJ/bit of pin bandwidth (high-radix router
  budget in the YARC class).

Power per link = energy/bit x bandwidth (pJ/bit x Gb/s = mW).  The same
structure that makes the dragonfly cheap -- few long cables, with the
long ones optical -- drives its power: optical transceivers burn ~30x
the energy per bit of short copper, so minimising their count matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .cables import ELECTRICAL_CABLE, INTEL_CONNECTS
from .model import ALL_COST_MODELS, CostConfig, TopologyCost


@dataclass(frozen=True)
class PowerConfig:
    """Energy-per-bit figures (pJ/bit)."""

    optical_pj_per_bit: float = INTEL_CONNECTS.energy_per_bit_pj  # 60
    electrical_pj_per_bit: float = ELECTRICAL_CABLE.energy_per_bit_pj  # 2
    backplane_pj_per_bit: float = 1.0
    router_pj_per_bit: float = 40.0
    #: Cable length above which the optical technology (and its power)
    #: is used; matches the cost model's methodology.
    crossover_m: float = 8.0

    def __post_init__(self) -> None:
        values = (
            self.optical_pj_per_bit,
            self.electrical_pj_per_bit,
            self.backplane_pj_per_bit,
            self.router_pj_per_bit,
        )
        if any(value < 0 for value in values):
            raise ValueError("energies must be >= 0")


@dataclass
class PowerBreakdown:
    """Watts by component for one topology instance."""

    topology: str
    num_terminals: int
    router_watts: float = 0.0
    backplane_watts: float = 0.0
    electrical_cable_watts: float = 0.0
    optical_cable_watts: float = 0.0

    @property
    def cable_watts(self) -> float:
        return (
            self.backplane_watts
            + self.electrical_cable_watts
            + self.optical_cable_watts
        )

    @property
    def total_watts(self) -> float:
        return self.router_watts + self.cable_watts

    @property
    def watts_per_node(self) -> float:
        return self.total_watts / self.num_terminals

    def summary(self) -> str:
        n = self.num_terminals
        return (
            f"{self.topology:20s} N={n:6d} {self.watts_per_node:7.2f} W/node "
            f"(router {self.router_watts / n:5.2f}, backplane "
            f"{self.backplane_watts / n:5.2f}, electrical "
            f"{self.electrical_cable_watts / n:5.2f}, optical "
            f"{self.optical_cable_watts / n:5.2f})"
        )


def _pj_gbps_to_watts(pj_per_bit: float, gbps: float) -> float:
    # pJ/bit * Gbit/s = 1e-12 J * 1e9 /s = mW; both directions of the
    # bidirectional link are active.
    return pj_per_bit * gbps * 1e-3 * 2


def power_breakdown(
    model: TopologyCost,
    power: Optional[PowerConfig] = None,
) -> PowerBreakdown:
    """Watts consumed by a topology described by a cost model."""
    power = power or PowerConfig()
    out = PowerBreakdown(topology=model.name, num_terminals=model.num_terminals)
    out.router_watts = (
        model.router_pin_gbps() * power.router_pj_per_bit * 1e-3
    )
    for run in model.cable_runs():
        if run.count == 0:
            continue
        if run.intra_cabinet:
            pj = power.backplane_pj_per_bit
            out.backplane_watts += _pj_gbps_to_watts(pj, run.gbps) * run.count
        elif run.length_m < power.crossover_m:
            pj = power.electrical_pj_per_bit
            out.electrical_cable_watts += (
                _pj_gbps_to_watts(pj, run.gbps) * run.count
            )
        else:
            pj = power.optical_pj_per_bit
            out.optical_cable_watts += (
                _pj_gbps_to_watts(pj, run.gbps) * run.count
            )
    return out


def power_comparison(
    sizes: Sequence[int],
    cost_config: Optional[CostConfig] = None,
    power_config: Optional[PowerConfig] = None,
) -> Dict[str, List[PowerBreakdown]]:
    """W/node for all four topologies over a sweep of network sizes."""
    cost_config = cost_config or CostConfig()
    power_config = power_config or PowerConfig()
    out: Dict[str, List[PowerBreakdown]] = {name: [] for name in ALL_COST_MODELS}
    for n in sizes:
        for name, model_cls in ALL_COST_MODELS.items():
            model = model_cls(n, cost_config)
            out[name].append(power_breakdown(model, power_config))
    return out
