"""Sharded sweep scheduler with heartbeats, timeouts and crash resume.

:class:`SweepScheduler` executes a list of content-addressed
:class:`~repro.service.manifest.WorkUnit`\\ s against a
:class:`~repro.service.store.ResultStore`:

* Units whose point record already exists are answered from the store
  (zero ``run_point`` calls); all others are sharded across a pool of
  worker *processes*.
* Each worker owns a private task queue (so an assignment is never
  ambiguous), sends heartbeats from a daemon thread, and reports
  ``started``/``done``/``error`` events on a shared result queue.
* The scheduler detects dead or wedged workers three ways -- the
  process exited, heartbeats went stale, or the assigned unit exceeded
  its per-unit timeout -- kills them, respawns a replacement, and
  requeues the in-flight unit with exponential backoff, up to a bounded
  number of attempts per unit.
* Every state change lands in an append-only fsync'd
  :class:`~repro.service.journal.Journal` *after* the corresponding
  point record is durably stored, so SIGKILLing the whole service loses
  at most in-flight work: a restarted scheduler replays the journal,
  re-answers completed units from the store, and simulates only the
  remainder.  Results are bit-identical either way because every unit
  is a pure function of its spec.

``workers=1`` (or an unpicklable topology, which is logged and
journaled, never silent) degrades to an in-process serial loop with the
same journaling, retries and resume behaviour.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..network.parallel import _run_spec, workers_from_env
from ..network.stats import SimulationResult
from ..topology.dragonfly import Dragonfly
from .journal import Journal
from .manifest import WorkUnit
from .store import ResultStore

#: Per-unit wall-clock timeout in seconds.
TIMEOUT_ENV_VAR = "REPRO_SWEEP_SERVICE_TIMEOUT"
#: Maximum attempts per unit (first try + retries).
RETRIES_ENV_VAR = "REPRO_SWEEP_SERVICE_RETRIES"
#: Worker heartbeat interval in seconds.
HEARTBEAT_ENV_VAR = "REPRO_SWEEP_SERVICE_HEARTBEAT"

DEFAULT_UNIT_TIMEOUT = 3600.0
DEFAULT_MAX_ATTEMPTS = 3
DEFAULT_HEARTBEAT_INTERVAL = 0.5


class ServiceError(RuntimeError):
    """A sweep job could not be completed (units failed permanently)."""


def _positive_float_env(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(
            f"{name} must be a positive number of seconds, got {raw!r}"
        ) from exc
    if value <= 0:
        raise ValueError(
            f"{name} must be a positive number of seconds, got {value}"
        )
    return value


def _positive_int_env(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{name} must be a positive integer, got {raw!r}"
        ) from exc
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


@dataclass(frozen=True)
class SchedulerOptions:
    """Fault-tolerance and sharding knobs of one scheduler run."""

    #: Worker process count; ``1`` runs in-process.
    workers: int = 1
    #: Kill and retry a unit running longer than this (seconds).
    unit_timeout: float = DEFAULT_UNIT_TIMEOUT
    #: Total attempts per unit before it fails permanently.
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    #: Worker heartbeat period (seconds); a worker silent for several
    #: periods is declared dead even if the process object looks alive.
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL
    #: Base of the exponential retry backoff (seconds).
    backoff_base: float = 0.25
    #: Scheduler poll period (seconds).
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.unit_timeout <= 0 or self.heartbeat_interval <= 0:
            raise ValueError("timeouts must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    @classmethod
    def from_env(cls) -> "SchedulerOptions":
        """Options from the ``REPRO_SWEEP_SERVICE_*`` family (and
        ``REPRO_SWEEP_WORKERS``); garbage raises :class:`ValueError`
        naming the offending variable."""
        return cls(
            workers=workers_from_env(),
            unit_timeout=_positive_float_env(TIMEOUT_ENV_VAR, DEFAULT_UNIT_TIMEOUT),
            max_attempts=_positive_int_env(RETRIES_ENV_VAR, DEFAULT_MAX_ATTEMPTS),
            heartbeat_interval=_positive_float_env(
                HEARTBEAT_ENV_VAR, DEFAULT_HEARTBEAT_INTERVAL
            ),
        )


@dataclass
class JobProgress:
    """Live counts of one job, rendered on the service progress line."""

    total: int = 0
    #: Answered from the result store without simulating.
    cached: int = 0
    #: Of the cached units, how many a previous (crashed) run journaled.
    journaled: int = 0
    simulated: int = 0
    failed: int = 0
    running: int = 0
    retries: int = 0
    started_at: float = field(default_factory=time.monotonic)
    #: Wall-clock seconds of completed simulations (for the ETA).
    sim_elapsed: float = 0.0

    @property
    def done(self) -> int:
        return self.cached + self.simulated

    @property
    def remaining(self) -> int:
        return self.total - self.done - self.failed

    @property
    def hit_rate(self) -> float:
        return self.cached / self.done if self.done else 0.0

    def eta_seconds(self, workers: int = 1) -> Optional[float]:
        """Remaining-work estimate from the mean simulated-unit time."""
        if self.simulated == 0 or self.remaining == 0:
            return None
        mean = self.sim_elapsed / self.simulated
        return self.remaining * mean / max(1, workers)

    def line(self, workers: int = 1) -> str:
        """The one-line progress report (service ``submit`` verb)."""
        parts = [
            f"{self.done}/{self.total} done",
            f"{self.running} running",
            f"{self.failed} failed",
            f"cache {self.cached}/{self.done or 1} "
            f"({100.0 * self.hit_rate:.0f}% hit)",
        ]
        if self.retries:
            parts.append(f"{self.retries} retries")
        eta = self.eta_seconds(workers)
        if eta is not None:
            parts.append(f"ETA {eta:.0f}s")
        return " | ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "cached": self.cached,
            "journaled": self.journaled,
            "simulated": self.simulated,
            "failed": self.failed,
            "retries": self.retries,
            "hit_rate": self.hit_rate,
            "elapsed": time.monotonic() - self.started_at,
        }


@dataclass
class JobReport:
    """Outcome of one scheduler run."""

    job_id: str
    figure: str
    progress: JobProgress
    #: Unit index -> result, for every completed unit.
    results: Dict[int, SimulationResult]
    #: Unit index -> last error text, for permanently failed units.
    failed: Dict[int, str]
    #: Serial-fallback diagnostic (pickling/pool error), if any.
    fallback_error: Optional[str] = None

    def raise_for_failures(self) -> None:
        if self.failed:
            detail = "; ".join(
                f"unit {index}: {error}" for index, error in sorted(self.failed.items())
            )
            raise ServiceError(
                f"job {self.job_id}: {len(self.failed)} units failed "
                f"permanently ({detail})"
            )

    def ordered_results(self, count: int) -> List[SimulationResult]:
        self.raise_for_failures()
        return [self.results[index] for index in range(count)]


# ----------------------------------------------------------------------
# Worker process body
# ----------------------------------------------------------------------
def _worker_main(
    worker_id: int,
    topology: Dragonfly,
    task_queue,
    result_queue,
    heartbeat_interval: float,
    crash_flag: Optional[str],
) -> None:
    """Worker loop: heartbeat thread + one unit at a time.

    ``crash_flag`` is the fault-injection hook the crash-resume tests
    use: the first worker to claim the flag file deletes it and dies
    with ``os._exit`` mid-unit, exactly like a SIGKILL.
    """
    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            try:
                result_queue.put(("heartbeat", worker_id, None, None))
            except Exception:
                return
            stop.wait(heartbeat_interval)

    threading.Thread(target=beat, daemon=True).start()
    try:
        while True:
            item = task_queue.get()
            if item is None:
                break
            index, spec = item
            result_queue.put(("started", worker_id, index, None))
            if crash_flag is not None:
                try:
                    os.unlink(crash_flag)
                except OSError:
                    pass  # another worker already crashed on the flag
                else:
                    os._exit(43)
            try:
                result = _run_spec(topology, spec)
            except BaseException as exc:
                result_queue.put(
                    ("error", worker_id, index, f"{type(exc).__name__}: {exc}")
                )
            else:
                result_queue.put(("done", worker_id, index, result))
    finally:
        stop.set()


@dataclass
class _WorkerHandle:
    process: multiprocessing.process.BaseProcess
    task_queue: object
    last_heartbeat: float
    assigned: Optional[int] = None
    assigned_at: float = 0.0


class SweepScheduler:
    """Run one job's work units to completion, durably."""

    def __init__(
        self,
        store: ResultStore,
        topology: Dragonfly,
        units: Sequence[WorkUnit],
        job_dir: Union[str, Path],
        options: Optional[SchedulerOptions] = None,
        figure: str = "adhoc",
        crash_flag: Optional[Union[str, Path]] = None,
    ) -> None:
        self.store = store
        self.topology = topology
        self.units = list(units)
        self.job_dir = Path(job_dir)
        self.options = options or SchedulerOptions()
        self.figure = figure
        #: Test-only fault injection; see :func:`_worker_main`.
        self.crash_flag = str(crash_flag) if crash_flag is not None else None
        self.journal = Journal(self.job_dir / "journal.jsonl")
        self.job_id = self.job_dir.name

    # ------------------------------------------------------------------
    def run(
        self,
        on_progress: Optional[Callable[[JobProgress], None]] = None,
    ) -> JobReport:
        """Execute every unit; resume from the journal if one exists."""
        self.job_dir.mkdir(parents=True, exist_ok=True)
        state = self.journal.replay()
        progress = JobProgress(total=len(self.units))
        results: Dict[int, SimulationResult] = {}
        failed: Dict[int, str] = {}
        fallback_error: Optional[str] = None

        pending: List[int] = []
        for unit in self.units:
            hit = self.store.get(unit.key)
            if hit is not None:
                results[unit.index] = hit
                self.store.tag(unit.key, self.figure)
                progress.cached += 1
                if unit.digest in state.done:
                    progress.journaled += 1
                else:
                    self.journal.append({"event": "cached", "unit": unit.digest})
                continue
            if unit.digest in state.done:
                # Journaled complete but the record vanished (gc'd or a
                # different store): recompute, loudly.
                self.journal.append({"event": "recompute", "unit": unit.digest})
            pending.append(unit.index)

        self.journal.append({
            "event": "job",
            "job": self.job_id,
            "figure": self.figure,
            "units": len(self.units),
            "pending": len(pending),
            "resumed": bool(state.events),
            "workers": self.options.workers,
        })
        if on_progress is not None:
            on_progress(progress)

        if pending:
            use_pool = self.options.workers > 1 and len(pending) > 1
            if use_pool:
                error = self._pickle_error(pending)
                if error is not None:
                    fallback_error = error
                    self.journal.append({"event": "fallback", "error": error})
                    use_pool = False
            runner = self._run_pool if use_pool else self._run_inline
            runner(pending, results, failed, progress, on_progress)

        self.journal.append({
            "event": "complete",
            "job": self.job_id,
            **progress.to_dict(),
        })
        if on_progress is not None:
            on_progress(progress)
        return JobReport(
            job_id=self.job_id,
            figure=self.figure,
            progress=progress,
            results=results,
            failed=failed,
            fallback_error=fallback_error or state.last_fallback,
        )

    # ------------------------------------------------------------------
    # Shared bookkeeping
    # ------------------------------------------------------------------
    def _pickle_error(self, pending: Sequence[int]) -> Optional[str]:
        try:
            pickle.dumps((self.topology, [self.units[i].spec for i in pending]))
            return None
        except Exception as exc:
            return (
                "pre-flight pickle check failed; running serial: "
                f"{type(exc).__name__}: {exc}"
            )

    def _complete_unit(
        self,
        index: int,
        result: SimulationResult,
        elapsed: float,
        results: Dict[int, SimulationResult],
        progress: JobProgress,
    ) -> None:
        unit = self.units[index]
        # Store first, journal second: a journaled ``done`` implies a
        # durable point record, the invariant resume relies on.
        self.store.put(unit.key, result, figure=self.figure)
        self.journal.append({
            "event": "done",
            "unit": unit.digest,
            "elapsed": elapsed,
        })
        results[index] = result
        progress.simulated += 1
        progress.sim_elapsed += elapsed

    def _fail_attempt(
        self,
        index: int,
        attempts: Dict[int, int],
        error: str,
        failed: Dict[int, str],
        progress: JobProgress,
    ) -> bool:
        """Journal a failed attempt; ``True`` when the unit may retry."""
        unit = self.units[index]
        permanent = attempts[index] >= self.options.max_attempts
        self.journal.append({
            "event": "failed",
            "unit": unit.digest,
            "attempt": attempts[index],
            "error": error,
            "permanent": permanent,
        })
        if permanent:
            failed[index] = error
            progress.failed += 1
            return False
        progress.retries += 1
        return True

    # ------------------------------------------------------------------
    # In-process execution (workers == 1 or unpicklable inputs)
    # ------------------------------------------------------------------
    def _run_inline(
        self,
        pending: Sequence[int],
        results: Dict[int, SimulationResult],
        failed: Dict[int, str],
        progress: JobProgress,
        on_progress: Optional[Callable[[JobProgress], None]],
    ) -> None:
        attempts: Dict[int, int] = {}
        for index in pending:
            unit = self.units[index]
            while True:
                attempts[index] = attempts.get(index, 0) + 1
                self.journal.append({
                    "event": "start",
                    "unit": unit.digest,
                    "attempt": attempts[index],
                    "worker": "inline",
                })
                progress.running = 1
                if on_progress is not None:
                    on_progress(progress)
                started = time.monotonic()
                try:
                    result = _run_spec(self.topology, unit.spec)
                except Exception as exc:  # noqa: BLE001 - journaled + retried
                    error = f"{type(exc).__name__}: {exc}"
                    if self._fail_attempt(index, attempts, error, failed, progress):
                        time.sleep(
                            self.options.backoff_base
                            * (2 ** (attempts[index] - 1))
                        )
                        continue
                    break
                else:
                    self._complete_unit(
                        index, result, time.monotonic() - started, results, progress
                    )
                    break
            progress.running = 0
            if on_progress is not None:
                on_progress(progress)

    # ------------------------------------------------------------------
    # Sharded execution
    # ------------------------------------------------------------------
    def _run_pool(
        self,
        pending: Sequence[int],
        results: Dict[int, SimulationResult],
        failed: Dict[int, str],
        progress: JobProgress,
        on_progress: Optional[Callable[[JobProgress], None]],
    ) -> None:
        ctx = multiprocessing.get_context()
        result_queue = ctx.Queue()
        workers: Dict[int, _WorkerHandle] = {}
        next_worker_id = 0
        #: Units eligible to dispatch: (not-before time, unit index).
        ready: List[tuple] = [(0.0, index) for index in pending]
        attempts: Dict[int, int] = {}
        started_at: Dict[int, float] = {}
        outstanding = set(pending)
        heartbeat_grace = max(5.0 * self.options.heartbeat_interval, 2.0)

        def spawn() -> None:
            nonlocal next_worker_id
            worker_id = next_worker_id
            next_worker_id += 1
            task_queue = ctx.Queue()
            process = ctx.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    self.topology,
                    task_queue,
                    result_queue,
                    self.options.heartbeat_interval,
                    self.crash_flag,
                ),
                daemon=True,
            )
            process.start()
            workers[worker_id] = _WorkerHandle(
                process=process,
                task_queue=task_queue,
                last_heartbeat=time.monotonic(),
            )

        def requeue(index: int, error: str) -> None:
            if self._fail_attempt(index, attempts, error, failed, progress):
                delay = self.options.backoff_base * (2 ** (attempts[index] - 1))
                ready.append((time.monotonic() + delay, index))
            else:
                outstanding.discard(index)

        def retire(worker_id: int, error: str) -> None:
            """Kill a dead/wedged worker, requeueing its assignment."""
            handle = workers.pop(worker_id)
            if handle.process.is_alive():
                handle.process.terminate()
            handle.process.join(timeout=5.0)
            self.journal.append({
                "event": "worker-dead",
                "worker": worker_id,
                "unit": (
                    self.units[handle.assigned].digest
                    if handle.assigned is not None
                    else None
                ),
                "error": error,
            })
            if handle.assigned is not None:
                attempts.setdefault(handle.assigned, 0)
                if attempts[handle.assigned] == 0:
                    # Dispatched but the ``started`` event never arrived.
                    attempts[handle.assigned] = 1
                requeue(handle.assigned, error)

        for _ in range(min(self.options.workers, len(pending))):
            spawn()

        try:
            last_progress = 0.0
            while outstanding:
                now = time.monotonic()
                # Dispatch ready units to idle workers.
                idle = [h for h in workers.values() if h.assigned is None]
                if idle and ready:
                    ready.sort()
                    for handle in idle:
                        if not ready or ready[0][0] > now:
                            break
                        _, index = ready.pop(0)
                        if index not in outstanding:
                            continue
                        handle.assigned = index
                        handle.assigned_at = now
                        handle.task_queue.put((index, self.units[index].spec))
                # Top the pool back up if workers died with work left.
                while len(workers) < min(
                    self.options.workers, len(outstanding)
                ):
                    spawn()

                # Drain worker events.
                try:
                    kind, worker_id, index, payload = result_queue.get(
                        timeout=self.options.poll_interval
                    )
                except queue_module.Empty:
                    kind = None
                if kind is not None and worker_id in workers:
                    handle = workers[worker_id]
                    handle.last_heartbeat = time.monotonic()
                    if kind == "started":
                        attempts[index] = attempts.get(index, 0) + 1
                        started_at[index] = time.monotonic()
                        self.journal.append({
                            "event": "start",
                            "unit": self.units[index].digest,
                            "attempt": attempts[index],
                            "worker": worker_id,
                        })
                    elif kind == "done":
                        elapsed = time.monotonic() - started_at.get(
                            index, handle.assigned_at
                        )
                        self._complete_unit(
                            index, payload, elapsed, results, progress
                        )
                        outstanding.discard(index)
                        handle.assigned = None
                    elif kind == "error":
                        requeue(index, str(payload))
                        handle.assigned = None

                # Detect dead or wedged workers.
                now = time.monotonic()
                for worker_id in list(workers):
                    handle = workers[worker_id]
                    if not handle.process.is_alive():
                        retire(worker_id, "worker process died")
                    elif now - handle.last_heartbeat > heartbeat_grace:
                        retire(worker_id, "worker heartbeat lost")
                    elif (
                        handle.assigned is not None
                        and now - handle.assigned_at > self.options.unit_timeout
                    ):
                        retire(
                            worker_id,
                            f"unit exceeded {self.options.unit_timeout:.1f}s timeout",
                        )

                progress.running = sum(
                    1 for h in workers.values() if h.assigned is not None
                )
                if on_progress is not None and now - last_progress > 0.2:
                    last_progress = now
                    on_progress(progress)
        finally:
            for handle in workers.values():
                try:
                    handle.task_queue.put(None)
                except Exception:
                    pass
            deadline = time.monotonic() + 5.0
            for handle in workers.values():
                handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
            result_queue.cancel_join_thread()
        progress.running = 0


# ----------------------------------------------------------------------
# Manifest-level convenience
# ----------------------------------------------------------------------
def run_manifest(
    root: Union[str, Path],
    manifest,
    options: Optional[SchedulerOptions] = None,
    on_progress: Optional[Callable[[JobProgress], None]] = None,
    crash_flag: Optional[Union[str, Path]] = None,
) -> JobReport:
    """Submit one manifest against the service root and run it to
    completion (the ``submit`` verb's engine).

    The manifest is persisted under ``<root>/jobs/<job_id>/`` next to
    its journal, so ``status`` can describe the job and a resume can
    verify it is re-running the same request.
    """
    import json

    root = Path(root)
    store = ResultStore(root / "store")
    topology = manifest.topology.build()
    units = manifest.work_units(topology)
    job_dir = root / "jobs" / manifest.job_id
    job_dir.mkdir(parents=True, exist_ok=True)
    manifest_path = job_dir / "manifest.json"
    if not manifest_path.exists():
        manifest_path.write_text(
            json.dumps(manifest.to_dict(), indent=2, sort_keys=True),
            encoding="utf-8",
        )
    scheduler = SweepScheduler(
        store=store,
        topology=topology,
        units=units,
        job_dir=job_dir,
        options=options,
        figure=manifest.figure,
        crash_flag=crash_flag,
    )
    return scheduler.run(on_progress=on_progress)
