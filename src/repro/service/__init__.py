"""Sharded sweep scheduling and a queryable result store.

``repro.service`` promotes figure reproduction from "script + process
pool + directory of JSON files" to a *service*:

:mod:`~repro.service.manifest`
    A sweep request (figure tag, topology, routings, patterns, loads,
    replication seeds, simulation config) decomposed into
    content-addressed :class:`~repro.service.manifest.WorkUnit`\\ s
    keyed by :func:`repro.network.cache.point_key`.

:mod:`~repro.service.store`
    :class:`~repro.service.store.ResultStore` -- the on-disk point
    records of :class:`~repro.network.cache.SweepCache` (atomic writes,
    self-healing invalidation) plus a schema'd manifest index with a
    query API: by figure, by digest, by (routing, pattern, load)
    predicates.  Queries never simulate.

:mod:`~repro.service.scheduler`
    :class:`~repro.service.scheduler.SweepScheduler` -- shards work
    units across worker processes with heartbeats, per-unit timeouts,
    bounded retries with backoff, and an append-only crash journal so a
    killed service resumes a partial sweep without recomputing
    completed points.

:mod:`~repro.service.client`
    :class:`~repro.service.client.ServiceExecutor` -- a drop-in
    :class:`~repro.network.parallel.SweepExecutor` backed by the store
    and scheduler.  Setting ``REPRO_SWEEP_SERVICE`` to a service root
    directory turns every figure script and benchmark that calls
    :func:`repro.experiments.base.experiment_executor` into a service
    client with no code changes.

The CLI front end lives in :mod:`repro.serve` (``python -m repro.serve
submit|status|query|gc``).  See ``docs/sweep-service.md``.
"""

from .client import (
    SERVICE_ENV_VAR,
    ServiceExecutor,
    executor_from_env,
    service_root_from_env,
)
from .manifest import (
    MANIFEST_SCHEMA_VERSION,
    SweepManifest,
    TopologySpec,
    WorkUnit,
    manifests_for_figure,
)
from .scheduler import SchedulerOptions, ServiceError, SweepScheduler
from .store import ResultStore, StoredPoint

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "SERVICE_ENV_VAR",
    "ResultStore",
    "SchedulerOptions",
    "ServiceError",
    "ServiceExecutor",
    "StoredPoint",
    "SweepManifest",
    "SweepScheduler",
    "TopologySpec",
    "WorkUnit",
    "executor_from_env",
    "manifests_for_figure",
    "service_root_from_env",
]
