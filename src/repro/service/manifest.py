"""Sweep manifests: a figure's simulation grid as data.

A :class:`SweepManifest` is the unit of submission to the sweep
service: it names a figure tag and spans a (routing x pattern x load x
seed) grid over one topology and one base
:class:`~repro.network.config.SimulationConfig`.  The manifest is pure
data (JSON round-trip, stable digest), so a sweep request can be
journaled, resumed, shipped to another host, or compared for identity.

Decomposition into work is deterministic: :meth:`SweepManifest.work_units`
yields one :class:`WorkUnit` per grid point, each carrying the full
auditable cache key of :func:`repro.network.cache.point_key` and its
SHA-256 digest -- the same content address the result store files the
point under, so "is this unit already computed?" is a single store
lookup and two identical submissions share every point.

Figure presets (:func:`manifests_for_figure`) mirror the grids of the
``repro.experiments`` simulation figures; figures that sweep buffer
depth expand into one manifest per depth, all tagged with the same
figure id.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.params import DragonflyParams
from ..network.cache import key_digest, point_key
from ..network.config import SimulationConfig
from ..network.parallel import PointSpec
from ..topology.dragonfly import Dragonfly

#: Bump when the manifest layout or its decomposition into units changes.
MANIFEST_SCHEMA_VERSION = 1

#: Routing algorithm names accepted by ``repro.routing.ugal.make_routing``.
KNOWN_ROUTINGS = (
    "MIN",
    "VAL",
    "UGAL-L",
    "UGAL-G",
    "UGAL-L_VC",
    "UGAL-L_VCH",
    "UGAL-L_CR",
    "TBL-MIN",
    "TBL-MIN/gc1",
    "TBL-MIN/gc2",
    "TBL-MIN/gc3",
)


@dataclass(frozen=True)
class TopologySpec:
    """JSON-able description of the topology a manifest runs on."""

    family: str
    p: int
    a: int
    h: int
    num_groups: Optional[int] = None

    def __post_init__(self) -> None:
        if self.family != "dragonfly":
            raise ValueError(
                f"unsupported topology family {self.family!r}; the sweep "
                "service currently builds 'dragonfly' topologies"
            )
        # Validate the parameter algebra eagerly: a bad spec must fail at
        # submission, not inside a worker process.
        DragonflyParams(p=self.p, a=self.a, h=self.h, num_groups=self.num_groups)

    def build(self) -> Dragonfly:
        """Construct the topology this spec describes."""
        return Dragonfly(
            DragonflyParams(p=self.p, a=self.a, h=self.h, num_groups=self.num_groups)
        )

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TopologySpec":
        return cls(
            family=str(data["family"]),
            p=int(data["p"]),  # type: ignore[arg-type]
            a=int(data["a"]),  # type: ignore[arg-type]
            h=int(data["h"]),  # type: ignore[arg-type]
            num_groups=(
                None if data.get("num_groups") is None
                else int(data["num_groups"])  # type: ignore[arg-type]
            ),
        )

    @classmethod
    def from_topology(cls, topology: Dragonfly) -> "TopologySpec":
        params = topology.params
        return cls(
            family="dragonfly",
            p=params.p,
            a=params.a,
            h=params.h,
            num_groups=params.num_groups,
        )


@dataclass(frozen=True)
class WorkUnit:
    """One content-addressed simulation point of a manifest."""

    #: Position in the manifest's deterministic unit order.
    index: int
    #: SHA-256 digest of :attr:`key` -- the point's content address.
    digest: str
    #: Full auditable cache key (:func:`repro.network.cache.point_key`).
    key: Dict[str, object]
    #: What to simulate: routing + pattern + fully resolved config.
    spec: PointSpec


@dataclass(frozen=True)
class SweepManifest:
    """A sweep request: figure tag + simulation grid, as pure data."""

    #: Figure tag the results are filed under (e.g. ``"fig09"``).
    figure: str
    topology: TopologySpec
    routings: Tuple[str, ...]
    patterns: Tuple[str, ...]
    loads: Tuple[float, ...]
    #: Replication seeds; each grid point runs once per seed.
    seeds: Tuple[int, ...]
    #: Base config; ``load`` and ``seed`` are replaced per unit.
    config: SimulationConfig

    def __post_init__(self) -> None:
        if not self.figure:
            raise ValueError("manifest needs a figure tag")
        for name, values in (
            ("routings", self.routings),
            ("patterns", self.patterns),
            ("loads", self.loads),
            ("seeds", self.seeds),
        ):
            if not values:
                raise ValueError(f"manifest needs at least one entry in {name}")
        for routing in self.routings:
            if routing not in KNOWN_ROUTINGS:
                raise ValueError(
                    f"unknown routing {routing!r}; choose from "
                    f"{sorted(KNOWN_ROUTINGS)}"
                )
        for load in self.loads:
            if not 0.0 < load <= 1.0:
                raise ValueError(f"loads must be in (0, 1], got {load}")

    # ------------------------------------------------------------------
    # Identity and serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": MANIFEST_SCHEMA_VERSION,
            "figure": self.figure,
            "topology": self.topology.to_dict(),
            "routings": list(self.routings),
            "patterns": list(self.patterns),
            "loads": list(self.loads),
            "seeds": list(self.seeds),
            "config": dataclasses.asdict(self.config),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepManifest":
        schema = data.get("schema", MANIFEST_SCHEMA_VERSION)
        if schema != MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"manifest schema {schema!r} is not the supported "
                f"version {MANIFEST_SCHEMA_VERSION}"
            )
        config_data = dict(data["config"])  # type: ignore[call-overload]
        return cls(
            figure=str(data["figure"]),
            topology=TopologySpec.from_dict(data["topology"]),  # type: ignore[arg-type]
            routings=tuple(str(r) for r in data["routings"]),  # type: ignore[union-attr]
            patterns=tuple(str(p) for p in data["patterns"]),  # type: ignore[union-attr]
            loads=tuple(float(v) for v in data["loads"]),  # type: ignore[union-attr]
            seeds=tuple(int(s) for s in data["seeds"]),  # type: ignore[union-attr]
            config=SimulationConfig(**config_data),
        )

    @property
    def digest(self) -> str:
        """Stable content address of the whole request."""
        return key_digest(self.to_dict())

    @property
    def job_id(self) -> str:
        """Directory-friendly job identity: figure tag + digest prefix."""
        return f"{self.figure}-{self.digest[:16]}"

    # ------------------------------------------------------------------
    # Decomposition
    # ------------------------------------------------------------------
    def num_units(self) -> int:
        return (
            len(self.routings) * len(self.patterns)
            * len(self.loads) * len(self.seeds)
        )

    def work_units(self, topology: Optional[Dragonfly] = None) -> List[WorkUnit]:
        """The manifest's grid as content-addressed work units.

        Order is deterministic (routing, then pattern, then load, then
        seed) so unit indexes are stable across submissions and resumes.
        ``topology`` may be passed when the caller already built one;
        it must describe the same machine as :attr:`topology`.
        """
        topology = topology if topology is not None else self.topology.build()
        units: List[WorkUnit] = []
        for routing in self.routings:
            for pattern in self.patterns:
                for load in self.loads:
                    for seed in self.seeds:
                        config = dataclasses.replace(
                            self.config, load=load, seed=seed
                        )
                        spec = PointSpec(routing, pattern, config)
                        key = point_key(topology, routing, pattern, config)
                        units.append(
                            WorkUnit(
                                index=len(units),
                                digest=key_digest(key),
                                key=key,
                                spec=spec,
                            )
                        )
        return units


# ----------------------------------------------------------------------
# Figure presets
# ----------------------------------------------------------------------
def _figure_manifest(
    figure: str,
    quick: bool,
    routings: Sequence[str],
    pattern: str,
    loads: Sequence[float],
    vc_buffer_depth: int = 16,
    seeds: Tuple[int, ...] = (1,),
) -> SweepManifest:
    from ..experiments.base import experiment_config, experiment_topology

    config = experiment_config(quick, load=loads[0], vc_buffer_depth=vc_buffer_depth)
    if vc_buffer_depth >= 256:
        # Deep buffers need a longer warm-up to fill (the fig11/12/16
        # experiments apply the same scaling).
        config = dataclasses.replace(config, warmup_cycles=config.warmup_cycles * 5)
    return SweepManifest(
        figure=figure,
        topology=TopologySpec.from_topology(experiment_topology(quick)),
        routings=tuple(routings),
        patterns=(pattern,),
        loads=tuple(loads),
        seeds=seeds,
        config=config,
    )


def manifests_for_figure(
    figure: str,
    quick: bool = True,
    loads: Optional[Sequence[float]] = None,
) -> List[SweepManifest]:
    """The sweep manifests behind one of the paper's simulation figures.

    Figures whose grid spans both traffic patterns or several buffer
    depths expand into several manifests sharing the figure tag (a
    manifest holds one pattern list with one load list, and one base
    config).  ``loads`` overrides every manifest's load list -- used by
    CI smoke runs to submit a cheap slice of a figure.
    """
    from ..experiments.base import uniform_loads, worst_case_loads

    uniform = tuple(loads) if loads is not None else tuple(uniform_loads(quick))
    worst = tuple(loads) if loads is not None else tuple(worst_case_loads(quick))
    mid = tuple(loads) if loads is not None else (
        (0.1, 0.2, 0.3, 0.4) if quick else (0.1, 0.2, 0.3, 0.4, 0.5)
    )

    def both_patterns(routings: Sequence[str], depth: int = 16) -> List[SweepManifest]:
        return [
            _figure_manifest(figure, quick, routings, "uniform_random", uniform, depth),
            _figure_manifest(figure, quick, routings, "worst_case", worst, depth),
        ]

    if figure == "fig08":
        return both_patterns(["MIN", "VAL", "UGAL-L", "UGAL-G"])
    if figure == "fig09":
        return [
            _figure_manifest(figure, quick, ["UGAL-L", "UGAL-G"], "worst_case", worst)
        ]
    if figure == "fig10":
        return both_patterns(["UGAL-L", "UGAL-L_VC", "UGAL-L_VCH", "UGAL-G"])
    if figure == "fig11":
        return [
            _figure_manifest(figure, quick, ["UGAL-L"], "worst_case", mid, depth)
            for depth in (16, 256)
        ]
    if figure == "fig12":
        single = tuple(loads) if loads is not None else (0.25,)
        return [
            _figure_manifest(figure, quick, ["UGAL-L"], "worst_case", single, depth)
            for depth in (16, 256)
        ]
    if figure == "fig14":
        return [
            _figure_manifest(figure, quick, ["UGAL-L"], "worst_case", mid, depth)
            for depth in (4, 8, 16, 32, 64)
        ]
    if figure == "fig16":
        manifests: List[SweepManifest] = []
        for depth in (16, 256):
            manifests.extend(
                both_patterns(["UGAL-L_VCH", "UGAL-L_CR", "UGAL-G"], depth)
            )
        return manifests
    raise KeyError(
        f"no sweep preset for {figure!r}; available: fig08 fig09 fig10 "
        "fig11 fig12 fig14 fig16 (or submit an explicit --manifest file)"
    )
