"""Indexed, queryable, content-addressed result store.

The store keeps :class:`~repro.network.cache.SweepCache`'s per-point
discipline -- one JSON record per simulated point, written atomically,
addressed by the SHA-256 of its full recipe, stale records self-healing
on read -- and layers an index over it so results are *queryable*
without touching every point file:

``<root>/store/points/<digest>.json``
    The point records (exactly the ``SweepCache`` format, so a store's
    points directory doubles as a plain ``REPRO_SWEEP_CACHE``).

``<root>/store/index.json``
    A schema'd index: digest -> flat metadata (figure tags, routing,
    VC assignment, pattern, load, seed, topology signature, summary
    metrics).  Rewritten atomically on every put; rebuildable at any
    time from the point records (:meth:`ResultStore.reindex`), so the
    index is an accelerator, never the ground truth.

Queries (:meth:`ResultStore.query`) filter the index -- by figure, by
digest, by routing/pattern equality, by load/seed predicates -- and
never run a simulation; the full bit-exact result of a matching point
loads lazily from its record.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..network.cache import SCHEMA_VERSION, SweepCache, key_digest
from ..network.stats import SimulationResult

#: Bump when the index layout changes; a mismatched index is rebuilt
#: from the point records instead of trusted.
INDEX_SCHEMA_VERSION = 1


@dataclass
class StoredPoint:
    """One indexed point: flat metadata plus a lazy result loader."""

    digest: str
    figures: List[str]
    routing: str
    vc_assignment: str
    pattern: str
    load: float
    seed: int
    topology: Dict[str, object]
    saturated: bool
    avg_latency: float
    accepted_load: float
    #: Engine provenance: which backend computed the point and, for the
    #: array backend, which kernel variant ("unknown" for records
    #: written before provenance existed).
    backend: str = "unknown"
    kernel: str = "unknown"
    _store: Optional["ResultStore"] = None
    _key: Optional[Dict[str, object]] = None

    def result(self) -> SimulationResult:
        """The full bit-exact stored result (loads the point record)."""
        if self._store is None or self._key is None:
            raise ValueError("stored point is not attached to a store")
        result = self._store.get(self._key)
        if result is None:
            raise KeyError(
                f"point record for {self.digest[:16]} is missing or stale; "
                "run gc/reindex and resubmit the sweep"
            )
        return result

    def to_row(self) -> Dict[str, object]:
        """Flat JSON-able row for CLI/report output."""
        return {
            "digest": self.digest,
            "figures": list(self.figures),
            "routing": self.routing,
            "pattern": self.pattern,
            "load": self.load,
            "seed": self.seed,
            "saturated": self.saturated,
            "avg_latency": self.avg_latency,
            "accepted_load": self.accepted_load,
            "backend": self.backend,
            "kernel": self.kernel,
        }


class ResultStore:
    """Content-addressed point records plus a queryable index."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.points_dir = self.root / "points"
        self.index_path = self.root / "index.json"
        #: The underlying point records; its hit/miss/invalidation
        #: counters feed the service progress line.
        self.cache = SweepCache(self.points_dir)
        self._index: Optional[Dict[str, Dict[str, object]]] = None

    # ------------------------------------------------------------------
    # Point records
    # ------------------------------------------------------------------
    def get(self, key: Dict[str, object]) -> Optional[SimulationResult]:
        """The stored result for a full point key, or ``None``."""
        return self.cache.get(key)

    def put(
        self,
        key: Dict[str, object],
        result: SimulationResult,
        figure: str = "adhoc",
    ) -> str:
        """Store a point record and index it under ``figure``.

        The record is written first (atomic rename), the index after --
        a crash between the two loses only the index entry, which
        :meth:`reindex` recovers from the record.  Returns the digest.
        """
        digest = key_digest(key)
        self.cache.put(key, result)
        index = self._load_index()
        entry = self._entry_from_key(key, result)
        previous = index.get(digest)
        figures = set(previous.get("figures", [])) if previous else set()  # type: ignore[union-attr]
        figures.add(figure)
        entry["figures"] = sorted(figures)
        index[digest] = entry
        self._write_index(index)
        return digest

    def tag(self, key: Dict[str, object], figure: str) -> None:
        """Add a figure tag to an already stored point (e.g. a point
        first computed for another figure that this sweep reuses)."""
        digest = key_digest(key)
        index = self._load_index()
        entry = index.get(digest)
        if entry is None:
            result = self.cache.get(key)
            if result is None:
                return
            entry = self._entry_from_key(key, result)
            entry["figures"] = []
        figures = set(entry.get("figures", []))  # type: ignore[arg-type]
        if figure in figures:
            return
        figures.add(figure)
        entry["figures"] = sorted(figures)
        index[digest] = entry
        self._write_index(index)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        figure: Optional[str] = None,
        routing: Optional[str] = None,
        pattern: Optional[str] = None,
        load: Optional[float] = None,
        min_load: Optional[float] = None,
        max_load: Optional[float] = None,
        seed: Optional[int] = None,
        digest: Optional[str] = None,
        backend: Optional[str] = None,
        predicate: Optional[Callable[[StoredPoint], bool]] = None,
    ) -> List[StoredPoint]:
        """Indexed points matching every given filter (no simulation).

        ``digest`` matches a prefix, so CLI users can paste the short
        form.  Results are ordered by (routing, pattern, load, seed) so
        a figure query reads like the figure's table.
        """
        points: List[StoredPoint] = []
        for point_digest, entry in self._load_index().items():
            point = self._point_from_entry(point_digest, entry)
            if point is None:
                continue
            if figure is not None and figure not in point.figures:
                continue
            if routing is not None and point.routing != routing:
                continue
            if pattern is not None and point.pattern != pattern:
                continue
            if load is not None and point.load != load:
                continue
            if min_load is not None and point.load < min_load:
                continue
            if max_load is not None and point.load > max_load:
                continue
            if seed is not None and point.seed != seed:
                continue
            if digest is not None and not point_digest.startswith(digest):
                continue
            if backend is not None and point.backend != backend:
                continue
            if predicate is not None and not predicate(point):
                continue
            points.append(point)
        points.sort(key=lambda p: (p.routing, p.pattern, p.load, p.seed))
        return points

    def figures(self) -> Dict[str, int]:
        """Figure tag -> number of indexed points."""
        counts: Dict[str, int] = {}
        for entry in self._load_index().values():
            for figure in entry.get("figures", []):  # type: ignore[union-attr]
                counts[str(figure)] = counts.get(str(figure), 0) + 1
        return dict(sorted(counts.items()))

    def __len__(self) -> int:
        return len(self._load_index())

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def reindex(self) -> Dict[str, int]:
        """Rebuild the index from the point records on disk.

        Figure tags of surviving entries are preserved (they exist only
        in the index); entries whose record vanished are dropped;
        records missing from the index are added under their journaled
        figures or ``"adhoc"``.  Returns maintenance counts.
        """
        old_index = self._load_index()
        new_index: Dict[str, Dict[str, object]] = {}
        recovered = dropped = corrupt = 0
        for path in sorted(self.points_dir.glob("*.json")):
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                corrupt += 1
                continue
            key = entry.get("key")
            if (
                entry.get("schema") != SCHEMA_VERSION
                or not isinstance(key, dict)
                or key_digest(key) != path.stem
            ):
                corrupt += 1
                continue
            try:
                result = SimulationResult.from_dict(entry["result"])
            except (KeyError, TypeError, ValueError):
                corrupt += 1
                continue
            provenance = entry.get("provenance")
            if isinstance(provenance, dict):
                result.backend_info = dict(provenance)
            digest = path.stem
            record = self._entry_from_key(key, result)
            previous = old_index.get(digest)
            if previous is not None:
                record["figures"] = sorted(
                    set(previous.get("figures", [])) or {"adhoc"}  # type: ignore[arg-type]
                )
            else:
                record["figures"] = ["adhoc"]
                recovered += 1
            new_index[digest] = record
        dropped = len([d for d in old_index if d not in new_index])
        self._write_index(new_index)
        return {
            "indexed": len(new_index),
            "recovered": recovered,
            "dropped": dropped,
            "corrupt": corrupt,
        }

    def gc(self) -> Dict[str, int]:
        """Clean the store: drop temp litter and stale records, rebuild
        the index.  Never deletes a valid point record."""
        tmp_removed = 0
        if self.points_dir.is_dir():
            for path in self.points_dir.glob("*.tmp"):
                try:
                    path.unlink()
                    tmp_removed += 1
                except OSError:
                    pass
        counts = self.reindex()
        counts["tmp_removed"] = tmp_removed
        return counts

    # ------------------------------------------------------------------
    # Index plumbing
    # ------------------------------------------------------------------
    def _entry_from_key(
        self, key: Dict[str, object], result: SimulationResult
    ) -> Dict[str, object]:
        config = key.get("config")
        load = seed = None
        if isinstance(config, dict):
            load = config.get("load")
            seed = config.get("seed")
        avg_latency: Optional[float] = None
        if not result.saturated:
            value = result.avg_latency
            if not math.isnan(value):
                avg_latency = value
        provenance = result.backend_info or {}
        return {
            "routing": key.get("routing"),
            "vc_assignment": key.get("vc_assignment"),
            "pattern": key.get("pattern"),
            "load": load,
            "seed": seed,
            "topology": key.get("topology"),
            "saturated": result.saturated,
            "avg_latency": avg_latency,
            "accepted_load": result.accepted_load,
            "backend": str(provenance.get("backend", "unknown")),
            "kernel": str(provenance.get("kernel", "unknown")),
            "key": key,
        }

    def _point_from_entry(
        self, digest: str, entry: Dict[str, object]
    ) -> Optional[StoredPoint]:
        try:
            avg_latency = entry.get("avg_latency")
            return StoredPoint(
                digest=digest,
                figures=[str(f) for f in entry.get("figures", [])],  # type: ignore[union-attr]
                routing=str(entry["routing"]),
                vc_assignment=str(entry["vc_assignment"]),
                pattern=str(entry["pattern"]),
                load=float(entry["load"]),  # type: ignore[arg-type]
                seed=int(entry["seed"]),  # type: ignore[arg-type]
                topology=dict(entry.get("topology") or {}),  # type: ignore[arg-type]
                saturated=bool(entry["saturated"]),
                avg_latency=(
                    float("inf") if avg_latency is None else float(avg_latency)  # type: ignore[arg-type]
                ),
                accepted_load=float(entry["accepted_load"]),  # type: ignore[arg-type]
                backend=str(entry.get("backend", "unknown")),
                kernel=str(entry.get("kernel", "unknown")),
                _store=self,
                _key=dict(entry.get("key") or {}),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError):
            return None

    def _load_index(self) -> Dict[str, Dict[str, object]]:
        if self._index is not None:
            return self._index
        try:
            data = json.loads(self.index_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            self._index = {}
            return self._index
        if (
            not isinstance(data, dict)
            or data.get("schema") != INDEX_SCHEMA_VERSION
            or not isinstance(data.get("points"), dict)
        ):
            # Unknown layout: rebuild rather than guess.
            self._index = {}
            return self._index
        self._index = {
            str(digest): dict(entry)
            for digest, entry in data["points"].items()
            if isinstance(entry, dict)
        }
        return self._index

    def _write_index(self, index: Dict[str, Dict[str, object]]) -> None:
        self._index = index
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {"schema": INDEX_SCHEMA_VERSION, "points": index}
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix="index", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_name, self.index_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
