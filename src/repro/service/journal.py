"""Append-only crash journal for sweep jobs.

One JSON object per line, flushed and fsync'd per event, so the journal
survives a SIGKILL of the service mid-sweep.  On restart
:meth:`Journal.replay` folds the surviving prefix into a
:class:`JournalState`: which unit digests completed, how many attempts
each unit burned, and any serial-fallback diagnostics -- everything the
scheduler needs to resume without recomputing completed points and
everything the ``status`` verb needs to narrate a job.

A truncated final line (the crash landed mid-write) is ignored; every
earlier line was durable before the corresponding state change was
acted on (results are stored *before* their ``done`` event, so a
journaled-complete unit always has its point record).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union


@dataclass
class JournalState:
    """Replay of a job journal: the durable progress of a sweep."""

    #: Unit digests with a journaled ``done`` event.
    done: Dict[str, float] = field(default_factory=dict)
    #: Unit digests answered straight from the result store.
    cached: List[str] = field(default_factory=list)
    #: Attempts burned per unit digest (``start`` events seen).
    attempts: Dict[str, int] = field(default_factory=dict)
    #: Permanently failed units: digest -> last error text.
    failed: Dict[str, str] = field(default_factory=dict)
    #: Most recent serial-fallback diagnostic, if any.
    last_fallback: Optional[str] = None
    #: All events, in order (for ``status`` rendering).
    events: List[Dict[str, object]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return any(e.get("event") == "complete" for e in self.events)


class Journal:
    """Durable event log of one sweep job."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def append(self, event: Dict[str, object]) -> None:
        """Durably append one event (timestamped, fsync'd)."""
        record = dict(event)
        record.setdefault("t", time.time())
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def replay(self) -> JournalState:
        """Fold the journal (if any) into the job's durable state."""
        state = JournalState()
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return state
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                # A crash mid-append leaves at most one truncated final
                # line; everything after it cannot exist.
                break
            if not isinstance(event, dict):
                continue
            state.events.append(event)
            kind = event.get("event")
            digest = event.get("unit")
            if kind == "start" and isinstance(digest, str):
                state.attempts[digest] = state.attempts.get(digest, 0) + 1
            elif kind == "done" and isinstance(digest, str):
                state.done[digest] = float(event.get("elapsed", 0.0))  # type: ignore[arg-type]
                state.failed.pop(digest, None)
            elif kind == "cached" and isinstance(digest, str):
                state.cached.append(digest)
            elif kind == "failed" and isinstance(digest, str):
                if event.get("permanent"):
                    state.failed[digest] = str(event.get("error", "unknown error"))
            elif kind == "fallback":
                state.last_fallback = str(event.get("error", "unknown error"))
        return state
