"""Job status: replayed journals rendered for the ``status`` verb.

Pure functions from a service root to data/strings -- printing is the
CLI's job (:mod:`repro.serve.__main__`), keeping this module importable
from library code and tests.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .journal import Journal
from .store import ResultStore, StoredPoint


@dataclass
class JobStatus:
    """Durable state of one submitted job, from its journal."""

    job_id: str
    figure: str
    units: int
    done: int
    cached: int
    failed: int
    attempts: int
    state: str  # "complete" | "interrupted" | "empty"
    last_event_age: Optional[float] = None
    last_fallback: Optional[str] = None
    failures: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "job": self.job_id,
            "figure": self.figure,
            "units": self.units,
            "done": self.done,
            "cached": self.cached,
            "failed": self.failed,
            "attempts": self.attempts,
            "state": self.state,
            "last_event_age": self.last_event_age,
            "last_fallback": self.last_fallback,
            "failures": dict(self.failures),
        }

    def line(self) -> str:
        parts = [
            f"{self.job_id:40s} {self.state:12s}",
            f"{self.done}/{self.units} done",
            f"{self.cached} cached",
            f"{self.failed} failed",
            f"{self.attempts} attempts",
        ]
        if self.last_fallback:
            parts.append(f"fallback: {self.last_fallback}")
        return "  ".join(parts)


def job_statuses(root: Union[str, Path]) -> List[JobStatus]:
    """One :class:`JobStatus` per job directory under ``<root>/jobs``."""
    jobs_dir = Path(root) / "jobs"
    statuses: List[JobStatus] = []
    if not jobs_dir.is_dir():
        return statuses
    now = time.time()
    for job_dir in sorted(jobs_dir.iterdir()):
        if not job_dir.is_dir():
            continue
        figure = "?"
        units = 0
        manifest_path = job_dir / "manifest.json"
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
                figure = str(manifest.get("figure", "?"))
                units = (
                    len(manifest.get("routings", []))
                    * len(manifest.get("patterns", []))
                    * len(manifest.get("loads", []))
                    * len(manifest.get("seeds", []))
                )
            except (OSError, json.JSONDecodeError):
                pass
        state = Journal(job_dir / "journal.jsonl").replay()
        declared = [
            e for e in state.events if e.get("event") == "job"
        ]
        if declared:
            figure = str(declared[-1].get("figure", figure))
            units = int(declared[-1].get("units", units))  # type: ignore[arg-type]
        last_age: Optional[float] = None
        if state.events:
            try:
                last_age = max(0.0, now - float(state.events[-1]["t"]))  # type: ignore[arg-type]
            except (KeyError, TypeError, ValueError):
                last_age = None
        statuses.append(
            JobStatus(
                job_id=job_dir.name,
                figure=figure,
                units=units,
                done=len(state.done) + len(state.cached),
                cached=len(state.cached),
                failed=len(state.failed),
                attempts=sum(state.attempts.values()),
                state=(
                    "complete" if state.complete
                    else "interrupted" if state.events
                    else "empty"
                ),
                last_event_age=last_age,
                last_fallback=state.last_fallback,
                failures=dict(state.failed),
            )
        )
    return statuses


def render_statuses(statuses: List[JobStatus]) -> str:
    if not statuses:
        return "no jobs submitted"
    lines = [status.line() for status in statuses]
    return "\n".join(lines)


def render_query_rows(points: List[StoredPoint]) -> str:
    """Aligned text table of query results."""
    if not points:
        return "no matching points"
    header = (
        f"{'figure(s)':20s} {'routing':12s} {'pattern':14s} "
        f"{'load':>6s} {'seed':>6s} {'latency':>9s} {'accepted':>9s} "
        f"{'engine':16s} digest"
    )
    lines = [header]
    for point in points:
        latency = (
            "inf" if math.isinf(point.avg_latency) else f"{point.avg_latency:.3f}"
        )
        engine = (
            point.backend
            if point.kernel in ("none", "unknown")
            else f"{point.backend}/{point.kernel}"
        )
        lines.append(
            f"{','.join(point.figures):20s} {point.routing:12s} "
            f"{point.pattern:14s} {point.load:6.3f} {point.seed:6d} "
            f"{latency:>9s} {point.accepted_load:9.3f} {engine:16s} "
            f"{point.digest[:16]}"
        )
    return "\n".join(lines)


def store_summary(root: Union[str, Path]) -> Dict[str, object]:
    """Root-level summary for ``status``: store size + per-figure counts."""
    store = ResultStore(Path(root) / "store")
    return {
        "points": len(store),
        "figures": store.figures(),
    }
