"""Library client: the sweep service as a drop-in ``SweepExecutor``.

:class:`ServiceExecutor` keeps the :class:`~repro.network.parallel.SweepExecutor`
interface (``run_point``/``run_points``/``stats``) but routes execution
through the service scheduler and result store, which buys every
caller -- ``load_sweep``, ``saturation_load``, ``replicate``, the
``repro.experiments`` figure runners, the benchmarks -- journaled,
resumable, store-backed sweeps with no code changes.

Setting ``REPRO_SWEEP_SERVICE`` to a service root directory makes
:func:`repro.experiments.base.experiment_executor` return one of these,
so ``python -m repro.experiments fig09`` transparently becomes a
service client: previously computed figure data is served from the
store with zero ``run_point`` calls, fresh points are journaled as they
land, and a killed run resumes where it stopped.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..network.cache import key_digest, point_key
from ..network.parallel import PointSpec, SweepExecutor
from ..network.stats import SimulationResult
from .manifest import WorkUnit
from .scheduler import JobProgress, SchedulerOptions, SweepScheduler
from .store import ResultStore

#: Environment variable naming the service root directory; when set,
#: :func:`repro.experiments.base.experiment_executor` returns a
#: :class:`ServiceExecutor` rooted there.
SERVICE_ENV_VAR = "REPRO_SWEEP_SERVICE"


def service_root_from_env() -> Optional[Path]:
    """The service root from ``REPRO_SWEEP_SERVICE``, or ``None``.

    Raises :class:`ValueError` naming the variable when it points at an
    existing path that is not a directory -- a service rooted at a
    regular file could never store anything.
    """
    raw = os.environ.get(SERVICE_ENV_VAR, "").strip()
    if not raw:
        return None
    path = Path(raw)
    if path.exists() and not path.is_dir():
        raise ValueError(
            f"{SERVICE_ENV_VAR} must name a directory (created on "
            f"demand), but {raw!r} exists and is not one"
        )
    return path


def executor_from_env() -> Optional["ServiceExecutor"]:
    """A :class:`ServiceExecutor` when ``REPRO_SWEEP_SERVICE`` is set.

    Worker count and fault-tolerance knobs come from the same
    environment family the CLI uses (``REPRO_SWEEP_WORKERS``,
    ``REPRO_SWEEP_SERVICE_TIMEOUT``, ``REPRO_SWEEP_SERVICE_RETRIES``,
    ``REPRO_SWEEP_SERVICE_HEARTBEAT``).
    """
    root = service_root_from_env()
    if root is None:
        return None
    return ServiceExecutor(root, options=SchedulerOptions.from_env())


class ServiceExecutor(SweepExecutor):
    """A ``SweepExecutor`` whose backend is the sweep service."""

    def __init__(
        self,
        root: Union[str, Path],
        options: Optional[SchedulerOptions] = None,
        figure: str = "adhoc",
        on_progress: Optional[Callable[[JobProgress], None]] = None,
    ) -> None:
        self.root = Path(root)
        self.options = options or SchedulerOptions()
        self.figure = figure
        self.on_progress = on_progress
        self.store = ResultStore(self.root / "store")
        # The store's point records double as the executor's cache, so
        # cache counters (hits/misses/invalidations) keep reporting.
        super().__init__(workers=self.options.workers, cache=self.store.cache)

    def run_points(
        self, topology, specs: Sequence[PointSpec]
    ) -> List[SimulationResult]:
        """Answer a batch through the store + journaled scheduler.

        Each batch becomes one ad-hoc job (its identity is the digest of
        its unit digests) under ``<root>/jobs/``, so interrupted figure
        runs resume and ``status`` can narrate them like any submitted
        manifest.
        """
        units: List[WorkUnit] = []
        for index, spec in enumerate(specs):
            key = point_key(
                topology, spec.routing_name, spec.pattern_name, spec.config
            )
            units.append(
                WorkUnit(
                    index=index, digest=key_digest(key), key=key, spec=spec
                )
            )
        batch_digest = key_digest({"units": [unit.digest for unit in units]})
        job_dir = self.root / "jobs" / f"{self.figure}-{batch_digest[:16]}"
        scheduler = SweepScheduler(
            store=self.store,
            topology=topology,
            units=units,
            job_dir=job_dir,
            options=self.options,
            figure=self.figure,
        )
        report = scheduler.run(on_progress=self.on_progress)
        self.stats["cached"] += report.progress.cached
        self.stats["simulated"] += report.progress.simulated
        if report.fallback_error is not None:
            self.stats["fallbacks"] += 1
            self.last_fallback_error = report.fallback_error
        return report.ordered_results(len(specs))

    def query(self, **filters) -> List:
        """Convenience pass-through to :meth:`ResultStore.query`."""
        return self.store.query(**filters)

    def summary_line(self) -> str:
        return f"service {self.root}: " + super().summary_line()


#: Flat map of every environment knob the service family honours, for
#: documentation and the ``status`` verb's environment report.
SERVICE_ENV_KNOBS: Dict[str, str] = {
    SERVICE_ENV_VAR: "service root directory (enables the service client)",
    "REPRO_SWEEP_WORKERS": "worker processes (1, N, or 0/'auto')",
    "REPRO_SWEEP_SERVICE_TIMEOUT": "per-unit timeout in seconds",
    "REPRO_SWEEP_SERVICE_RETRIES": "max attempts per unit",
    "REPRO_SWEEP_SERVICE_HEARTBEAT": "worker heartbeat interval in seconds",
}
