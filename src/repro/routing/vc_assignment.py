"""Deadlock-free virtual-channel assignment (Figure 7).

Routing deadlock is avoided by indexing VCs along the route so the VC
number never decreases and strictly increases every time a packet
re-enters the class of channels it used before.  Two VCs suffice for
minimal routing and three for non-minimal routing.

The assignment is chosen so that the *first local hop* of a minimal route
(VC1) differs from the first local hop of a non-minimal route (VC0) --
exactly the property UGAL-L_VC exploits: at the source router the
occupancy of VC1 on a shared output port reflects minimal traffic and the
occupancy of VC0 reflects non-minimal traffic
(``q_m^vc = q(VC1)``, ``q_nm^vc = q(VC0)``, Section 4.3.1).

Stages and VCs::

    minimal      local(Gs)=1   global=1                local(Gd)=2
    non-minimal  local(Gs)=0   global=0   local(Gi)=1   global=1   local(Gd)=2
"""

from __future__ import annotations

from typing import List, Tuple

import networkx as nx

#: Number of VCs required for deadlock freedom with non-minimal routing.
NUM_VCS_REQUIRED = 3
#: VC of the first local hop (and the global hop) of a minimal route.
MINIMAL_FIRST_VC = 1
#: VC of the first local hop (and first global hop) of a Valiant route.
NONMINIMAL_FIRST_VC = 0
#: VC of local hops inside the destination group.
FINAL_LOCAL_VC = 2
#: VC of hops inside the intermediate group (and the second global hop).
INTERMEDIATE_VC = 1


def local_vc(minimal: bool, global_hops_taken: int) -> int:
    """VC for a local-channel hop at the given route progress."""
    if minimal:
        return MINIMAL_FIRST_VC if global_hops_taken == 0 else FINAL_LOCAL_VC
    if global_hops_taken == 0:
        return NONMINIMAL_FIRST_VC
    if global_hops_taken == 1:
        return INTERMEDIATE_VC
    return FINAL_LOCAL_VC


def global_vc(minimal: bool, global_hops_taken: int) -> int:
    """VC for a global-channel hop at the given route progress."""
    if minimal:
        return MINIMAL_FIRST_VC
    return NONMINIMAL_FIRST_VC if global_hops_taken == 0 else INTERMEDIATE_VC


def vc_sequences() -> List[List[Tuple[str, int]]]:
    """All (channel-class, VC) sequences routes can produce.

    Used by the deadlock property test: every realisable route is a
    subsequence of one of these full-length sequences (hops are skipped
    when the packet is already at the right router).
    """
    minimal = [("local", 1), ("global", 1), ("local", 2)]
    nonminimal = [
        ("local", 0),
        ("global", 0),
        ("local", 1),
        ("global", 1),
        ("local", 2),
    ]
    return [minimal, nonminimal]


def channel_dependency_graph() -> nx.DiGraph:
    """Abstract channel-class dependency graph of the VC assignment.

    Nodes are (channel-class, VC) pairs; an edge A -> B means some route
    holds a buffer of class A while requesting one of class B.  Deadlock
    freedom of the assignment (over *any* dragonfly, since local and
    global channels of the same class are interchangeable at this
    abstraction) is equivalent to this graph being acyclic -- asserted by
    ``tests/routing/test_vc_assignment.py``.
    """
    graph = nx.DiGraph()
    for sequence in vc_sequences():
        # Any contiguous *subsequence* is realisable (hops may be skipped),
        # so add edges between every ordered pair, not just adjacent hops.
        for i in range(len(sequence)):
            for j in range(i + 1, len(sequence)):
                graph.add_edge(sequence[i], sequence[j])
    return graph


def is_deadlock_free() -> bool:
    """True when the channel-class dependency graph is acyclic."""
    return nx.is_directed_acyclic_graph(channel_dependency_graph())
