"""Deadlock-free virtual-channel assignment (Figure 7).

Routing deadlock is avoided by indexing VCs along the route so the VC
number never decreases and strictly increases every time a packet
re-enters the class of channels it used before.  Two VCs suffice for
minimal routing and three for non-minimal routing.

The assignment is chosen so that the *first local hop* of a minimal route
(VC1) differs from the first local hop of a non-minimal route (VC0) --
exactly the property UGAL-L_VC exploits: at the source router the
occupancy of VC1 on a shared output port reflects minimal traffic and the
occupancy of VC0 reflects non-minimal traffic
(``q_m^vc = q(VC1)``, ``q_nm^vc = q(VC0)``, Section 4.3.1).

Stages and VCs::

    minimal      local(Gs)=1   global=1                local(Gd)=2
    non-minimal  local(Gs)=0   global=0   local(Gi)=1   global=1   local(Gd)=2

Assignments are first-class :class:`VcAssignment` values so that the
static certifier in :mod:`repro.check.cdg` can enumerate the concrete
channel-dependency graph a candidate assignment induces on a real
topology and prove (or refute) its deadlock freedom.  The module-level
constants and functions describe the canonical Figure 7 assignment and
are kept for the routing executors' hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import networkx as nx

#: Number of VCs required for deadlock freedom with non-minimal routing.
NUM_VCS_REQUIRED = 3
#: VC of the first local hop (and the global hop) of a minimal route.
MINIMAL_FIRST_VC = 1
#: VC of the first local hop (and first global hop) of a Valiant route.
NONMINIMAL_FIRST_VC = 0
#: VC of local hops inside the destination group.
FINAL_LOCAL_VC = 2
#: VC of hops inside the intermediate group (and the second global hop).
INTERMEDIATE_VC = 1


@dataclass(frozen=True)
class VcAssignment:
    """A dragonfly VC assignment as data.

    The assignment is fully determined by four VC indices -- one per
    route stage of Figure 7 -- plus whether non-minimal routes are
    admitted at all.  The canonical paper assignment is
    :data:`CANONICAL`; :data:`MINIMAL_TWO_VC` is the two-VC assignment
    that is deadlock-free when only minimal routes exist, and
    :data:`COLLAPSED_TWO_VC` is a deliberately broken two-VC assignment
    (non-minimal stages collapsed onto two VCs) kept as the certifier's
    negative control: its channel-dependency graph is cyclic.
    """

    name: str
    num_vcs: int
    #: VC of the first local hop and the (first) global hop of a minimal
    #: route.
    minimal_first_vc: int
    #: VC of the first local hop and first global hop of a Valiant route.
    nonminimal_first_vc: int
    #: VC of intermediate-group local hops and the second global hop.
    intermediate_vc: int
    #: VC of local hops inside the destination group.
    final_local_vc: int
    #: Whether non-minimal (Valiant/UGAL) routes are part of the route
    #: class this assignment serves.
    supports_nonminimal: bool = True

    def __post_init__(self) -> None:
        vcs = (
            self.minimal_first_vc,
            self.nonminimal_first_vc,
            self.intermediate_vc,
            self.final_local_vc,
        )
        if any(vc < 0 or vc >= self.num_vcs for vc in vcs):
            raise ValueError(
                f"assignment {self.name!r} uses VCs outside [0, {self.num_vcs})"
            )

    # -- per-hop queries (mirrors of the module-level functions) --------
    def local_vc(self, minimal: bool, global_hops_taken: int) -> int:
        """VC for a local-channel hop at the given route progress."""
        if minimal:
            return (
                self.minimal_first_vc
                if global_hops_taken == 0
                else self.final_local_vc
            )
        if global_hops_taken == 0:
            return self.nonminimal_first_vc
        if global_hops_taken == 1:
            return self.intermediate_vc
        return self.final_local_vc

    def global_vc(self, minimal: bool, global_hops_taken: int) -> int:
        """VC for a global-channel hop at the given route progress."""
        if minimal:
            return self.minimal_first_vc
        return (
            self.nonminimal_first_vc
            if global_hops_taken == 0
            else self.intermediate_vc
        )

    # -- abstract channel-class analysis --------------------------------
    def vc_sequences(self) -> List[List[Tuple[str, int]]]:
        """All (channel-class, VC) sequences routes can produce.

        Every realisable route is a subsequence of one of these
        full-length sequences (hops are skipped when the packet is
        already at the right router).
        """
        minimal = [
            ("local", self.minimal_first_vc),
            ("global", self.minimal_first_vc),
            ("local", self.final_local_vc),
        ]
        if not self.supports_nonminimal:
            return [minimal]
        nonminimal = [
            ("local", self.nonminimal_first_vc),
            ("global", self.nonminimal_first_vc),
            ("local", self.intermediate_vc),
            ("global", self.intermediate_vc),
            ("local", self.final_local_vc),
        ]
        return [minimal, nonminimal]

    def channel_dependency_graph(self) -> nx.DiGraph:
        """Abstract channel-class dependency graph of the assignment.

        Nodes are (channel-class, VC) pairs; an edge A -> B means some
        route holds a buffer of class A while requesting one of class B.
        Deadlock freedom of the assignment (over *any* dragonfly, since
        local and global channels of the same class are interchangeable
        at this abstraction) is equivalent to this graph being acyclic.
        The concrete per-channel proof lives in :mod:`repro.check.cdg`.
        """
        graph = nx.DiGraph()
        for sequence in self.vc_sequences():
            # Any contiguous *subsequence* is realisable (hops may be
            # skipped), so add edges between every ordered pair, not just
            # adjacent hops.
            # A stage revisiting an earlier (class, VC) pair produces a
            # self-loop, which networkx counts as a cycle -- exactly right.
            for i in range(len(sequence)):
                for j in range(i + 1, len(sequence)):
                    graph.add_edge(sequence[i], sequence[j])
        return graph

    def is_deadlock_free(self) -> bool:
        """True when the abstract channel-class graph is acyclic."""
        return nx.is_directed_acyclic_graph(self.channel_dependency_graph())


#: The canonical Figure 7 assignment: 3 VCs, non-minimal admitted.
CANONICAL = VcAssignment(
    name="figure7-3vc",
    num_vcs=NUM_VCS_REQUIRED,
    minimal_first_vc=MINIMAL_FIRST_VC,
    nonminimal_first_vc=NONMINIMAL_FIRST_VC,
    intermediate_vc=INTERMEDIATE_VC,
    final_local_vc=FINAL_LOCAL_VC,
)

#: Two VCs suffice when only minimal routes exist: the VC index strictly
#: increases from the source-group stage to the destination-group stage.
MINIMAL_TWO_VC = VcAssignment(
    name="minimal-2vc",
    num_vcs=2,
    minimal_first_vc=0,
    nonminimal_first_vc=0,
    intermediate_vc=0,
    final_local_vc=1,
    supports_nonminimal=False,
)

#: Negative control: the 3-VC non-minimal assignment naively collapsed
#: onto 2 VCs (``vc -> min(vc, 1)``).  The destination-group local stage
#: then shares VC1 with the source-group stage of minimal routes, closing
#: a cycle local -> global -> local -> global -> local across any pair of
#: groups.  The certifier must *refute* this assignment with a concrete
#: counterexample cycle.
COLLAPSED_TWO_VC = VcAssignment(
    name="collapsed-2vc",
    num_vcs=2,
    minimal_first_vc=1,
    nonminimal_first_vc=0,
    intermediate_vc=1,
    final_local_vc=1,
)

#: Negative control for the *degraded-family* certifier: a detour route
#: class deliberately allowed to reuse its injection VC -- the
#: destination-group local stage is pushed back down to VC0, the VC the
#: detour's source-group local stage injects on.  Three detour-rerouted
#: group pairs arranged in a ring (with distinct mid groups at every
#: junction) then close a concrete cycle local@0 -> global@0 -> local@1
#: -> global@1 -> local@0, and the symbolic class graph closes the same
#: cycle because the merged VC0 local class feeds the detour's first
#: stage.  Both the symbolic certifier (FLT codes) and the concrete
#: table-CDG verifier (TBL001) must *refute* this assignment on a
#: degraded fabric.
DETOUR_VC_REUSE = VcAssignment(
    name="detour-vc-reuse",
    num_vcs=NUM_VCS_REQUIRED,
    minimal_first_vc=MINIMAL_FIRST_VC,
    nonminimal_first_vc=NONMINIMAL_FIRST_VC,
    intermediate_vc=INTERMEDIATE_VC,
    final_local_vc=NONMINIMAL_FIRST_VC,
)


def local_vc(minimal: bool, global_hops_taken: int) -> int:
    """VC for a local-channel hop at the given route progress."""
    return CANONICAL.local_vc(minimal, global_hops_taken)


def global_vc(minimal: bool, global_hops_taken: int) -> int:
    """VC for a global-channel hop at the given route progress."""
    return CANONICAL.global_vc(minimal, global_hops_taken)


def vc_sequences() -> List[List[Tuple[str, int]]]:
    """All (channel-class, VC) sequences of the canonical assignment."""
    return CANONICAL.vc_sequences()


def channel_dependency_graph() -> nx.DiGraph:
    """Abstract channel-class dependency graph of the canonical assignment."""
    return CANONICAL.channel_dependency_graph()


def is_deadlock_free() -> bool:
    """True when the canonical channel-class graph is acyclic."""
    return CANONICAL.is_deadlock_free()
