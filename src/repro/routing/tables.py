"""Forwarding-table compiler: routing families lowered to explicit tables.

At the machine scales of Table 2, routing is not deployed as code -- a
controller programs per-router forwarding/VC tables (the form the
InfiniBand dragonfly literature certifies).  This module lowers every
routing family of :mod:`repro.check.registry` into that form:

* a :class:`ForwardingTables` object maps, per router, a lookup key
  ``(dest_group, dest_router, in_vc)`` to one or more
  :class:`TableEntry` values ``(out_port, out_vc)``;
* routes are *programs over legs*: a :class:`Leg` names the table key a
  packet enters the network (or a Valiant phase) with, and the table is
  followed by threading -- each hop's ``out_vc`` is the next router's
  ``in_vc`` (a ``next_vc`` override covers the torus dateline reset);
* when one key has several candidate entries (several global links
  between a group pair, several Clos up ports), entries carry a ``via``
  tag and the leg says which tags its route committed to;
* :class:`TableDrivenRouting` executes compiled dragonfly tables behind
  the simulator's ``next_hop`` interface, hop-identical to the
  algorithmic executor in :mod:`repro.routing.paths`;
* :func:`compile_dragonfly_tables` accepts a
  :class:`~repro.topology.faults.FaultSet` and recompiles around dead
  links and routers (detour via a third group when a group pair loses
  all its global links, local repair hops inside broken groups).

The static verifier over this form lives in :mod:`repro.check.tables`;
the versioned JSON export (:meth:`ForwardingTables.dump` /
:meth:`ForwardingTables.load`) is what a controller pipeline would ship.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Tuple,
)

from ..network.packet import RoutePlan
from ..topology.dragonfly import Dragonfly, GlobalLink
from ..topology.faults import FaultSet, NO_FAULTS
from ..topology.flattened_butterfly import FlattenedButterfly
from ..topology.folded_clos import FoldedClos
from ..topology.group_variants import FlattenedButterflyGroupDragonfly
from ..topology.torus import Torus
from . import clos_routing, fb_paths, paths, torus_routing, variant_paths
from . import vc_assignment as vcs
from .base import CongestionView, RoutingAlgorithm
from .grammar import PathGrammar

#: Version of the JSON table format; bumped on incompatible change.
SCHEMA_VERSION = 1

#: Lookup key: (dest_group, dest_router, in_vc).  Families without a
#: group level (flattened butterfly, torus, folded Clos) use group 0.
TableKey = Tuple[int, int, int]

#: Discriminator for keys with several candidate entries:
#: ``("link", src_router, src_port)`` names a global link,
#: ``("up", level, port)`` a folded-Clos up-port choice.
ViaTag = Tuple[Any, ...]


class TableCompileError(Exception):
    """The configuration cannot be lowered to consistent tables."""


class TableRouteError(Exception):
    """A table walk failed: missing key, ambiguous entry, or a loop."""


def group_link_matrix(
    topology: Dragonfly,
) -> Optional[List[List[Optional[GlobalLink]]]]:
    """``g x g`` matrix of the unique global link per ordered group pair.

    Returns ``None`` when any distinct pair has zero or multiple links
    (then the per-pair route is not a pure function of the pair and the
    callers -- the decide kernel's dense-table lowering -- must fall
    back).  The diagonal is ``None``; groups never link to themselves.
    """
    g = topology.g
    matrix: List[List[Optional[GlobalLink]]] = [[None] * g for _ in range(g)]
    for src_group in range(g):
        for dst_group in range(g):
            if src_group == dst_group:
                continue
            links = topology.group_links(src_group, dst_group)
            if len(links) != 1:
                return None
            matrix[src_group][dst_group] = links[0]
    return matrix


def link_tag(link: GlobalLink) -> ViaTag:
    """The via tag of a global link (its source endpoint is unique)."""
    return ("link", link.src_router, link.src_port)


@dataclass(frozen=True)
class TableEntry:
    """One forwarding decision: output port and VC for a lookup key.

    ``next_vc`` overrides the in-VC the packet presents at the next
    router (default: ``out_vc``); only the torus dateline reset needs
    it.  ``via`` tags the route choice this entry belongs to when its
    key has several candidates.
    """

    out_port: int
    out_vc: int
    next_vc: Optional[int] = None
    via: Optional[ViaTag] = None

    @property
    def in_vc_at_next(self) -> int:
        return self.out_vc if self.next_vc is None else self.next_vc


@dataclass(frozen=True)
class Leg:
    """One stage of a table-routed journey.

    A packet (or Valiant phase) enters the tables with key
    ``(target_group, target_router, entry_vc)`` and follows threading
    until it stands on ``target_router``.  ``via`` restricts candidate
    entries to the tags the route committed to at decision time.
    """

    target_group: int
    target_router: int
    entry_vc: int
    via: Optional[FrozenSet[ViaTag]] = None


@dataclass(frozen=True)
class RouteCase:
    """One enumerable route: its leg program and the algorithmic trace.

    ``algorithmic`` is the (router, out_port, out_vc) trace the family's
    executor produces for the same decision, ending with the ejection
    hop -- ``None`` for fault-degraded configurations, which have no
    algorithmic counterpart.
    """

    label: str
    src_router: int
    dst_terminal: int
    legs: Tuple[Leg, ...]
    algorithmic: Optional[Tuple[Tuple[int, int, int], ...]] = None


class ForwardingTables:
    """Compiled per-router forwarding tables with a versioned export.

    ``routers[r]`` maps a :data:`TableKey` to the candidate entries for
    that key, keyed by via tag (``None`` for single-candidate keys).
    ``meta`` carries verifier-relevant compile provenance: the Valiant
    flip parameters (which VCs can start a new leg where) and, for
    degraded tables, the chosen detours.
    """

    def __init__(
        self,
        name: str,
        family: str,
        num_vcs: int,
        num_routers: int,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.family = family
        self.num_vcs = num_vcs
        self.num_routers = num_routers
        self.meta: Dict[str, Any] = meta or {}
        self.routers: Dict[int, Dict[TableKey, Dict[Optional[ViaTag], TableEntry]]] = {}

    # -- construction ---------------------------------------------------
    def add(self, router: int, key: TableKey, entry: TableEntry) -> None:
        """Add an entry; duplicates collapse, contradictions raise.

        Two entries for the same (router, key, via) must agree exactly
        -- a disagreement means two route stages demand different
        behaviour from one table slot, i.e. the family is not lowerable
        with this key structure.
        """
        if entry.out_vc >= self.num_vcs or (
            entry.next_vc is not None and entry.next_vc >= self.num_vcs
        ):
            raise TableCompileError(
                f"entry {entry} at router {router} key {key} exceeds "
                f"the {self.num_vcs}-VC budget of {self.name}"
            )
        slots = self.routers.setdefault(router, {}).setdefault(key, {})
        existing = slots.get(entry.via)
        if existing is None:
            slots[entry.via] = entry
        elif existing != entry:
            raise TableCompileError(
                f"conflicting entries at router {router} key {key} "
                f"via {entry.via}: {existing} vs {entry}"
            )

    def replace(self, router: int, key: TableKey, entry: TableEntry) -> None:
        """Overwrite the (router, key, via) slot (fault-repair pass)."""
        self.routers[router][key][entry.via] = entry

    # -- queries --------------------------------------------------------
    def candidates(self, router: int, key: TableKey) -> Tuple[TableEntry, ...]:
        slots = self.routers.get(router, {}).get(key)
        if not slots:
            return ()
        return tuple(
            slots[tag] for tag in sorted(slots, key=lambda t: (t is not None, t))
        )

    def lookup(
        self,
        router: int,
        key: TableKey,
        via: Optional[AbstractSet[ViaTag]] = None,
    ) -> TableEntry:
        """Resolve the entry a packet with this key takes at ``router``.

        Single-candidate keys resolve unconditionally; multi-candidate
        keys need the leg's ``via`` set to select exactly one entry.
        """
        entries = self.candidates(router, key)
        if not entries:
            raise TableRouteError(
                f"router {router} has no entry for key {key} in {self.name}"
            )
        if len(entries) == 1:
            return entries[0]
        if via:
            matched = [e for e in entries if e.via in via]
            if matched and all(e == matched[0] for e in matched):
                return matched[0]
        raise TableRouteError(
            f"router {router} key {key}: {len(entries)} candidates, "
            f"via {sorted(via) if via else None} does not select one"
        )

    def entries(self) -> Iterator[Tuple[int, TableKey, TableEntry]]:
        """All (router, key, entry) triples in deterministic order."""
        for router in sorted(self.routers):
            table = self.routers[router]
            for key in sorted(table):
                for entry in self.candidates(router, key):
                    yield router, key, entry

    def num_entries(self) -> int:
        return sum(1 for _ in self.entries())

    # -- serialisation --------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        routers: Dict[str, Dict[str, List[List[Any]]]] = {}
        for router in sorted(self.routers):
            table: Dict[str, List[List[Any]]] = {}
            for key in sorted(self.routers[router]):
                table["/".join(str(part) for part in key)] = [
                    [
                        e.out_port,
                        e.out_vc,
                        e.next_vc,
                        list(e.via) if e.via is not None else None,
                    ]
                    for e in self.candidates(router, key)
                ]
            routers[str(router)] = table
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "family": self.family,
            "num_vcs": self.num_vcs,
            "num_routers": self.num_routers,
            "meta": self.meta,
            "routers": routers,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "ForwardingTables":
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise TableCompileError(
                f"unsupported table schema version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        tables = cls(
            name=data["name"],
            family=data["family"],
            num_vcs=data["num_vcs"],
            num_routers=data["num_routers"],
            meta=dict(data.get("meta", {})),
        )
        for router_text, table in data["routers"].items():
            router = int(router_text)
            for key_text, raw_entries in table.items():
                g, r, vc = (int(part) for part in key_text.split("/"))
                for out_port, out_vc, next_vc, via in raw_entries:
                    tables.add(
                        router,
                        (g, r, vc),
                        TableEntry(
                            out_port=out_port,
                            out_vc=out_vc,
                            next_vc=next_vc,
                            via=tuple(via) if via is not None else None,
                        ),
                    )
        return tables

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "ForwardingTables":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json_dict(json.load(handle))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ForwardingTables):
            return NotImplemented
        return self.to_json_dict() == other.to_json_dict()

    def describe(self) -> str:
        return (
            f"{self.name}: {self.num_entries()} entries over "
            f"{len(self.routers)} routers, {self.num_vcs} VCs"
        )


def table_walk_route(
    topology: Any,
    tables: ForwardingTables,
    src_router: int,
    dst_terminal: int,
    legs: Tuple[Leg, ...],
) -> List[Tuple[int, int, int]]:
    """Execute a leg program over compiled tables.

    Returns the (router, out_port, out_vc) trace ending with the
    ejection hop -- the same shape as the algorithmic ``walk_route``
    functions, which is what makes the two executors comparable hop by
    hop.  Raises :class:`TableRouteError` on a missing or ambiguous
    entry or when the walk exceeds the loop bound.
    """
    fabric = topology.fabric
    trace: List[Tuple[int, int, int]] = []
    router = src_router
    bound = 4 * tables.num_routers + 16
    steps = 0
    for leg in legs:
        in_vc = leg.entry_vc
        while router != leg.target_router:
            entry = tables.lookup(
                router, (leg.target_group, leg.target_router, in_vc), leg.via
            )
            trace.append((router, entry.out_port, entry.out_vc))
            channel = fabric.out_channel(router, entry.out_port)
            if channel is None:
                raise TableRouteError(
                    f"entry {entry} at router {router} points at an "
                    f"unwired port in {tables.name}"
                )
            router = channel.dst.router
            in_vc = entry.in_vc_at_next
            steps += 1
            if steps > bound:
                raise TableRouteError(
                    f"table walk from router {src_router} to terminal "
                    f"{dst_terminal} exceeded {bound} hops (routing loop) "
                    f"in {tables.name}"
                )
    trace.append((router, topology.terminal_port(dst_terminal), 0))
    return trace


# ----------------------------------------------------------------------
# Grouped families: dragonfly and the Figure 6 flattened-butterfly-group
# variant share the compiler; only the intra-group step function differs
# (direct local channel vs the first hop of a dimension-order walk).
# ----------------------------------------------------------------------
def _grouped_flip_meta(assignment: vcs.VcAssignment) -> Dict[str, Any]:
    """Valiant flip parameters for the table-level CDG (see check.tables).

    After the first global hop of a non-minimal route (key VC
    ``nonminimal_first_vc``), the packet abandons its phase-0 key and
    re-enters the tables with the destination leg's key (entry VC
    ``intermediate_vc``, destination group necessarily different from
    the landing group).  The verifier adds dependency edges for exactly
    these leg boundaries.
    """
    return {
        "source_vcs": [assignment.nonminimal_first_vc],
        "entry_vc": assignment.intermediate_vc,
        "global_only": True,
        "grouped": True,
    }


def _compile_grouped(
    topology: Any,
    assignment: vcs.VcAssignment,
    include_nonminimal: bool,
    local_toward: Callable[[int, int], int],
    family: str,
    name: str,
) -> ForwardingTables:
    """Lower dragonfly-style routing (Section 4.1) onto tables.

    Entry kinds, mirroring the algorithmic executor's stages:

    * destination-group entries: key ``(G, R, vc)`` at every other
      router of ``G`` steps toward ``R`` on the final-local VC, for
      ``vc`` in {final, minimal-first, intermediate} (the latter two are
      the global-hop landing VCs of minimal and Valiant routes);
    * minimal-stage entries: at every router of every other group ``S``,
      key ``(G, R, minimal_first)`` steps toward (then across) each
      global link ``S -> G``, tagged with the link's via;
    * the same per-link entries on the intermediate VC serve the
      Valiant route's second phase;
    * phase-0 entries: key ``(M, link.dst_router, nonminimal_first)``
      steps toward (then across) each global link ``S -> M`` -- the
      Valiant first phase targets the link's landing router.

    Keys sharing a VC between stages (e.g. the canonical assignment's
    ``minimal_first == intermediate``) produce *identical* entries and
    collapse in :meth:`ForwardingTables.add`; a true contradiction
    raises :class:`TableCompileError`.
    """
    a, g = topology.a, topology.g
    nonmin = include_nonminimal and assignment.supports_nonminimal
    mf = assignment.minimal_first_vc
    nf = assignment.nonminimal_first_vc
    iv = assignment.intermediate_vc
    fv = assignment.final_local_vc
    meta = _grouped_flip_meta(assignment) if nonmin else {}
    tables = ForwardingTables(
        name=name,
        family=family,
        num_vcs=assignment.num_vcs,
        num_routers=topology.fabric.num_routers,
        meta={"flip": meta} if meta else {},
    )
    for dest_group in range(g):
        group_routers = range(dest_group * a, (dest_group + 1) * a)
        for dest in group_routers:
            landing_vcs = {fv, mf} | ({iv} if nonmin else set())
            for router in group_routers:
                if router == dest:
                    continue
                port = local_toward(router, dest)
                for vc in landing_vcs:
                    tables.add(router, (dest_group, dest, vc), TableEntry(port, fv))
            for src_group in range(g):
                if src_group == dest_group:
                    continue
                for link in topology.group_links(src_group, dest_group):
                    tag = link_tag(link)
                    stage_vcs = (mf, iv) if nonmin else (mf,)
                    for router in range(src_group * a, (src_group + 1) * a):
                        if router == link.src_router:
                            port = link.src_port
                        else:
                            port = local_toward(router, link.src_router)
                        for vc in stage_vcs:
                            tables.add(
                                router,
                                (dest_group, dest, vc),
                                TableEntry(port, vc, via=tag),
                            )
    if nonmin:
        for src_group in range(g):
            for mid_group in range(g):
                if mid_group == src_group:
                    continue
                for link in topology.group_links(src_group, mid_group):
                    tag = link_tag(link)
                    key = (mid_group, link.dst_router, nf)
                    for router in range(src_group * a, (src_group + 1) * a):
                        if router == link.src_router:
                            port = link.src_port
                        else:
                            port = local_toward(router, link.src_router)
                        tables.add(router, key, TableEntry(port, nf, via=tag))
    return tables


def _grouped_min_legs(
    topology: Any, assignment: vcs.VcAssignment, plan: RoutePlan, dest: int
) -> Tuple[Leg, ...]:
    dest_group = topology.group_of(dest)
    if plan.gc1 is None:
        return (Leg(dest_group, dest, assignment.final_local_vc),)
    return (
        Leg(
            dest_group,
            dest,
            assignment.minimal_first_vc,
            via=frozenset((link_tag(plan.gc1),)),
        ),
    )


def _grouped_valiant_legs(
    topology: Any, assignment: vcs.VcAssignment, plan: RoutePlan, dest: int
) -> Tuple[Leg, ...]:
    assert plan.gc1 is not None and plan.gc2 is not None
    mid = plan.gc1.dst_router
    return (
        Leg(
            topology.group_of(mid),
            mid,
            assignment.nonminimal_first_vc,
            via=frozenset((link_tag(plan.gc1),)),
        ),
        Leg(
            topology.group_of(dest),
            dest,
            assignment.intermediate_vc,
            via=frozenset((link_tag(plan.gc2),)),
        ),
    )


def compile_dragonfly_tables(
    topology: Dragonfly,
    assignment: vcs.VcAssignment = vcs.CANONICAL,
    include_nonminimal: bool = True,
    faults: FaultSet = NO_FAULTS,
    name: Optional[str] = None,
) -> ForwardingTables:
    """Compile dragonfly routing to tables, optionally around faults."""
    if faults:
        return _compile_degraded_dragonfly(
            topology, assignment, include_nonminimal, faults, name
        )
    return _compile_grouped(
        topology,
        assignment,
        include_nonminimal,
        topology.local_port,
        family="dragonfly",
        name=name or f"dragonfly@{assignment.name}",
    )


def compile_variant_tables(
    topology: FlattenedButterflyGroupDragonfly,
    assignment: vcs.VcAssignment = vcs.CANONICAL,
    include_nonminimal: bool = True,
    name: Optional[str] = None,
) -> ForwardingTables:
    """Compile Figure 6 group-variant routing to tables.

    Identical key structure to the dragonfly; the intra-group step is
    the first hop of the group's dimension-order walk, and threading
    (equal in/out VC within a stage) carries the walk to its target.
    """

    def local_toward(router: int, target: int) -> int:
        return variant_paths._dor_port(topology, router, target)

    return _compile_grouped(
        topology,
        assignment,
        include_nonminimal,
        local_toward,
        family="dragonfly-fbgroup",
        name=name or f"dragonfly-fbgroup@{assignment.name}",
    )


# ----------------------------------------------------------------------
# Fault-degraded dragonfly compilation
# ----------------------------------------------------------------------
def _detour_choice(
    topology: Dragonfly, faults: FaultSet, src_group: int, dest_group: int
) -> Tuple[int, GlobalLink, GlobalLink]:
    """Deterministic detour for a disconnected group pair.

    The smallest third group with surviving links both ways, using the
    first surviving link of each stage -- deterministic so exported
    tables, verifier legs, and re-compiles agree without coordination.
    """
    for mid_group in range(topology.g):
        if mid_group in (src_group, dest_group):
            continue
        first_leg = [
            link
            for link in topology.group_links(src_group, mid_group)
            if not faults.link_dead(link.src_router, link.dst_router)
        ]
        second_leg = [
            link
            for link in topology.group_links(mid_group, dest_group)
            if not faults.link_dead(link.src_router, link.dst_router)
        ]
        if first_leg and second_leg:
            return mid_group, first_leg[0], second_leg[0]
    raise TableCompileError(
        f"groups {src_group} and {dest_group} are disconnected even via "
        f"detours under faults ({faults.describe()})"
    )


def _compile_degraded_dragonfly(
    topology: Dragonfly,
    assignment: vcs.VcAssignment,
    include_nonminimal: bool,
    faults: FaultSet,
    name: Optional[str],
) -> ForwardingTables:
    """Minimal tables routing around a fault set.

    Degraded tables are compiled for minimal traffic only: Valiant's
    randomised phase has no business on a fabric the controller is
    actively routing around, and the three-stage VC ladder of the
    non-minimal assignment is repurposed for *detours* -- when a group
    pair loses every direct global link, routes take
    ``src group --(nonminimal_first)--> mid group --(intermediate)-->
    destination group --(final)``, exactly the published non-minimal VC
    grammar, so one certified assignment covers both healthy minimal
    routes and fault detours.

    Local faults inside a (no longer complete) group are handled by a
    repair pass: entries whose direct local channel died are repointed
    to the smallest surviving neighbour whose own tables continue the
    same key.
    """
    faults.validate(topology)
    if include_nonminimal:
        raise TableCompileError(
            "degraded tables are minimal-only: compile with "
            "include_nonminimal=False (the non-minimal VC ladder is "
            "reserved for fault detours)"
        )
    if not assignment.supports_nonminimal:
        raise TableCompileError(
            "fault detours need the non-minimal VC ladder; assignment "
            f"{assignment.name!r} does not provide one"
        )
    a, g = topology.a, topology.g
    mf = assignment.minimal_first_vc
    nf = assignment.nonminimal_first_vc
    iv = assignment.intermediate_vc
    fv = assignment.final_local_vc
    tables = ForwardingTables(
        name=name or f"dragonfly-degraded@{assignment.name}",
        family="dragonfly",
        num_vcs=assignment.num_vcs,
        num_routers=topology.fabric.num_routers,
        meta={"faults": faults.describe(), "detours": {}},
    )

    def alive(router: int) -> bool:
        return not faults.router_dead(router)

    def surviving_links(src_group: int, dest_group: int) -> List[GlobalLink]:
        return [
            link
            for link in topology.group_links(src_group, dest_group)
            if not faults.link_dead(link.src_router, link.dst_router)
        ]

    for dest_group in range(g):
        group_routers = [r for r in range(dest_group * a, (dest_group + 1) * a)]
        for dest in group_routers:
            if not alive(dest):
                continue
            # Destination-group entries (landing VCs: minimal landing on
            # mf, detour landing on iv, plus the final-local key).
            for router in group_routers:
                if router == dest or not alive(router):
                    continue
                port = topology.local_port(router, dest)
                for vc in {fv, mf, iv}:
                    tables.add(router, (dest_group, dest, vc), TableEntry(port, fv))
            for src_group in range(g):
                if src_group == dest_group:
                    continue
                links = surviving_links(src_group, dest_group)
                if links:
                    for link in links:
                        tag = link_tag(link)
                        for router in range(src_group * a, (src_group + 1) * a):
                            if not alive(router):
                                continue
                            if router == link.src_router:
                                port = link.src_port
                            else:
                                port = topology.local_port(router, link.src_router)
                            # mf carries direct minimal traffic; iv
                            # carries detour traffic for which this
                            # group is the mid (identical entries when
                            # the assignment shares the two VCs).
                            for vc in {mf, iv}:
                                tables.add(
                                    router,
                                    (dest_group, dest, vc),
                                    TableEntry(port, vc, via=tag),
                                )
                    continue
                # Disconnected pair: route via a detour group.
                mid_group, first, second = _detour_choice(
                    topology, faults, src_group, dest_group
                )
                tables.meta["detours"][f"{src_group}->{dest_group}"] = {
                    "mid_group": mid_group,
                    "first": list(link_tag(first)),
                    "second": list(link_tag(second)),
                }
                first_tag = link_tag(first)
                second_tag = link_tag(second)
                for router in range(src_group * a, (src_group + 1) * a):
                    if not alive(router):
                        continue
                    if router == first.src_router:
                        port = first.src_port
                    else:
                        port = topology.local_port(router, first.src_router)
                    tables.add(
                        router,
                        (dest_group, dest, nf),
                        TableEntry(port, nf, via=first_tag),
                    )
                for router in range(mid_group * a, (mid_group + 1) * a):
                    if not alive(router):
                        continue
                    if router == second.src_router:
                        port = second.src_port
                    else:
                        port = topology.local_port(router, second.src_router)
                    # The detour lands here on the phase-0 VC and climbs
                    # onto the intermediate VC for the second stage.
                    for vc in {nf, iv}:
                        tables.add(
                            router,
                            (dest_group, dest, vc),
                            TableEntry(port, iv, via=second_tag),
                        )
    _repair_local_entries(topology, tables, faults)
    return tables


def _repair_local_entries(
    topology: Dragonfly, tables: ForwardingTables, faults: FaultSet
) -> None:
    """Repoint entries whose direct local channel died.

    The replacement neighbour ``w`` must be reachable from the entry's
    router, still reach the original next router, and (by construction
    of the degraded compiler) hold entries for every key it may be
    handed -- its own table continues the walk.  Chains of repairs are
    allowed; a repair that closes a loop is *not* prevented here, it is
    the verifier's job to refute such a table set.
    """
    fabric = topology.fabric
    repairs: List[Tuple[int, TableKey, TableEntry, TableEntry]] = []
    for router, key, entry in tables.entries():
        channel = fabric.out_channel(router, entry.out_port)
        if channel is None:
            continue
        next_router = channel.dst.router
        if not faults.link_dead(router, next_router):
            continue
        group = topology.group_of(router)
        replacement = None
        for candidate in range(group * topology.a, (group + 1) * topology.a):
            if candidate in (router, next_router):
                continue
            if faults.link_dead(router, candidate):
                continue
            if faults.link_dead(candidate, next_router):
                continue
            replacement = candidate
            break
        if replacement is None:
            raise TableCompileError(
                f"router {router} cannot reach {next_router} under faults "
                f"({faults.describe()}): no surviving local relay"
            )
        repaired = TableEntry(
            out_port=topology.local_port(router, replacement),
            out_vc=entry.out_vc,
            next_vc=entry.next_vc,
            via=entry.via,
        )
        repairs.append((router, key, entry, repaired))
    for router, key, _old, new in repairs:
        tables.replace(router, key, new)


# ----------------------------------------------------------------------
# Flattened butterfly
# ----------------------------------------------------------------------
def compile_fb_tables(
    topology: FlattenedButterfly, name: Optional[str] = None
) -> ForwardingTables:
    """Compile DOR + router-Valiant flattened-butterfly routing.

    Keys ``(0, dest, phase)``: phase 0 serves both minimal traffic and
    the first Valiant leg, phase 1 the second leg; each entry corrects
    the first differing dimension on the phase's VC.
    """
    tables = ForwardingTables(
        name=name or "flattened-butterfly@phase-vcs",
        family="flattened-butterfly",
        num_vcs=2,
        num_routers=topology.num_routers,
        meta={"flip": {
            "source_vcs": [0],
            "entry_vc": 1,
            "global_only": False,
            "grouped": False,
        }},
    )
    for dest in range(topology.num_routers):
        dest_coords = topology.coords_of(dest)
        for router in range(topology.num_routers):
            if router == dest:
                continue
            coords = topology.coords_of(router)
            for dim, (coord, goal) in enumerate(zip(coords, dest_coords)):
                if coord != goal:
                    port = topology.dim_port(router, dim, goal)
                    break
            for phase in (0, 1):
                tables.add(router, (0, dest, phase), TableEntry(port, phase))
    return tables


def _fb_legs(
    topology: FlattenedButterfly, plan: fb_paths.FbRoutePlan, dest: int
) -> Tuple[Leg, ...]:
    if plan.minimal or plan.intermediate_router is None:
        return (Leg(0, dest, 0),)
    return (Leg(0, plan.intermediate_router, 0), Leg(0, dest, 1))


# ----------------------------------------------------------------------
# Torus (dateline DOR)
# ----------------------------------------------------------------------
def compile_torus_tables(
    topology: Torus,
    include_nonminimal: bool = False,
    name: Optional[str] = None,
) -> ForwardingTables:
    """Compile dateline dimension-order torus routing.

    Keys ``(0, dest, 2*phase + crossed)`` mirror the executor's progress
    encoding: ``crossed`` tracks whether the ring currently being
    corrected has wrapped.  The hop that finishes a dimension resets the
    next router's in-VC to the phase's fresh VC via ``next_vc`` -- the
    one place threading is not "in equals out".
    """
    phases = (0, 1) if include_nonminimal else (0,)
    num_vcs = 4 if include_nonminimal else 2
    meta: Dict[str, Any] = {}
    if include_nonminimal:
        meta["flip"] = {
            "source_vcs": [0, 1],
            "entry_vc": 2,
            "global_only": False,
            "grouped": False,
        }
    tables = ForwardingTables(
        name=name or f"torus@dateline-{num_vcs}vc",
        family="torus",
        num_vcs=num_vcs,
        num_routers=topology.num_routers,
        meta=meta,
    )
    for dest in range(topology.num_routers):
        dest_coords = topology.coords_of(dest)
        for router in range(topology.num_routers):
            if router == dest:
                continue
            coords = topology.coords_of(router)
            for dim, (coord, goal) in enumerate(zip(coords, dest_coords)):
                if coord != goal:
                    break
            size = topology.dims[dim]
            direction, wraps = torus_routing._ring_step(coord, goal, size)
            port = (
                topology.plus_port(dim) if direction > 0 else topology.minus_port(dim)
            )
            next_coord = (coord + direction) % size
            finishes_dim = next_coord == goal
            for phase in phases:
                for crossed in (0, 1):
                    vc = 2 * phase + (1 if (crossed or wraps) else 0)
                    if finishes_dim:
                        next_vc: Optional[int] = 2 * phase if vc != 2 * phase else None
                    else:
                        next_vc = None
                    tables.add(
                        router,
                        (0, dest, 2 * phase + crossed),
                        TableEntry(port, vc, next_vc=next_vc),
                    )
    return tables


def _torus_legs(
    topology: Torus, plan: torus_routing.TorusRoutePlan, dest: int
) -> Tuple[Leg, ...]:
    if plan.minimal or plan.intermediate_router is None:
        return (Leg(0, dest, 0),)
    return (Leg(0, plan.intermediate_router, 0), Leg(0, dest, 2))


# ----------------------------------------------------------------------
# Folded Clos (up*/down*)
# ----------------------------------------------------------------------
def compile_clos_tables(
    topology: FoldedClos, name: Optional[str] = None
) -> ForwardingTables:
    """Compile up*/down* folded-Clos routing.

    One key per destination leaf on the single VC.  Ancestors of the
    leaf descend deterministically (the leaf's digit at their level);
    every other switch ascends, with one via-tagged candidate per up
    port -- the route's freedom lives entirely in the leg's via set.
    """
    down = topology.down
    tables = ForwardingTables(
        name=name or "folded-clos@updown",
        family="folded-clos",
        num_vcs=1,
        num_routers=topology.num_switches,
        meta={},
    )
    for dest in range(topology.switches_per_level):
        dest_digits = topology.digits_of_leaf(dest)
        for switch in range(topology.num_switches):
            if switch == dest:
                continue
            level = topology.level_of(switch)
            digits = topology._digits(topology.index_of(switch))
            is_ancestor = level > 0 and digits[level:] == dest_digits[level:]
            if is_ancestor:
                tables.add(
                    switch, (0, dest, 0), TableEntry(dest_digits[level - 1], 0)
                )
            else:
                for up in range(down):
                    tables.add(
                        switch,
                        (0, dest, 0),
                        TableEntry(down + up, 0, via=("up", level, up)),
                    )
    return tables


def _clos_legs(
    topology: FoldedClos, plan: clos_routing.ClosRoutePlan, dest_leaf: int
) -> Tuple[Leg, ...]:
    via = frozenset(
        ("up", level, plan.up_ports[level]) for level in range(plan.ancestor_level)
    )
    return (Leg(0, dest_leaf, 0, via=via or None),)


# ----------------------------------------------------------------------
# Table-driven simulator executor (dragonfly family)
# ----------------------------------------------------------------------
class TableDrivenRouting(RoutingAlgorithm):
    """Run the simulator off compiled dragonfly tables.

    Wraps any dragonfly routing algorithm: ``decide`` is delegated (so
    plans, rng consumption, and congestion sensing are untouched) while
    every hop is resolved by table lookup instead of the algorithmic
    executor.  Overriding ``next_hop`` automatically disables the
    simulator's hop cache, so the tables are consulted for every hop of
    every flit -- the round-trip contract "export, import, simulate"
    certifies the deployed configuration, not a memo of the code.
    """

    def __init__(
        self,
        base: RoutingAlgorithm,
        tables: ForwardingTables,
        assignment: vcs.VcAssignment = vcs.CANONICAL,
    ) -> None:
        self.base = base
        self.tables = tables
        self.assignment = assignment
        self.name = base.name
        self.needs_credit_delay = base.needs_credit_delay

    def decide(
        self,
        view: CongestionView,
        topology: Dragonfly,
        rng: random.Random,
        src_router: int,
        dst_terminal: int,
    ) -> RoutePlan:
        return self.base.decide(view, topology, rng, src_router, dst_terminal)

    def next_hop(
        self,
        topology: Any,
        router: int,
        plan: RoutePlan,
        progress: int,
        dst_terminal: int,
    ) -> Tuple[int, int, int]:
        assignment = self.assignment
        if plan.gc1 is not None and progress == 0:
            link = plan.gc1
            took_global = router == link.src_router
            if plan.minimal:
                dest = topology.terminal_router(dst_terminal)
                key = (topology.group_of(dest), dest, assignment.minimal_first_vc)
            else:
                key = (
                    topology.group_of(link.dst_router),
                    link.dst_router,
                    assignment.nonminimal_first_vc,
                )
            entry = self.tables.lookup(router, key, {link_tag(link)})
            return entry.out_port, entry.out_vc, progress + (1 if took_global else 0)
        if plan.gc2 is not None and progress == 1:
            link = plan.gc2
            took_global = router == link.src_router
            dest = topology.terminal_router(dst_terminal)
            key = (topology.group_of(dest), dest, assignment.intermediate_vc)
            entry = self.tables.lookup(router, key, {link_tag(link)})
            return entry.out_port, entry.out_vc, progress + (1 if took_global else 0)
        dest = topology.terminal_router(dst_terminal)
        if router == dest:
            return topology.terminal_port(dst_terminal), 0, progress
        key = (topology.group_of(dest), dest, assignment.final_local_vc)
        entry = self.tables.lookup(router, key)
        return entry.out_port, entry.out_vc, progress


class DegradedTableRouting(RoutingAlgorithm):
    """Simulate detour-recompiled tables on a degraded fabric.

    ``fault_pairs`` severed group pairs (the canonical degradation of
    :func:`repro.topology.faults.canonical_global_faults`) are routed
    around by the compiled tables: surviving pairs stay minimal, severed
    pairs take the programmed third-group detour.  This is the executor
    the fault-sweep experiment drives -- throughput vs number of dead
    cables, measured on the exact tables the verifier certified.

    Tables are compiled lazily per topology (sweep workers receive only
    the routing *name* and build topologies themselves) and cached by
    the topology's parameters.  ``next_hop`` is overridden, which
    disables the simulator's hop cache, and no decide-kernel lowering is
    declared, so the array backend falls back to per-packet calls --
    both backends execute the same table walks.
    """

    needs_credit_delay = False
    kernel_decide = None
    kernel_signal = None

    def __init__(
        self,
        fault_pairs: int = 0,
        assignment: vcs.VcAssignment = vcs.CANONICAL,
    ) -> None:
        if fault_pairs < 0:
            raise ValueError(f"fault_pairs {fault_pairs} is negative")
        self.fault_pairs = fault_pairs
        self.assignment = assignment
        self.name = (
            "TBL-MIN" if fault_pairs == 0 else f"TBL-MIN/gc{fault_pairs}"
        )
        self._cache: Dict[
            Tuple[int, int, int, int],
            Tuple[ForwardingTables, FaultSet],
        ] = {}

    def _state(self, topology: Dragonfly) -> Tuple[ForwardingTables, FaultSet]:
        key = (topology.p, topology.a, topology.h, topology.g)
        state = self._cache.get(key)
        if state is None:
            from ..topology.faults import canonical_global_faults

            faults = canonical_global_faults(topology, self.fault_pairs)
            tables = compile_dragonfly_tables(
                topology,
                self.assignment,
                include_nonminimal=False,
                faults=faults,
            )
            state = (tables, faults)
            self._cache[key] = state
        return state

    def decide(
        self,
        view: CongestionView,
        topology: Dragonfly,
        rng: random.Random,
        src_router: int,
        dst_terminal: int,
    ) -> RoutePlan:
        _tables, faults = self._state(topology)
        src_group = topology.group_of(src_router)
        dest = topology.terminal_router(dst_terminal)
        dest_group = topology.group_of(dest)
        if src_group == dest_group:
            return RoutePlan(minimal=True)
        links = [
            link
            for link in topology.group_links(src_group, dest_group)
            if not faults.link_dead(link.src_router, link.dst_router)
        ]
        if links:
            gc1 = (
                links[0]
                if len(links) == 1
                else links[rng.randrange(len(links))]
            )
            return RoutePlan(minimal=True, gc1=gc1)
        _mid, first, second = _detour_choice(
            topology, faults, src_group, dest_group
        )
        return RoutePlan(minimal=False, gc1=first, gc2=second)

    def next_hop(
        self,
        topology: Any,
        router: int,
        plan: RoutePlan,
        progress: int,
        dst_terminal: int,
    ) -> Tuple[int, int, int]:
        tables, _faults = self._state(topology)
        assignment = self.assignment
        dest = topology.terminal_router(dst_terminal)
        dest_group = topology.group_of(dest)
        if plan.gc1 is not None and progress == 0:
            vc = (
                assignment.minimal_first_vc
                if plan.minimal
                else assignment.nonminimal_first_vc
            )
            entry = tables.lookup(
                router, (dest_group, dest, vc), {link_tag(plan.gc1)}
            )
        elif plan.gc2 is not None and progress == 1:
            entry = tables.lookup(
                router,
                (dest_group, dest, assignment.intermediate_vc),
                {link_tag(plan.gc2)},
            )
        else:
            if router == dest:
                return topology.terminal_port(dst_terminal), 0, progress
            entry = tables.lookup(
                router, (dest_group, dest, assignment.final_local_vc)
            )
        took_global = topology.is_global_port(entry.out_port)
        return (
            entry.out_port,
            entry.out_vc,
            progress + (1 if took_global else 0),
        )


# ----------------------------------------------------------------------
# Lowerings: bind one registry configuration to its compiler, its route
# cases (leg programs + algorithmic traces), and its hop classifier.
# ----------------------------------------------------------------------
class Lowering:
    """Everything the table verifier needs to know about one family."""

    family: str = "base"

    @property
    def topology(self) -> Any:
        raise NotImplementedError

    def compile(self) -> ForwardingTables:
        raise NotImplementedError

    def cases(self) -> Iterator[RouteCase]:
        """Every route the family can emit, as a table leg program."""
        raise NotImplementedError

    def grammar(self) -> PathGrammar:
        raise NotImplementedError

    def classify_hop(self, router: int, port: int, vc: int) -> Tuple[str, int, str]:
        """Map a trace hop onto its grammar (kind, vc, role) class."""
        raise NotImplementedError


class _GroupedLowering(Lowering):
    """Shared dragonfly / group-variant lowering."""

    def __init__(
        self,
        topology: Any,
        assignment: vcs.VcAssignment,
        include_nonminimal: bool,
    ) -> None:
        self._topology = topology
        self.assignment = assignment
        self.include_nonminimal = (
            include_nonminimal and assignment.supports_nonminimal
        )

    @property
    def topology(self) -> Any:
        return self._topology

    def classify_hop(self, router: int, port: int, vc: int) -> Tuple[str, int, str]:
        channel = self._topology.fabric.out_channel(router, port)
        assert channel is not None
        return channel.kind.value, vc, ""

    def _walk(self, src_router: int, dst_terminal: int, plan: RoutePlan):
        raise NotImplementedError

    def cases(self) -> Iterator[RouteCase]:
        topology = self._topology
        assignment = self.assignment
        for src_router in range(topology.fabric.num_routers):
            src_group = topology.group_of(src_router)
            for dst_terminal in range(topology.num_terminals):
                dest = topology.terminal_router(dst_terminal)
                dest_group = topology.group_of(dest)
                if src_group == dest_group:
                    plan = RoutePlan(minimal=True)
                    yield RouteCase(
                        label=f"intra r{src_router}->t{dst_terminal}",
                        src_router=src_router,
                        dst_terminal=dst_terminal,
                        legs=_grouped_min_legs(topology, assignment, plan, dest),
                        algorithmic=tuple(self._walk(src_router, dst_terminal, plan)),
                    )
                    continue
                for gc1 in topology.group_links(src_group, dest_group):
                    plan = RoutePlan(minimal=True, gc1=gc1)
                    yield RouteCase(
                        label=(
                            f"min r{src_router}->t{dst_terminal} "
                            f"via {gc1.src_port}@{gc1.src_router}"
                        ),
                        src_router=src_router,
                        dst_terminal=dst_terminal,
                        legs=_grouped_min_legs(topology, assignment, plan, dest),
                        algorithmic=tuple(self._walk(src_router, dst_terminal, plan)),
                    )
                if not self.include_nonminimal:
                    continue
                for mid_group in range(topology.g):
                    if mid_group in (src_group, dest_group):
                        continue
                    for gc1 in topology.group_links(src_group, mid_group):
                        for gc2 in topology.group_links(mid_group, dest_group):
                            plan = RoutePlan(minimal=False, gc1=gc1, gc2=gc2)
                            yield RouteCase(
                                label=(
                                    f"val r{src_router}->t{dst_terminal} "
                                    f"mid g{mid_group}"
                                ),
                                src_router=src_router,
                                dst_terminal=dst_terminal,
                                legs=_grouped_valiant_legs(
                                    topology, assignment, plan, dest
                                ),
                                algorithmic=tuple(
                                    self._walk(src_router, dst_terminal, plan)
                                ),
                            )


class DragonflyLowering(_GroupedLowering):
    family = "dragonfly"

    def compile(self) -> ForwardingTables:
        return compile_dragonfly_tables(
            self._topology, self.assignment, self.include_nonminimal
        )

    def grammar(self) -> PathGrammar:
        return paths.dragonfly_path_grammar(self.assignment, self.include_nonminimal)

    def _walk(self, src_router: int, dst_terminal: int, plan: RoutePlan):
        return paths.walk_route(
            self._topology, src_router, dst_terminal, plan, self.assignment
        )


class VariantLowering(_GroupedLowering):
    family = "dragonfly-fbgroup"

    def compile(self) -> ForwardingTables:
        return compile_variant_tables(
            self._topology, self.assignment, self.include_nonminimal
        )

    def grammar(self) -> PathGrammar:
        return variant_paths.variant_path_grammar(
            self.assignment, self.include_nonminimal
        )

    def _walk(self, src_router: int, dst_terminal: int, plan: RoutePlan):
        return variant_paths.variant_walk_route(
            self._topology, src_router, dst_terminal, plan, self.assignment
        )


class DegradedDragonflyLowering(Lowering):
    """Fault-degraded dragonfly: minimal routes plus explicit detours.

    There is no algorithmic executor for the degraded fabric -- the
    tables *are* the routing -- so cases carry no algorithmic trace and
    the verifier certifies reachability, cycle-freedom, and grammar
    membership of the table walks alone.  The grammar is the
    fault-parametric :class:`~repro.routing.grammar.DegradedPathGrammar`
    composed for exactly the fault classes this fault set exhibits:
    detour walks match its ``fault-detour`` route class, and local
    repair hops land in local segments widened to relay walks.
    """

    family = "dragonfly"

    def __init__(
        self,
        topology: Dragonfly,
        faults: FaultSet,
        assignment: vcs.VcAssignment = vcs.CANONICAL,
    ) -> None:
        self._topology = topology
        self.faults = faults
        self.assignment = assignment

    @property
    def topology(self) -> Dragonfly:
        return self._topology

    def compile(self) -> ForwardingTables:
        return compile_dragonfly_tables(
            self._topology,
            self.assignment,
            include_nonminimal=False,
            faults=self.faults,
        )

    def grammar(self) -> PathGrammar:
        return paths.degraded_dragonfly_grammar(
            self.assignment,
            self.faults.fault_classes(self._topology),
        ).compose()

    def classify_hop(self, router: int, port: int, vc: int) -> Tuple[str, int, str]:
        channel = self._topology.fabric.out_channel(router, port)
        assert channel is not None
        return channel.kind.value, vc, ""

    def cases(self) -> Iterator[RouteCase]:
        topology = self._topology
        faults = self.faults
        assignment = self.assignment
        for src_router in range(topology.fabric.num_routers):
            if faults.router_dead(src_router):
                continue
            src_group = topology.group_of(src_router)
            for dst_terminal in range(topology.num_terminals):
                dest = topology.terminal_router(dst_terminal)
                if faults.router_dead(dest):
                    continue
                dest_group = topology.group_of(dest)
                if src_group == dest_group:
                    yield RouteCase(
                        label=f"intra r{src_router}->t{dst_terminal}",
                        src_router=src_router,
                        dst_terminal=dst_terminal,
                        legs=(Leg(dest_group, dest, assignment.final_local_vc),),
                    )
                    continue
                links = [
                    link
                    for link in topology.group_links(src_group, dest_group)
                    if not faults.link_dead(link.src_router, link.dst_router)
                ]
                if links:
                    for link in links:
                        yield RouteCase(
                            label=f"min r{src_router}->t{dst_terminal}",
                            src_router=src_router,
                            dst_terminal=dst_terminal,
                            legs=(
                                Leg(
                                    dest_group,
                                    dest,
                                    assignment.minimal_first_vc,
                                    via=frozenset((link_tag(link),)),
                                ),
                            ),
                        )
                    continue
                _mid, first, second = _detour_choice(
                    topology, faults, src_group, dest_group
                )
                yield RouteCase(
                    label=f"detour r{src_router}->t{dst_terminal}",
                    src_router=src_router,
                    dst_terminal=dst_terminal,
                    legs=(
                        Leg(
                            dest_group,
                            dest,
                            assignment.nonminimal_first_vc,
                            via=frozenset((link_tag(first), link_tag(second))),
                        ),
                    ),
                )


class FbLowering(Lowering):
    family = "flattened-butterfly"

    def __init__(self, topology: FlattenedButterfly) -> None:
        self._topology = topology

    @property
    def topology(self) -> FlattenedButterfly:
        return self._topology

    def compile(self) -> ForwardingTables:
        return compile_fb_tables(self._topology)

    def grammar(self) -> PathGrammar:
        return fb_paths.fb_path_grammar()

    def classify_hop(self, router: int, port: int, vc: int) -> Tuple[str, int, str]:
        return "local", vc, f"phase{vc}"

    def cases(self) -> Iterator[RouteCase]:
        topology = self._topology
        for src_router in range(topology.num_routers):
            for dst_terminal in range(topology.num_terminals):
                dest = topology.terminal_router(dst_terminal)
                plan = fb_paths.fb_minimal_plan()
                yield RouteCase(
                    label=f"min r{src_router}->t{dst_terminal}",
                    src_router=src_router,
                    dst_terminal=dst_terminal,
                    legs=_fb_legs(topology, plan, dest),
                    algorithmic=tuple(
                        fb_paths.fb_walk_route(topology, src_router, dst_terminal, plan)
                    ),
                )
                for mid in range(topology.num_routers):
                    if mid in (src_router, dest):
                        continue
                    plan = fb_paths.FbRoutePlan(minimal=False, intermediate_router=mid)
                    yield RouteCase(
                        label=f"val r{src_router}->t{dst_terminal} mid r{mid}",
                        src_router=src_router,
                        dst_terminal=dst_terminal,
                        legs=_fb_legs(topology, plan, dest),
                        algorithmic=tuple(
                            fb_paths.fb_walk_route(
                                topology, src_router, dst_terminal, plan
                            )
                        ),
                    )


class TorusLowering(Lowering):
    family = "torus"

    def __init__(self, topology: Torus, include_nonminimal: bool) -> None:
        self._topology = topology
        self.include_nonminimal = include_nonminimal

    @property
    def topology(self) -> Torus:
        return self._topology

    def compile(self) -> ForwardingTables:
        return compile_torus_tables(self._topology, self.include_nonminimal)

    def grammar(self) -> PathGrammar:
        return torus_routing.torus_path_grammar(
            len(self._topology.dims), self.include_nonminimal
        )

    def classify_hop(self, router: int, port: int, vc: int) -> Tuple[str, int, str]:
        dim = (port - self._topology.concentration) // 2
        crossed = vc % 2
        role = f"dim{dim}" + ("+dateline" if crossed else "")
        return "ring", vc, role

    def cases(self) -> Iterator[RouteCase]:
        topology = self._topology
        for src_router in range(topology.num_routers):
            for dst_terminal in range(topology.num_terminals):
                dest = topology.terminal_router(dst_terminal)
                plan = torus_routing.torus_minimal_plan()
                yield RouteCase(
                    label=f"min r{src_router}->t{dst_terminal}",
                    src_router=src_router,
                    dst_terminal=dst_terminal,
                    legs=_torus_legs(topology, plan, dest),
                    algorithmic=tuple(
                        torus_routing.torus_walk_route(
                            topology, src_router, dst_terminal, plan
                        )
                    ),
                )
                if not self.include_nonminimal:
                    continue
                for mid in range(topology.num_routers):
                    if mid in (src_router, dest):
                        continue
                    plan = torus_routing.TorusRoutePlan(
                        minimal=False, intermediate_router=mid
                    )
                    yield RouteCase(
                        label=f"val r{src_router}->t{dst_terminal} mid r{mid}",
                        src_router=src_router,
                        dst_terminal=dst_terminal,
                        legs=_torus_legs(topology, plan, dest),
                        algorithmic=tuple(
                            torus_routing.torus_walk_route(
                                topology, src_router, dst_terminal, plan
                            )
                        ),
                    )


class ClosLowering(Lowering):
    family = "folded-clos"

    def __init__(self, topology: FoldedClos) -> None:
        self._topology = topology

    @property
    def topology(self) -> FoldedClos:
        return self._topology

    def compile(self) -> ForwardingTables:
        return compile_clos_tables(self._topology)

    def grammar(self) -> PathGrammar:
        return clos_routing.clos_path_grammar(self._topology.levels)

    def classify_hop(self, router: int, port: int, vc: int) -> Tuple[str, int, str]:
        level = self._topology.level_of(router)
        if port >= self._topology.down:
            return "up", 0, f"level{level}->{level + 1}"
        return "down", 0, f"level{level}->{level - 1}"

    def cases(self) -> Iterator[RouteCase]:
        import itertools

        topology = self._topology
        for src_terminal in range(topology.num_terminals):
            src_router = topology.terminal_router(src_terminal)
            for dst_terminal in range(topology.num_terminals):
                dst_leaf = topology.terminal_router(dst_terminal)
                ancestor = topology.ancestor_level(
                    topology.index_of(src_router), dst_leaf
                )
                for up_ports in itertools.product(
                    range(topology.down), repeat=ancestor
                ):
                    plan = clos_routing.ClosRoutePlan(
                        minimal=True, ancestor_level=ancestor, up_ports=up_ports
                    )
                    yield RouteCase(
                        label=(
                            f"updown r{src_router}->t{dst_terminal} "
                            f"up{list(up_ports)}"
                        ),
                        src_router=src_router,
                        dst_terminal=dst_terminal,
                        legs=_clos_legs(topology, plan, dst_leaf),
                        algorithmic=tuple(
                            clos_routing.clos_walk_route(
                                topology, src_router, dst_terminal, plan
                            )
                        ),
                    )
