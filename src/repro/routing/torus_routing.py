"""Routing for the k-ary n-cube torus (extension).

The paper's low-radix baseline descends from the Cray T3E torus [27]; to
let the simulator drive it we implement classic dimension-order routing
with dateline virtual channels (Dally & Seitz [7]): rings are traversed
in the shorter direction, and a packet that crosses a ring's wraparound
link ("the dateline") moves from VC0 to VC1, breaking the cyclic channel
dependency of each ring.  Minimal DOR therefore needs 2 VCs; the
router-level Valiant variant needs 4 (two per phase), so it requires a
simulator configured with ``num_vcs >= 4``.

``progress`` encoding used by the executor: ``2*phase + crossed`` where
``phase`` is the Valiant phase (0 = toward the intermediate router) and
``crossed`` is whether the ring currently being corrected has wrapped.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..topology.torus import Torus
from .base import CongestionView, RoutingAlgorithm
from .grammar import ChannelClass, PathGrammar, RouteClass, Segment


@dataclass
class TorusRoutePlan:
    """Per-packet decision on a torus."""

    minimal: bool
    intermediate_router: Optional[int] = None

    @property
    def num_global_hops(self) -> int:
        return 0  # interface parity; tori have no global channels


def torus_minimal_plan() -> TorusRoutePlan:
    return TorusRoutePlan(minimal=True)


def torus_valiant_plan(
    topology: Torus,
    rng: random.Random,
    src_router: int,
    dst_terminal: int,
    intermediate_router: Optional[int] = None,
) -> TorusRoutePlan:
    dst_router = topology.terminal_router(dst_terminal)
    if intermediate_router is None:
        intermediate_router = rng.randrange(topology.num_routers)
    if intermediate_router in (src_router, dst_router):
        return torus_minimal_plan()
    return TorusRoutePlan(minimal=False, intermediate_router=intermediate_router)


def _ring_step(coord: int, target: int, size: int) -> Tuple[int, bool]:
    """(direction, wraps): +1/-1 shortest way around the ring and whether
    the next hop crosses the wraparound link."""
    forward = (target - coord) % size
    if forward <= size - forward:
        wraps = coord == size - 1
        return +1, wraps
    wraps = coord == 0
    return -1, wraps


def torus_next_hop(
    topology: Torus,
    router: int,
    plan: TorusRoutePlan,
    progress: int,
    dst_terminal: int,
) -> Tuple[int, int, int]:
    """(out_port, out_vc, next_progress) for dateline DOR."""
    phase, crossed = divmod(progress, 2)
    dst_router = topology.terminal_router(dst_terminal)
    if not plan.minimal and phase == 0 and router == plan.intermediate_router:
        phase, crossed = 1, 0
    heading_home = plan.minimal or phase >= 1 or plan.intermediate_router is None
    target = dst_router if heading_home else plan.intermediate_router
    if router == target:
        return topology.terminal_port(dst_terminal), 0, 2 * phase
    coords = topology.coords_of(router)
    target_coords = topology.coords_of(target)
    for dim, (coord, goal) in enumerate(zip(coords, target_coords)):
        if coord == goal:
            continue
        size = topology.dims[dim]
        direction, wraps = _ring_step(coord, goal, size)
        port = topology.plus_port(dim) if direction > 0 else topology.minus_port(dim)
        next_coord = (coord + direction) % size
        vc = 2 * phase + crossed
        finishes_dim = next_coord == goal
        if finishes_dim:
            next_crossed = 0  # the next dimension starts fresh
        else:
            next_crossed = 1 if (crossed or wraps) else 0
        # The current hop's VC must already be the dateline VC when the
        # hop itself crosses the wraparound link.
        if wraps:
            vc = 2 * phase + 1
            if not finishes_dim:
                next_crossed = 1
        return port, vc, 2 * phase + next_crossed
    raise AssertionError("router == target was handled above")


def _torus_phase_segments(phase: int, num_dims: int) -> List[Segment]:
    """The per-dimension (pre-dateline, post-dateline) segment pairs.

    One ring correction is a monotone walk in a fixed direction (the
    shorter way around never flips mid-walk) of fewer hops than the ring
    size, so it crosses the wraparound link at most once: VC ``2*phase``
    strictly before the dateline, VC ``2*phase + 1`` from the crossing
    hop onward.  Either part may be empty, and within each part the hops
    strictly advance along the ring -- the order witness below.
    """
    segments = []
    for dim in range(num_dims):
        order = (
            f"ring position along the travel direction (dim {dim}, "
            "cut at the dateline)"
        )
        segments.append(Segment(
            ChannelClass("ring", 2 * phase, f"dim{dim}"),
            optional=True, multi_hop=True, order=order,
        ))
        segments.append(Segment(
            ChannelClass("ring", 2 * phase + 1, f"dim{dim}+dateline"),
            optional=True, multi_hop=True, order=order,
        ))
    return segments


def torus_path_grammar(
    num_dims: int,
    include_nonminimal: bool = False,
) -> PathGrammar:
    """Channel-class structure of dateline-DOR torus routes.

    Parameterised over the dimension *count* only -- ring sizes never
    enter the abstraction, so one grammar covers every k-ary n-cube of
    ``n = num_dims``.  Classes are (VC, dimension, dateline side): the
    dimension and dateline refinements are load-bearing, because a
    VC-only abstraction would merge the last (dateline-VC) hop of one
    dimension with the first (fresh-VC) hop of the next into a spurious
    VC1 -> VC0 cycle that no concrete route can close.
    """
    route_classes = [
        RouteClass(
            "minimal (dateline DOR)",
            tuple(_torus_phase_segments(0, num_dims)),
        ),
    ]
    if include_nonminimal:
        route_classes.append(RouteClass(
            "valiant (dateline DOR x2)",
            tuple(
                _torus_phase_segments(0, num_dims)
                + _torus_phase_segments(1, num_dims)
            ),
        ))
    return PathGrammar(
        name=f"torus-{num_dims}d@dateline",
        num_vcs=4 if include_nonminimal else 2,
        route_classes=tuple(route_classes),
    )


def torus_walk_route(
    topology: Torus,
    src_router: int,
    dst_terminal: int,
    plan: TorusRoutePlan,
) -> List[Tuple[int, int, int]]:
    """Full (router, port, vc) trace of a plan."""
    trace = []
    router = src_router
    progress = 0
    bound = 2 * sum(topology.dims) + 2
    for _ in range(bound):
        port, vc, progress = torus_next_hop(
            topology, router, plan, progress, dst_terminal
        )
        trace.append((router, port, vc))
        channel = topology.fabric.out_channel(router, port)
        if channel is None:
            return trace
        router = channel.dst.router
    raise AssertionError("torus route failed to terminate")


class _TorusRouting(RoutingAlgorithm):
    def next_hop(
        self,
        topology: Torus,
        router: int,
        plan: TorusRoutePlan,
        progress: int,
        dst_terminal: int,
    ) -> Tuple[int, int, int]:
        return torus_next_hop(topology, router, plan, progress, dst_terminal)


class TorusMinimalRouting(_TorusRouting):
    """Dateline dimension-order routing (2 VCs)."""

    name = "TORUS-DOR"

    def decide(
        self,
        view: CongestionView,
        topology: Torus,
        rng: random.Random,
        src_router: int,
        dst_terminal: int,
    ) -> TorusRoutePlan:
        return torus_minimal_plan()


class TorusValiantRouting(_TorusRouting):
    """Router-level Valiant over dateline DOR (4 VCs)."""

    name = "TORUS-VAL"

    def decide(
        self,
        view: CongestionView,
        topology: Torus,
        rng: random.Random,
        src_router: int,
        dst_terminal: int,
    ) -> TorusRoutePlan:
        return torus_valiant_plan(topology, rng, src_router, dst_terminal)


def make_torus_routing(name: str) -> RoutingAlgorithm:
    algorithms = {
        "TORUS-DOR": TorusMinimalRouting,
        "TORUS-VAL": TorusValiantRouting,
    }
    if name not in algorithms:
        raise ValueError(
            f"unknown torus routing {name!r}; choose from {sorted(algorithms)}"
        )
    return algorithms[name]()
