"""Valiant (VAL) randomised non-minimal routing -- Section 4.1 / 4.2.

Applies Valiant's algorithm at the *group* level: every packet is routed
first to a uniformly random intermediate group and then minimally to its
destination.  This balances load on both global and local channels for
any traffic pattern at the cost of doubling global channel usage, which
caps throughput near 50% of capacity on benign traffic.
"""

from __future__ import annotations

import random

from ..network.packet import RoutePlan
from ..topology.dragonfly import Dragonfly
from .base import CongestionView, RoutingAlgorithm
from .paths import valiant_plan


class ValiantRouting(RoutingAlgorithm):
    name = "VAL"
    kernel_decide = "val"

    def decide(
        self,
        view: CongestionView,
        topology: Dragonfly,
        rng: random.Random,
        src_router: int,
        dst_terminal: int,
    ) -> RoutePlan:
        return valiant_plan(topology, rng, src_router, dst_terminal)
