"""Route-plan construction and execution on a dragonfly.

A :class:`~repro.network.packet.RoutePlan` fixes, at the source router,
which global channel(s) the packet will use.  This module builds minimal
and Valiant plans (Section 4.1) and executes them hop by hop -- returning
the (output port, VC) at every router along the way using the VC
assignment of :mod:`repro.routing.vc_assignment`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..core.params import TopologyError
from ..network.packet import RoutePlan
from ..topology.dragonfly import Dragonfly, GlobalLink
from ..topology.faults import ALL_FAULT_CLASSES, SEVERED_GROUP_PAIR, FaultClass
from . import vc_assignment as vcs
from .grammar import (
    ChannelClass,
    DegradedPathGrammar,
    PathGrammar,
    RouteClass,
    Segment,
)

#: Shared plan for intra-group routes.  Plans are immutable once built
#: (the simulator only attaches an interned ``hop_key``, identical for
#: equal contents), so one object serves every same-group packet.
_INTRA_GROUP_MINIMAL = RoutePlan(minimal=True)


def _pick_best_link(
    links: List[GlobalLink],
    rng: random.Random,
    src_router: int,
    dst_router: Optional[int] = None,
) -> GlobalLink:
    """Pick the link minimising extra local hops, random tie-break."""
    if not links:
        raise TopologyError("no global link between the requested groups")

    if len(links) == 1:
        return links[0]
    best = 3
    candidates: List[GlobalLink] = []
    for link in links:
        extra = 0
        if link.src_router != src_router:
            extra += 1
        if dst_router is not None and link.dst_router != dst_router:
            extra += 1
        if extra < best:
            best = extra
            candidates = [link]
        elif extra == best:
            candidates.append(link)
    return candidates[rng.randrange(len(candidates))]


def _minimal_plan_between(
    topology: Dragonfly,
    rng: random.Random,
    src_router: int,
    dst_router: int,
    src_group: int,
    dst_group: int,
) -> RoutePlan:
    """Minimal plan between distinct groups, routers/groups precomputed.

    Internal fast path shared with the UGAL ``decide`` hot loop.  When
    ``topology.single_link_pairs`` (exactly one global link per group
    pair, the canonical ``g = ah + 1`` dragonfly), ``_pick_best_link``
    has no tie to break -- the plan is a pure function of the group pair
    and consumes no rng -- so plans are memoised on the topology itself.
    """
    if getattr(topology, "single_link_pairs", False):
        try:
            memo = topology._minimal_plan_memo
        except AttributeError:
            memo = topology._minimal_plan_memo = {}
        key = src_group * topology.g + dst_group
        plan = memo.get(key)
        if plan is None:
            links = topology.group_links(src_group, dst_group)
            plan = RoutePlan(
                minimal=True,
                gc1=_pick_best_link(links, rng, src_router, dst_router),
            )
            memo[key] = plan
        return plan
    links = topology.group_links(src_group, dst_group)
    return RoutePlan(
        minimal=True,
        gc1=_pick_best_link(links, rng, src_router, dst_router),
    )


def minimal_plan(
    topology: Dragonfly,
    rng: random.Random,
    src_router: int,
    dst_terminal: int,
) -> RoutePlan:
    """The paper's 3-step minimal route (at most one global channel)."""
    dst_router = topology.terminal_router(dst_terminal)
    src_group = topology.group_of(src_router)
    dst_group = topology.group_of(dst_router)
    if src_group == dst_group:
        return _INTRA_GROUP_MINIMAL
    return _minimal_plan_between(
        topology, rng, src_router, dst_router, src_group, dst_group
    )


def valiant_plan(
    topology: Dragonfly,
    rng: random.Random,
    src_router: int,
    dst_terminal: int,
    intermediate_group: Optional[int] = None,
) -> RoutePlan:
    """The 5-step Valiant route through a random intermediate group.

    The intermediate group is drawn uniformly from the groups other than
    the source group.  When it equals the destination group the route
    degenerates to the minimal route (``minimal`` is set accordingly so
    statistics classify the packet by the path it actually takes).
    """
    dst_router = topology.terminal_router(dst_terminal)
    src_group = topology.group_of(src_router)
    dst_group = topology.group_of(dst_router)
    if topology.g < 2 or src_group == dst_group:
        return minimal_plan(topology, rng, src_router, dst_terminal)
    return _valiant_plan_between(
        topology, rng, src_router, dst_router, src_group, dst_group,
        intermediate_group,
    )


def _valiant_plan_between(
    topology: Dragonfly,
    rng: random.Random,
    src_router: int,
    dst_router: int,
    src_group: int,
    dst_group: int,
    intermediate_group: Optional[int] = None,
) -> RoutePlan:
    """Valiant plan between distinct groups, routers/groups precomputed.

    Internal fast path shared with the UGAL ``decide`` hot loop; draws
    the intermediate group (one rng call), then -- like
    :func:`_minimal_plan_between` -- memoises the link choice on the
    topology when it is a pure function of the group triple.
    """
    if intermediate_group is None:
        # Inlined ``rng.randrange(g - 1)``: the rejection loop below is
        # exactly ``Random._randbelow_with_getrandbits``, so it consumes
        # the generator state identically (the determinism contract) at
        # a fraction of the call overhead.
        n = topology.g - 1
        getrandbits = rng.getrandbits
        k = n.bit_length()
        r = getrandbits(k)
        while r >= n:
            r = getrandbits(k)
        intermediate_group = r
        if intermediate_group >= src_group:
            intermediate_group += 1
    if intermediate_group == src_group:
        raise ValueError("intermediate group must differ from the source group")
    if intermediate_group == dst_group:
        return _minimal_plan_between(
            topology, rng, src_router, dst_router, src_group, dst_group
        )
    if getattr(topology, "single_link_pairs", False):
        g = topology.g
        try:
            memo = topology._valiant_plan_memo
        except AttributeError:
            memo = topology._valiant_plan_memo = {}
        key = (src_group * g + intermediate_group) * g + dst_group
        plan = memo.get(key)
        if plan is None:
            gc1 = _pick_best_link(
                topology.group_links(src_group, intermediate_group), rng, src_router
            )
            gc2 = _pick_best_link(
                topology.group_links(intermediate_group, dst_group),
                rng,
                gc1.dst_router,
                dst_router,
            )
            plan = RoutePlan(minimal=False, gc1=gc1, gc2=gc2)
            memo[key] = plan
        return plan
    gc1 = _pick_best_link(
        topology.group_links(src_group, intermediate_group), rng, src_router
    )
    gc2 = _pick_best_link(
        topology.group_links(intermediate_group, dst_group),
        rng,
        gc1.dst_router,
        dst_router,
    )
    return RoutePlan(minimal=False, gc1=gc1, gc2=gc2)


#: Stand-in rng for memoised-plan lookups that provably consume no
#: randomness (single-link group pairs leave ``_pick_best_link`` no tie
#: to break).  Passing it instead of a live generator makes the
#: no-consumption invariant explicit at the call site.
_NO_RNG = random.Random(0)


def memoised_minimal_plan(
    topology: Dragonfly,
    src_group: int,
    dst_group: int,
) -> RoutePlan:
    """The unique minimal plan for an ordered group pair.

    Requires ``topology.single_link_pairs`` -- the plan is then a pure
    function of the pair and shares the per-topology memo that
    :func:`_minimal_plan_between` populates, so the decide kernel and
    the scalar path hand out the *same* interned plan objects.
    """
    if not getattr(topology, "single_link_pairs", False):
        raise TopologyError(
            "memoised plans require exactly one global link per group pair"
        )
    link = topology.group_links(src_group, dst_group)[0]
    return _minimal_plan_between(
        topology, _NO_RNG, link.src_router, link.dst_router,
        src_group, dst_group,
    )


def memoised_valiant_plan(
    topology: Dragonfly,
    src_group: int,
    intermediate_group: int,
    dst_group: int,
) -> RoutePlan:
    """The unique non-degenerate Valiant plan for an ordered group triple.

    Same contract as :func:`memoised_minimal_plan`; the intermediate
    group must differ from both endpoints (degenerate draws collapse to
    the minimal plan before this is consulted).
    """
    if not getattr(topology, "single_link_pairs", False):
        raise TopologyError(
            "memoised plans require exactly one global link per group pair"
        )
    link = topology.group_links(src_group, intermediate_group)[0]
    return _valiant_plan_between(
        topology, _NO_RNG, link.src_router,
        topology.group_links(intermediate_group, dst_group)[0].dst_router,
        src_group, dst_group, intermediate_group,
    )


def plan_hops(
    topology: Dragonfly,
    src_router: int,
    dst_terminal: int,
    plan: RoutePlan,
) -> int:
    """Router-to-router channel traversals of a plan (UGAL's hop count)."""
    dst_router = topology.terminal_router(dst_terminal)
    hops = 0
    position = src_router
    for link in (plan.gc1, plan.gc2):
        if link is None:
            continue
        if position != link.src_router:
            hops += 1  # local hop to the channel's source router
        hops += 1  # the global channel
        position = link.dst_router
    if position != dst_router:
        hops += 1  # final local hop
    return hops


def next_hop(
    topology: Dragonfly,
    router: int,
    plan: RoutePlan,
    global_hops_taken: int,
    dst_terminal: int,
    assignment: vcs.VcAssignment = vcs.CANONICAL,
) -> Tuple[int, int]:
    """(output port, VC) for a flit of this plan at ``router``.

    ``global_hops_taken`` tracks route progress; ejection returns the
    destination's terminal port with VC 0.  ``assignment`` selects the VC
    assignment; the default is the canonical Figure 7 assignment.  The
    static certifier (:mod:`repro.check.cdg`) re-executes routes through
    this very function with candidate assignments, so what it certifies
    is the code path the simulator runs.
    """
    minimal = plan.minimal
    if plan.gc1 is not None and global_hops_taken == 0:
        link = plan.gc1
        if router == link.src_router:
            return link.src_port, assignment.global_vc(minimal, 0)
        return (
            topology.local_port(router, link.src_router),
            assignment.local_vc(minimal, 0),
        )
    if plan.gc2 is not None and global_hops_taken == 1:
        link = plan.gc2
        if router == link.src_router:
            return link.src_port, assignment.global_vc(minimal, 1)
        return (
            topology.local_port(router, link.src_router),
            assignment.local_vc(minimal, 1),
        )
    dst_router = topology.terminal_router(dst_terminal)
    if router == dst_router:
        return topology.terminal_port(dst_terminal), 0
    # Final local hop (also the only hop of intra-group routes): highest VC.
    return topology.local_port(router, dst_router), assignment.final_local_vc


def dragonfly_path_grammar(
    assignment: vcs.VcAssignment = vcs.CANONICAL,
    include_nonminimal: bool = True,
) -> PathGrammar:
    """The channel-class structure of every route :func:`next_hop` emits.

    Instance-independent: valid for **any** dragonfly (a, p, h, g),
    because groups are complete graphs -- every local segment is at most
    one hop and every global segment exactly one, regardless of size.
    The three route classes mirror Section 4.1 (and the enumeration of
    :func:`repro.check.cdg.dragonfly_traces`):

    * ``intra-group`` -- source and destination share a group: at most
      one local hop on the final-stage VC;
    * ``minimal`` -- the 3-step route: local hop to the gateway router
      (skipped when the source *is* the gateway), the global channel,
      local hop to the destination router (skipped when the global
      channel lands on it);
    * ``nonminimal`` -- the 5-step Valiant route through an intermediate
      group (both local hops around each gateway optional as above; the
      two global channels always present -- degenerate Valiant draws
      collapse to the ``minimal`` plan before routing starts).
    """
    final = ChannelClass("local", assignment.final_local_vc)
    route_classes = [
        RouteClass("intra-group", (Segment(final, optional=True),)),
        RouteClass(
            "minimal",
            (
                Segment(
                    ChannelClass("local", assignment.minimal_first_vc),
                    optional=True,
                ),
                Segment(ChannelClass("global", assignment.minimal_first_vc)),
                Segment(final, optional=True),
            ),
        ),
    ]
    if include_nonminimal and assignment.supports_nonminimal:
        route_classes.append(RouteClass(
            "nonminimal",
            (
                Segment(
                    ChannelClass("local", assignment.nonminimal_first_vc),
                    optional=True,
                ),
                Segment(ChannelClass("global", assignment.nonminimal_first_vc)),
                Segment(
                    ChannelClass("local", assignment.intermediate_vc),
                    optional=True,
                ),
                Segment(ChannelClass("global", assignment.intermediate_vc)),
                Segment(final, optional=True),
            ),
        ))
    return PathGrammar(
        name=f"dragonfly@{assignment.name}",
        num_vcs=assignment.num_vcs,
        route_classes=tuple(route_classes),
    )


def degraded_dragonfly_grammar(
    assignment: vcs.VcAssignment = vcs.CANONICAL,
    fault_classes: Tuple[FaultClass, ...] = ALL_FAULT_CLASSES,
) -> DegradedPathGrammar:
    """The degraded-family grammar: healthy minimal routes + fault detours.

    Instance-independent like :func:`dragonfly_path_grammar`, but
    parameterised by symbolic *fault classes* rather than a concrete
    fault set: any dragonfly of the family, degraded by any fault set
    exhibiting only the given classes and recompiled by the detour
    recompiler (:func:`repro.routing.tables.compile_dragonfly_tables`
    with faults), emits only routes these route classes describe.

    * The healthy base is the *minimal-only* grammar -- degraded tables
      are compiled without adaptive non-minimal entries, so the Valiant
      class is absent and its VC ladder is free for detours.
    * ``severed-group-pair`` adds the ``fault-detour`` route class: the
      third-group detour the recompiler programs for the severed pair,
      shaped exactly like a Valiant route (and therefore using the
      non-minimal VC ladder, which is why the assignment must support
      non-minimal VCs even though no adaptive routing happens).
    * ``dead-local-link`` / ``dead-router`` widen local segments to
      relay walks; :meth:`DegradedPathGrammar.compose` handles that.
    """
    for fault in fault_classes:
        if not isinstance(fault, FaultClass):
            raise TypeError(f"not a FaultClass: {fault!r}")
    detour_classes: List[RouteClass] = []
    if SEVERED_GROUP_PAIR in fault_classes:
        if not assignment.supports_nonminimal:
            raise TopologyError(
                f"assignment {assignment.name!r} has no non-minimal VC "
                "ladder for detour routes around a severed group pair"
            )
        final = ChannelClass("local", assignment.final_local_vc)
        detour_classes.append(RouteClass(
            "fault-detour",
            (
                Segment(
                    ChannelClass("local", assignment.nonminimal_first_vc),
                    optional=True,
                ),
                Segment(ChannelClass("global", assignment.nonminimal_first_vc)),
                Segment(
                    ChannelClass("local", assignment.intermediate_vc),
                    optional=True,
                ),
                Segment(ChannelClass("global", assignment.intermediate_vc)),
                Segment(final, optional=True),
            ),
        ))
    return DegradedPathGrammar(
        healthy=dragonfly_path_grammar(assignment, include_nonminimal=False),
        fault_classes=tuple(fault_classes),
        detour_classes=tuple(detour_classes),
    )


def walk_route(
    topology: Dragonfly,
    src_router: int,
    dst_terminal: int,
    plan: RoutePlan,
    assignment: vcs.VcAssignment = vcs.CANONICAL,
) -> List[Tuple[int, int, int]]:
    """Full (router, out_port, vc) trace of a plan, ending at ejection.

    Used by tests, analytics and the static certifier; the simulator
    executes hops lazily.
    """
    trace = []
    router = src_router
    global_hops = 0
    for _ in range(2 * 5 + 2):  # generous bound; routes have <= 5 hops
        port, vc = next_hop(
            topology, router, plan, global_hops, dst_terminal, assignment
        )
        trace.append((router, port, vc))
        if topology.is_terminal_port(port):
            return trace
        channel = topology.fabric.out_channel(router, port)
        assert channel is not None
        if topology.is_global_port(port):
            global_hops += 1
        router = channel.dst.router
    raise TopologyError("route failed to terminate (routing bug)")
