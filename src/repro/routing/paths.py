"""Route-plan construction and execution on a dragonfly.

A :class:`~repro.network.packet.RoutePlan` fixes, at the source router,
which global channel(s) the packet will use.  This module builds minimal
and Valiant plans (Section 4.1) and executes them hop by hop -- returning
the (output port, VC) at every router along the way using the VC
assignment of :mod:`repro.routing.vc_assignment`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..core.params import TopologyError
from ..network.packet import RoutePlan
from ..topology.dragonfly import Dragonfly, GlobalLink
from . import vc_assignment as vcs


def _pick_best_link(
    links: List[GlobalLink],
    rng: random.Random,
    src_router: int,
    dst_router: Optional[int] = None,
) -> GlobalLink:
    """Pick the link minimising extra local hops, random tie-break."""
    if not links:
        raise TopologyError("no global link between the requested groups")

    if len(links) == 1:
        return links[0]
    best = 3
    candidates: List[GlobalLink] = []
    for link in links:
        extra = 0
        if link.src_router != src_router:
            extra += 1
        if dst_router is not None and link.dst_router != dst_router:
            extra += 1
        if extra < best:
            best = extra
            candidates = [link]
        elif extra == best:
            candidates.append(link)
    return candidates[rng.randrange(len(candidates))]


def minimal_plan(
    topology: Dragonfly,
    rng: random.Random,
    src_router: int,
    dst_terminal: int,
) -> RoutePlan:
    """The paper's 3-step minimal route (at most one global channel)."""
    dst_router = topology.terminal_router(dst_terminal)
    src_group = topology.group_of(src_router)
    dst_group = topology.group_of(dst_router)
    if src_group == dst_group:
        return RoutePlan(minimal=True)
    links = topology.group_links(src_group, dst_group)
    return RoutePlan(
        minimal=True,
        gc1=_pick_best_link(links, rng, src_router, dst_router),
    )


def valiant_plan(
    topology: Dragonfly,
    rng: random.Random,
    src_router: int,
    dst_terminal: int,
    intermediate_group: Optional[int] = None,
) -> RoutePlan:
    """The 5-step Valiant route through a random intermediate group.

    The intermediate group is drawn uniformly from the groups other than
    the source group.  When it equals the destination group the route
    degenerates to the minimal route (``minimal`` is set accordingly so
    statistics classify the packet by the path it actually takes).
    """
    dst_router = topology.terminal_router(dst_terminal)
    src_group = topology.group_of(src_router)
    dst_group = topology.group_of(dst_router)
    if topology.g < 2 or src_group == dst_group:
        return minimal_plan(topology, rng, src_router, dst_terminal)
    if intermediate_group is None:
        intermediate_group = rng.randrange(topology.g - 1)
        if intermediate_group >= src_group:
            intermediate_group += 1
    if intermediate_group == src_group:
        raise ValueError("intermediate group must differ from the source group")
    if intermediate_group == dst_group:
        return minimal_plan(topology, rng, src_router, dst_terminal)
    gc1 = _pick_best_link(
        topology.group_links(src_group, intermediate_group), rng, src_router
    )
    gc2 = _pick_best_link(
        topology.group_links(intermediate_group, dst_group),
        rng,
        gc1.dst_router,
        dst_router,
    )
    return RoutePlan(minimal=False, gc1=gc1, gc2=gc2)


def plan_hops(
    topology: Dragonfly,
    src_router: int,
    dst_terminal: int,
    plan: RoutePlan,
) -> int:
    """Router-to-router channel traversals of a plan (UGAL's hop count)."""
    dst_router = topology.terminal_router(dst_terminal)
    hops = 0
    position = src_router
    for link in (plan.gc1, plan.gc2):
        if link is None:
            continue
        if position != link.src_router:
            hops += 1  # local hop to the channel's source router
        hops += 1  # the global channel
        position = link.dst_router
    if position != dst_router:
        hops += 1  # final local hop
    return hops


def next_hop(
    topology: Dragonfly,
    router: int,
    plan: RoutePlan,
    global_hops_taken: int,
    dst_terminal: int,
    assignment: vcs.VcAssignment = vcs.CANONICAL,
) -> Tuple[int, int]:
    """(output port, VC) for a flit of this plan at ``router``.

    ``global_hops_taken`` tracks route progress; ejection returns the
    destination's terminal port with VC 0.  ``assignment`` selects the VC
    assignment; the default is the canonical Figure 7 assignment.  The
    static certifier (:mod:`repro.check.cdg`) re-executes routes through
    this very function with candidate assignments, so what it certifies
    is the code path the simulator runs.
    """
    minimal = plan.minimal
    if plan.gc1 is not None and global_hops_taken == 0:
        link = plan.gc1
        if router == link.src_router:
            return link.src_port, assignment.global_vc(minimal, 0)
        return (
            topology.local_port(router, link.src_router),
            assignment.local_vc(minimal, 0),
        )
    if plan.gc2 is not None and global_hops_taken == 1:
        link = plan.gc2
        if router == link.src_router:
            return link.src_port, assignment.global_vc(minimal, 1)
        return (
            topology.local_port(router, link.src_router),
            assignment.local_vc(minimal, 1),
        )
    dst_router = topology.terminal_router(dst_terminal)
    if router == dst_router:
        return topology.terminal_port(dst_terminal), 0
    # Final local hop (also the only hop of intra-group routes): highest VC.
    return topology.local_port(router, dst_router), assignment.final_local_vc


def walk_route(
    topology: Dragonfly,
    src_router: int,
    dst_terminal: int,
    plan: RoutePlan,
    assignment: vcs.VcAssignment = vcs.CANONICAL,
) -> List[Tuple[int, int, int]]:
    """Full (router, out_port, vc) trace of a plan, ending at ejection.

    Used by tests, analytics and the static certifier; the simulator
    executes hops lazily.
    """
    trace = []
    router = src_router
    global_hops = 0
    for _ in range(2 * 5 + 2):  # generous bound; routes have <= 5 hops
        port, vc = next_hop(
            topology, router, plan, global_hops, dst_terminal, assignment
        )
        trace.append((router, port, vc))
        if topology.is_terminal_port(port):
            return trace
        channel = topology.fabric.out_channel(router, port)
        assert channel is not None
        if topology.is_global_port(port):
            global_hops += 1
        router = channel.dst.router
    raise TopologyError("route failed to terminate (routing bug)")
