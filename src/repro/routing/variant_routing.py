"""Routing algorithms for Figure 6 group-variant dragonflies."""

from __future__ import annotations

import random
from typing import Tuple

from ..network.packet import RoutePlan
from ..topology.group_variants import FlattenedButterflyGroupDragonfly
from .base import CongestionView, RoutingAlgorithm
from .variant_paths import (
    variant_minimal_plan,
    variant_next_hop,
    variant_plan_hops,
    variant_valiant_plan,
)


class _VariantRouting(RoutingAlgorithm):
    def next_hop(
        self,
        topology: FlattenedButterflyGroupDragonfly,
        router: int,
        plan: RoutePlan,
        progress: int,
        dst_terminal: int,
    ) -> Tuple[int, int, int]:
        return variant_next_hop(topology, router, plan, progress, dst_terminal)


class VariantMinimalRouting(_VariantRouting):
    name = "VAR-MIN"

    def decide(
        self,
        view: CongestionView,
        topology: FlattenedButterflyGroupDragonfly,
        rng: random.Random,
        src_router: int,
        dst_terminal: int,
    ) -> RoutePlan:
        return variant_minimal_plan(topology, rng, src_router, dst_terminal)


class VariantValiantRouting(_VariantRouting):
    name = "VAR-VAL"

    def decide(
        self,
        view: CongestionView,
        topology: FlattenedButterflyGroupDragonfly,
        rng: random.Random,
        src_router: int,
        dst_terminal: int,
    ) -> RoutePlan:
        return variant_valiant_plan(topology, rng, src_router, dst_terminal)


class VariantUgalL(_VariantRouting):
    """UGAL-L on a group-variant dragonfly (local queue information)."""

    name = "VAR-UGAL-L"

    def decide(
        self,
        view: CongestionView,
        topology: FlattenedButterflyGroupDragonfly,
        rng: random.Random,
        src_router: int,
        dst_terminal: int,
    ) -> RoutePlan:
        dst_router = topology.terminal_router(dst_terminal)
        if topology.group_of(src_router) == topology.group_of(dst_router):
            return variant_minimal_plan(topology, rng, src_router, dst_terminal)
        min_plan = variant_minimal_plan(topology, rng, src_router, dst_terminal)
        nm_plan = variant_valiant_plan(topology, rng, src_router, dst_terminal)
        if nm_plan.minimal:
            return min_plan
        hops_min = variant_plan_hops(topology, src_router, dst_terminal, min_plan)
        hops_nm = variant_plan_hops(topology, src_router, dst_terminal, nm_plan)
        port_min, _, _ = variant_next_hop(topology, src_router, min_plan, 0, dst_terminal)
        port_nm, _, _ = variant_next_hop(topology, src_router, nm_plan, 0, dst_terminal)
        q_min = view.output_occupancy(src_router, port_min)
        q_nm = view.output_occupancy(src_router, port_nm)
        if q_min * hops_min <= q_nm * hops_nm:
            return min_plan
        return nm_plan


def make_variant_routing(name: str) -> RoutingAlgorithm:
    algorithms = {
        "VAR-MIN": VariantMinimalRouting,
        "VAR-VAL": VariantValiantRouting,
        "VAR-UGAL-L": VariantUgalL,
    }
    if name not in algorithms:
        raise ValueError(
            f"unknown variant routing {name!r}; choose from {sorted(algorithms)}"
        )
    return algorithms[name]()
