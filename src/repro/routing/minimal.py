"""Minimal (MIN) routing -- Section 4.1 / 4.2.

Every packet takes the 3-step minimal route: at most one local hop to a
router with a global channel to the destination group, the global
channel, and at most one local hop to the destination router.  Optimal
for benign traffic; throughput collapses to ``1/(ah)`` on the worst-case
pattern because a whole group's traffic funnels onto one global channel.
"""

from __future__ import annotations

import random

from ..network.packet import RoutePlan
from ..topology.dragonfly import Dragonfly
from .base import CongestionView, RoutingAlgorithm
from .paths import minimal_plan


class MinimalRouting(RoutingAlgorithm):
    name = "MIN"
    kernel_decide = "min"

    def decide(
        self,
        view: CongestionView,
        topology: Dragonfly,
        rng: random.Random,
        src_router: int,
        dst_terminal: int,
    ) -> RoutePlan:
        return minimal_plan(topology, rng, src_router, dst_terminal)
