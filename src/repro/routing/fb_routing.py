"""Routing algorithms for the flattened butterfly (extension).

The same MIN / VAL / UGAL-L trio the dragonfly paper evaluates, applied
to its comparison topology (as in the flattened butterfly paper, Kim et
al. ISCA 2007).  UGAL-G is not provided: on the flattened butterfly the
congested channel is attached to the *source* router itself (DOR's first
hop), so local queue state is no longer indirect -- which is exactly the
contrast the dragonfly paper draws.
"""

from __future__ import annotations

import random
from typing import Tuple

from ..topology.flattened_butterfly import FlattenedButterfly
from .base import CongestionView, RoutingAlgorithm
from .fb_paths import (
    FbRoutePlan,
    fb_minimal_plan,
    fb_next_hop,
    fb_plan_hops,
    fb_valiant_plan,
)


class _FbRouting(RoutingAlgorithm):
    """Shared executor for flattened-butterfly algorithms."""

    def next_hop(
        self,
        topology: FlattenedButterfly,
        router: int,
        plan: FbRoutePlan,
        progress: int,
        dst_terminal: int,
    ) -> Tuple[int, int, int]:
        return fb_next_hop(topology, router, plan, progress, dst_terminal)


class FbMinimalRouting(_FbRouting):
    """Dimension-order minimal routing."""

    name = "FB-MIN"

    def decide(
        self,
        view: CongestionView,
        topology: FlattenedButterfly,
        rng: random.Random,
        src_router: int,
        dst_terminal: int,
    ) -> FbRoutePlan:
        return fb_minimal_plan()


class FbValiantRouting(_FbRouting):
    """Router-level Valiant routing."""

    name = "FB-VAL"

    def decide(
        self,
        view: CongestionView,
        topology: FlattenedButterfly,
        rng: random.Random,
        src_router: int,
        dst_terminal: int,
    ) -> FbRoutePlan:
        return fb_valiant_plan(topology, rng, src_router, dst_terminal)


class FbUgalL(_FbRouting):
    """UGAL with local queue information on the flattened butterfly.

    Chooses between the DOR route and one sampled Valiant route by
    comparing first-hop queue occupancy weighted by hop count -- the
    same rule as on the dragonfly, but here the relevant queues live on
    the source router, so local information is *direct*.
    """

    name = "FB-UGAL-L"

    def decide(
        self,
        view: CongestionView,
        topology: FlattenedButterfly,
        rng: random.Random,
        src_router: int,
        dst_terminal: int,
    ) -> FbRoutePlan:
        dst_router = topology.terminal_router(dst_terminal)
        if src_router == dst_router:
            return fb_minimal_plan()
        min_plan = fb_minimal_plan()
        nm_plan = fb_valiant_plan(topology, rng, src_router, dst_terminal)
        if nm_plan.minimal:
            return min_plan
        hops_min = fb_plan_hops(topology, src_router, dst_terminal, min_plan)
        hops_nm = fb_plan_hops(topology, src_router, dst_terminal, nm_plan)
        port_min, _, _ = fb_next_hop(topology, src_router, min_plan, 0, dst_terminal)
        port_nm, _, _ = fb_next_hop(topology, src_router, nm_plan, 0, dst_terminal)
        q_min = view.output_occupancy(src_router, port_min)
        q_nm = view.output_occupancy(src_router, port_nm)
        if q_min * hops_min <= q_nm * hops_nm:
            return min_plan
        return nm_plan


def make_fb_routing(name: str) -> RoutingAlgorithm:
    algorithms = {
        "FB-MIN": FbMinimalRouting,
        "FB-VAL": FbValiantRouting,
        "FB-UGAL-L": FbUgalL,
    }
    if name not in algorithms:
        raise ValueError(
            f"unknown flattened-butterfly routing {name!r}; "
            f"choose from {sorted(algorithms)}"
        )
    return algorithms[name]()
