"""Routing for the folded Clos (extension).

Up*/down* routing: a packet climbs to the nearest common ancestor level
of its source and destination leaves, then descends deterministically
(each level's down port is the destination leaf's digit).  The up path
is where route freedom lives:

* ``CLOS-RAND`` draws the up port at every level uniformly at random
  (Valiant-style load balancing; the non-blocking behaviour high-radix
  folded-Clos machines like BlackWidow rely on, cf. the paper's ref
  [13] and [26]);
* ``CLOS-DET`` uses destination-based up ports (d-mod-k routing),
  which concentrates adversarial permutations onto single links -- the
  contrast that motivates randomised/adaptive up-routing.

Up/down routing is deadlock-free on one VC (a route never turns upward
after descending).

``progress`` encoding for the executor: 0 = ascending, 1 = descending.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..topology.folded_clos import FoldedClos
from .base import CongestionView, RoutingAlgorithm
from .grammar import ChannelClass, PathGrammar, RouteClass, Segment


@dataclass
class ClosRoutePlan:
    """Per-packet decision: how high to climb and through which ports."""

    minimal: bool
    ancestor_level: int
    #: Up port choice (0..d-1) for each level below ``ancestor_level``.
    up_ports: Tuple[int, ...]

    @property
    def num_global_hops(self) -> int:
        return 0  # interface parity with the dragonfly plan


def clos_plan(
    topology: FoldedClos,
    rng: Optional[random.Random],
    src_router: int,
    dst_terminal: int,
    deterministic: bool = False,
) -> ClosRoutePlan:
    """Build an up*/down* plan from a leaf switch.

    ``deterministic`` selects d-mod-k up ports (the destination's own
    digits); otherwise up ports are drawn uniformly.
    """
    src_leaf = topology.index_of(src_router)
    dst_leaf = topology.terminal_router(dst_terminal)  # leaves are level 0
    ancestor = topology.ancestor_level(src_leaf, dst_leaf)
    if deterministic:
        digits = topology.digits_of_leaf(dst_leaf)
        up_ports = tuple(digits[:ancestor])
    else:
        assert rng is not None
        up_ports = tuple(rng.randrange(topology.down) for _ in range(ancestor))
    return ClosRoutePlan(minimal=True, ancestor_level=ancestor, up_ports=up_ports)


def clos_next_hop(
    topology: FoldedClos,
    router: int,
    plan: ClosRoutePlan,
    progress: int,
    dst_terminal: int,
) -> Tuple[int, int, int]:
    """(out_port, out_vc, next_progress) for up*/down* execution."""
    down = topology.down
    level = topology.level_of(router)
    dst_leaf = topology.terminal_router(dst_terminal)
    if level == 0 and router == dst_leaf and (
        plan.ancestor_level == 0 or progress == 1
    ):
        return topology.terminal_port(dst_terminal), 0, progress
    if progress == 0 and level < plan.ancestor_level:
        next_progress = 1 if level + 1 == plan.ancestor_level else 0
        return down + plan.up_ports[level], 0, next_progress
    # Descending: the down port at level l is the destination leaf's
    # digit (l-1).
    digit = topology.digits_of_leaf(dst_leaf)[level - 1]
    return digit, 0, 1


def clos_path_grammar(levels: int) -> PathGrammar:
    """Channel-class structure of up*/down* routes on an ``L``-level Clos.

    Parameterised over the level count only (the per-level switch counts
    and port radix never enter the abstraction).  Classes are (direction,
    level boundary) on the single VC; a route climbs a prefix of the up
    segments to its ancestor level and descends the matching suffix of
    the down segments, so every segment is optional and every dependency
    strictly advances the up-then-down rank -- the structural reason
    up*/down* needs no virtual channels at all.
    """
    segments = []
    for level in range(levels - 1):
        segments.append(Segment(
            ChannelClass("up", 0, f"level{level}->{level + 1}"),
            optional=True,
        ))
    for level in range(levels - 1, 0, -1):
        segments.append(Segment(
            ChannelClass("down", 0, f"level{level}->{level - 1}"),
            optional=True,
        ))
    return PathGrammar(
        name=f"folded-clos-{levels}level@updown",
        num_vcs=1,
        route_classes=(RouteClass("up*/down*", tuple(segments)),),
    )


def clos_walk_route(
    topology: FoldedClos,
    src_router: int,
    dst_terminal: int,
    plan: ClosRoutePlan,
) -> List[Tuple[int, int, int]]:
    """Full (router, port, vc) trace of a plan."""
    trace = []
    router = src_router
    progress = 0
    for _ in range(2 * topology.levels + 2):
        port, vc, progress = clos_next_hop(
            topology, router, plan, progress, dst_terminal
        )
        trace.append((router, port, vc))
        channel = topology.fabric.out_channel(router, port)
        if channel is None:
            return trace
        router = channel.dst.router
    raise AssertionError("folded-Clos route failed to terminate")


class _ClosRouting(RoutingAlgorithm):
    deterministic = False

    def next_hop(
        self,
        topology: FoldedClos,
        router: int,
        plan: ClosRoutePlan,
        progress: int,
        dst_terminal: int,
    ) -> Tuple[int, int, int]:
        return clos_next_hop(topology, router, plan, progress, dst_terminal)

    def decide(
        self,
        view: CongestionView,
        topology: FoldedClos,
        rng: random.Random,
        src_router: int,
        dst_terminal: int,
    ) -> ClosRoutePlan:
        return clos_plan(
            topology, rng, src_router, dst_terminal,
            deterministic=self.deterministic,
        )


class ClosRandomRouting(_ClosRouting):
    """Random up port per level (load-balanced, non-blocking)."""

    name = "CLOS-RAND"
    deterministic = False


class ClosDeterministicRouting(_ClosRouting):
    """Destination-based (d-mod-k) up ports."""

    name = "CLOS-DET"
    deterministic = True


def make_clos_routing(name: str) -> RoutingAlgorithm:
    algorithms = {
        "CLOS-RAND": ClosRandomRouting,
        "CLOS-DET": ClosDeterministicRouting,
    }
    if name not in algorithms:
        raise ValueError(
            f"unknown folded-Clos routing {name!r}; choose from {sorted(algorithms)}"
        )
    return algorithms[name]()
