"""Route plans and execution for the flattened butterfly.

An extension beyond the paper's simulations (which cover the dragonfly
only): the same simulator drives the paper's main comparison topology, so
dragonfly-vs-flattened-butterfly claims can be checked in simulation and
not just in the cost model.

Minimal routing is dimension order (DOR): correct one differing
coordinate at a time, one hop per dimension.  Non-minimal routing applies
Valiant's algorithm at the router level -- DOR to a random intermediate
router, then DOR to the destination -- using one VC per phase for
deadlock freedom (DOR itself is acyclic within a phase; the phase index
only ever increases).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..topology.flattened_butterfly import FlattenedButterfly
from .grammar import ChannelClass, PathGrammar, RouteClass, Segment


@dataclass
class FbRoutePlan:
    """Per-packet decision on a flattened butterfly.

    ``progress`` semantics for the executor: phase 0 heads to the
    intermediate router (Valiant only), phase 1 to the destination.
    """

    minimal: bool
    intermediate_router: Optional[int] = None

    @property
    def num_global_hops(self) -> int:
        # Reported for interface parity with the dragonfly plan.
        return 0


def fb_minimal_plan() -> FbRoutePlan:
    return FbRoutePlan(minimal=True)


def fb_valiant_plan(
    topology: FlattenedButterfly,
    rng: random.Random,
    src_router: int,
    dst_terminal: int,
    intermediate_router: Optional[int] = None,
) -> FbRoutePlan:
    """Valiant route via a random intermediate router.

    Degenerates to the minimal plan when the draw lands on the source or
    destination router.
    """
    dst_router = topology.terminal_router(dst_terminal)
    if intermediate_router is None:
        intermediate_router = rng.randrange(topology.num_routers)
    if intermediate_router in (src_router, dst_router):
        return fb_minimal_plan()
    return FbRoutePlan(minimal=False, intermediate_router=intermediate_router)


def fb_plan_hops(
    topology: FlattenedButterfly,
    src_router: int,
    dst_terminal: int,
    plan: FbRoutePlan,
) -> int:
    """Channel hops of a plan (Hamming distances of its DOR phases)."""
    dst_router = topology.terminal_router(dst_terminal)
    if plan.minimal or plan.intermediate_router is None:
        return _hamming(topology, src_router, dst_router)
    return _hamming(topology, src_router, plan.intermediate_router) + _hamming(
        topology, plan.intermediate_router, dst_router
    )


def _hamming(topology: FlattenedButterfly, router_a: int, router_b: int) -> int:
    coords_a = topology.coords_of(router_a)
    coords_b = topology.coords_of(router_b)
    return sum(1 for a, b in zip(coords_a, coords_b) if a != b)


def fb_next_hop(
    topology: FlattenedButterfly,
    router: int,
    plan: FbRoutePlan,
    progress: int,
    dst_terminal: int,
) -> Tuple[int, int, int]:
    """(out_port, out_vc, next_progress) of dimension-order execution."""
    dst_router = topology.terminal_router(dst_terminal)
    phase = progress
    if (
        not plan.minimal
        and phase == 0
        and router == plan.intermediate_router
    ):
        phase = 1  # reached the intermediate router; head for home
    heading_home = plan.minimal or phase >= 1 or plan.intermediate_router is None
    target = dst_router if heading_home else plan.intermediate_router
    if router == target:
        # Only reachable when the target is the destination (arriving at
        # the intermediate flips the phase above).
        terminal = topology.fabric.terminals[dst_terminal]
        return terminal.port, 0, phase
    src_coords = topology.coords_of(router)
    dst_coords = topology.coords_of(target)
    for dim, (src_coord, dst_coord) in enumerate(zip(src_coords, dst_coords)):
        if src_coord != dst_coord:
            port = topology.dim_port(router, dim, dst_coord)
            return port, phase, phase
    raise AssertionError("router == target was handled above")


#: Witness order for DOR walks: each phase corrects coordinates in
#: ascending dimension index, one hop per dimension, so consecutive hops
#: within a phase strictly ascend the dimensions.
_DOR_ORDER = "DOR dimension index"


def fb_path_grammar(include_nonminimal: bool = True) -> PathGrammar:
    """Channel-class structure of flattened-butterfly routes.

    Instance-independent over any dimension vector and concentration:
    a minimal route is one DOR walk on VC0; a Valiant route is a DOR
    walk to the intermediate router on VC0 followed by a DOR walk home
    on VC1 (:func:`fb_next_hop` uses ``vc = phase``).  Both phases of a
    (non-degenerate) Valiant route take at least one hop -- plans whose
    intermediate draw collides with an endpoint collapse to the minimal
    plan before routing starts.
    """
    route_classes = [
        RouteClass(
            "minimal (DOR)",
            (Segment(
                ChannelClass("local", 0, "phase0"),
                optional=True, multi_hop=True, order=_DOR_ORDER,
            ),),
        ),
    ]
    if include_nonminimal:
        route_classes.append(RouteClass(
            "valiant (DOR x2)",
            (
                Segment(
                    ChannelClass("local", 0, "phase0"),
                    multi_hop=True, order=_DOR_ORDER,
                ),
                Segment(
                    ChannelClass("local", 1, "phase1"),
                    multi_hop=True, order=_DOR_ORDER,
                ),
            ),
        ))
    return PathGrammar(
        name="flattened-butterfly@phase-vcs",
        num_vcs=2 if include_nonminimal else 1,
        route_classes=tuple(route_classes),
    )


def fb_walk_route(
    topology: FlattenedButterfly,
    src_router: int,
    dst_terminal: int,
    plan: FbRoutePlan,
) -> List[Tuple[int, int, int]]:
    """Full (router, port, vc) trace of a plan (tests and analytics)."""
    trace = []
    router = src_router
    progress = 0
    bound = 2 * len(topology.dims) + 2
    for _ in range(bound):
        port, vc, progress = fb_next_hop(topology, router, plan, progress, dst_terminal)
        trace.append((router, port, vc))
        channel = topology.fabric.out_channel(router, port)
        if channel is None:
            return trace  # ejected
        router = channel.dst.router
    raise AssertionError("flattened-butterfly route failed to terminate")
