"""The UGAL family of global adaptive routing algorithms (Section 4.2/4.3).

UGAL chooses between the minimal route and one sampled Valiant route on a
packet-by-packet basis, estimating the delay of each candidate as
``queue_occupancy x hop_count`` and picking the smaller:

    if q_m * H_m <= q_nm * H_nm:  route minimally
    else:                         route non-minimally

The variants differ only in *which queue* supplies ``q``:

``UGAL-L``
    Occupancy of the candidate's first-hop output port at the source
    router (all VCs).  Realisable, but the dragonfly makes this signal
    *indirect*: the congested queue is a global channel on a different
    router, sensed only after backpressure fills the local buffers --
    limited throughput (Problem I) and high intermediate latency
    (Problem II).
``UGAL-G``
    Occupancy of the candidate's *global channel* at the router that owns
    it -- an ideal oracle requiring knowledge of remote queues.
``UGAL-L_VC``
    As UGAL-L but reading only the candidate's first-hop VC (VC1 carries
    minimal, VC0 non-minimal traffic), separating the two classes when
    they share an output port.  Fixes WC throughput, loses ~30% UR
    throughput (a single VC is a poor congestion proxy when most traffic
    is minimal).
``UGAL-L_VCH``
    Hybrid: per-VC occupancies only when the two candidates share the
    first-hop output port, whole-port occupancies otherwise.  Matches
    UGAL-G throughput on both UR and WC.
``UGAL-L_CR``
    UGAL-L_VCH plus the credit round-trip latency mechanism (Section
    4.3.2): the simulator measures credit round-trip time per output,
    and delays returned credits by the excess over the zero-load value,
    which stiffens backpressure so congestion is sensed without filling
    entire buffers.  Fixes the intermediate-latency spike; behaviour
    becomes independent of buffer depth.
"""

from __future__ import annotations

import random
from typing import Tuple

from ..network.packet import RoutePlan
from ..topology.dragonfly import Dragonfly
from .base import CongestionView, RoutingAlgorithm
from .paths import (
    _minimal_plan_between,
    _valiant_plan_between,
    minimal_plan,
    next_hop,
)


class _UgalBase(RoutingAlgorithm):
    """Shared candidate construction and comparison logic."""

    kernel_decide = "ugal"

    @staticmethod
    def _first_hop(
        topology: Dragonfly,
        src_router: int,
        plan: RoutePlan,
        dst_terminal: int,
    ) -> Tuple[int, int]:
        """Memoised ``next_hop(topology, src_router, plan, 0, dst)``.

        When source and destination group differ (the only case that
        reaches ``_occupancies``), the first hop is the executor's gc1
        phase -- a pure function of (plan contents, source router),
        independent of the destination terminal.  The cache lives on
        the plan itself (``RoutePlan.first_hops``), so entries can
        never be confused across topologies or outlive the plan.
        """
        if plan.gc1 is None:
            return next_hop(topology, src_router, plan, 0, dst_terminal)
        cache = plan.first_hops
        if cache is None:
            cache = plan.first_hops = {}
        hop = cache.get(src_router)
        if hop is None:
            hop = next_hop(topology, src_router, plan, 0, dst_terminal)
            cache[src_router] = hop
        return hop

    def decide(
        self,
        view: CongestionView,
        topology: Dragonfly,
        rng: random.Random,
        src_router: int,
        dst_terminal: int,
    ) -> RoutePlan:
        dst_router = topology.terminal_router(dst_terminal)
        # group_of, inlined: every group-structured topology here defines
        # it as integer division by the group size ``a``.
        a = topology.a
        src_group = src_router // a
        dst_group = dst_router // a
        if src_group == dst_group:
            return minimal_plan(topology, rng, src_router, dst_terminal)
        min_candidate = _minimal_plan_between(
            topology, rng, src_router, dst_router, src_group, dst_group
        )
        nm_candidate = _valiant_plan_between(
            topology, rng, src_router, dst_router, src_group, dst_group
        )
        if nm_candidate.minimal:
            # The sampled intermediate group was the destination group;
            # the "non-minimal" candidate is the minimal route.
            return min_candidate
        # plan_hops, unrolled: both candidates are inter-group, so the
        # minimal route has gc1 and the non-degenerate Valiant route has
        # gc1 and gc2 -- the hop counts reduce to endpoint comparisons.
        gc_min = min_candidate.gc1
        hops_min = (
            1
            + (gc_min.src_router != src_router)
            + (gc_min.dst_router != dst_router)
        )
        gc_nm1 = nm_candidate.gc1
        gc_nm2 = nm_candidate.gc2
        hops_nm = (
            2
            + (gc_nm1.src_router != src_router)
            + (gc_nm1.dst_router != gc_nm2.src_router)
            + (gc_nm2.dst_router != dst_router)
        )
        q_min, q_nm = self._occupancies(
            view, topology, src_router, dst_terminal, min_candidate, nm_candidate
        )
        if q_min * hops_min <= q_nm * hops_nm:
            return min_candidate
        return nm_candidate

    def _occupancies(
        self,
        view: CongestionView,
        topology: Dragonfly,
        src_router: int,
        dst_terminal: int,
        min_candidate: RoutePlan,
        nm_candidate: RoutePlan,
    ) -> Tuple[int, int]:
        raise NotImplementedError


class UgalL(_UgalBase):
    """UGAL with local whole-port queue information (conventional UGAL)."""

    name = "UGAL-L"
    kernel_signal = "port"

    def _occupancies(self, view, topology, src_router, dst_terminal,
                     min_candidate, nm_candidate):
        port_min, _ = self._first_hop(topology, src_router, min_candidate, dst_terminal)
        port_nm, _ = self._first_hop(topology, src_router, nm_candidate, dst_terminal)
        return (
            view.output_occupancy(src_router, port_min),
            view.output_occupancy(src_router, port_nm),
        )


class UgalG(_UgalBase):
    """Ideal UGAL: reads the candidate global channels' queues directly."""

    name = "UGAL-G"
    kernel_signal = "remote"

    def _occupancies(self, view, topology, src_router, dst_terminal,
                     min_candidate, nm_candidate):
        assert min_candidate.gc1 is not None and nm_candidate.gc1 is not None
        gc_min = min_candidate.gc1
        gc_nm = nm_candidate.gc1
        return (
            view.output_occupancy(gc_min.src_router, gc_min.src_port),
            view.output_occupancy(gc_nm.src_router, gc_nm.src_port),
        )


class UgalLVc(_UgalBase):
    """UGAL-L with per-VC queue discrimination on every decision."""

    name = "UGAL-L_VC"
    kernel_signal = "vc"

    def _occupancies(self, view, topology, src_router, dst_terminal,
                     min_candidate, nm_candidate):
        port_min, vc_min = self._first_hop(topology, src_router, min_candidate, dst_terminal)
        port_nm, vc_nm = self._first_hop(topology, src_router, nm_candidate, dst_terminal)
        return (
            view.output_vc_occupancy(src_router, port_min, vc_min),
            view.output_vc_occupancy(src_router, port_nm, vc_nm),
        )


class UgalLVcH(_UgalBase):
    """Hybrid: per-VC occupancy only when the candidates share a port."""

    name = "UGAL-L_VCH"
    kernel_signal = "vc_hybrid"

    def _occupancies(self, view, topology, src_router, dst_terminal,
                     min_candidate, nm_candidate):
        port_min, vc_min = self._first_hop(topology, src_router, min_candidate, dst_terminal)
        port_nm, vc_nm = self._first_hop(topology, src_router, nm_candidate, dst_terminal)
        if port_min == port_nm:
            return (
                view.output_vc_occupancy(src_router, port_min, vc_min),
                view.output_vc_occupancy(src_router, port_nm, vc_nm),
            )
        return (
            view.output_occupancy(src_router, port_min),
            view.output_occupancy(src_router, port_nm),
        )


class UgalLCr(UgalLVcH):
    """UGAL-L_VCH + credit round-trip latency backpressure (UGAL-L_CR)."""

    name = "UGAL-L_CR"
    needs_credit_delay = True


def make_routing(name: str) -> RoutingAlgorithm:
    """Factory by paper name, e.g. ``make_routing("UGAL-L_CR")``.

    ``TBL-MIN`` simulates minimal routing off detour-recompiled
    forwarding tables on the healthy fabric; ``TBL-MIN/gcK`` degrades
    the fabric first by severing K disjoint group pairs (the canonical
    degradation of :func:`repro.topology.faults.canonical_global_faults`)
    -- the executor of the fault-sweep experiment.
    """
    from .minimal import MinimalRouting
    from .valiant import ValiantRouting

    if name == "TBL-MIN" or name.startswith("TBL-MIN/gc"):
        from .tables import DegradedTableRouting

        fault_pairs = 0
        if name != "TBL-MIN":
            suffix = name[len("TBL-MIN/gc"):]
            if not suffix.isdigit():
                raise ValueError(
                    f"unknown routing algorithm {name!r}; degraded table "
                    "routings are named TBL-MIN or TBL-MIN/gcK for an "
                    "integer number K of severed group pairs"
                )
            fault_pairs = int(suffix)
        return DegradedTableRouting(fault_pairs=fault_pairs)

    algorithms = {
        "MIN": MinimalRouting,
        "VAL": ValiantRouting,
        "UGAL-L": UgalL,
        "UGAL-G": UgalG,
        "UGAL-L_VC": UgalLVc,
        "UGAL-L_VCH": UgalLVcH,
        "UGAL-L_CR": UgalLCr,
    }
    if name not in algorithms:
        raise ValueError(
            f"unknown routing algorithm {name!r}; choose from "
            f"{sorted(algorithms) + ['TBL-MIN', 'TBL-MIN/gcK']}"
        )
    return algorithms[name]()
