"""Route plans and execution for Figure 6 group-variant dragonflies.

The dragonfly's routing (Section 4.1) generalises directly when the
intra-group network is an n-dimensional flattened butterfly instead of a
complete graph: "route within the group" becomes a dimension-order walk
of up to ``n`` local hops.  The VC assignment of Figure 7 carries over
with one refinement -- all DOR hops of one local segment share that
segment's VC, which stays deadlock-free because intra-group DOR is
acyclic on its own.

Plans reuse the canonical :class:`~repro.network.packet.RoutePlan`
(``gc1``/``gc2`` global links), so the UGAL decision structure and the
statistics pipeline apply unchanged.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..core.params import TopologyError
from ..network.packet import RoutePlan
from ..topology.dragonfly import GlobalLink
from ..topology.group_variants import FlattenedButterflyGroupDragonfly
from . import vc_assignment as vcs
from .grammar import ChannelClass, PathGrammar, RouteClass, Segment

Variant = FlattenedButterflyGroupDragonfly


def _pick_best_link(
    topology: Variant,
    links: List[GlobalLink],
    rng: random.Random,
    src_router: int,
    dst_router: Optional[int] = None,
) -> GlobalLink:
    """Pick the link minimising intra-group DOR hops, random tie-break."""
    if not links:
        raise TopologyError("no global link between the requested groups")

    def score(link: GlobalLink) -> int:
        extra = topology.intra_group_hops(src_router, link.src_router)
        if dst_router is not None:
            extra += topology.intra_group_hops(link.dst_router, dst_router)
        return extra

    best = min(score(link) for link in links)
    candidates = [link for link in links if score(link) == best]
    return candidates[rng.randrange(len(candidates))]


def variant_minimal_plan(
    topology: Variant,
    rng: random.Random,
    src_router: int,
    dst_terminal: int,
) -> RoutePlan:
    dst_router = topology.terminal_router(dst_terminal)
    src_group = topology.group_of(src_router)
    dst_group = topology.group_of(dst_router)
    if src_group == dst_group:
        return RoutePlan(minimal=True)
    links = topology.group_links(src_group, dst_group)
    return RoutePlan(
        minimal=True,
        gc1=_pick_best_link(topology, links, rng, src_router, dst_router),
    )


def variant_valiant_plan(
    topology: Variant,
    rng: random.Random,
    src_router: int,
    dst_terminal: int,
    intermediate_group: Optional[int] = None,
) -> RoutePlan:
    dst_router = topology.terminal_router(dst_terminal)
    src_group = topology.group_of(src_router)
    dst_group = topology.group_of(dst_router)
    if topology.g < 2 or src_group == dst_group:
        return variant_minimal_plan(topology, rng, src_router, dst_terminal)
    if intermediate_group is None:
        intermediate_group = rng.randrange(topology.g - 1)
        if intermediate_group >= src_group:
            intermediate_group += 1
    if intermediate_group == src_group:
        raise ValueError("intermediate group must differ from the source group")
    if intermediate_group == dst_group:
        return variant_minimal_plan(topology, rng, src_router, dst_terminal)
    gc1 = _pick_best_link(
        topology,
        topology.group_links(src_group, intermediate_group),
        rng,
        src_router,
    )
    gc2 = _pick_best_link(
        topology,
        topology.group_links(intermediate_group, dst_group),
        rng,
        gc1.dst_router,
        dst_router,
    )
    return RoutePlan(minimal=False, gc1=gc1, gc2=gc2)


def variant_plan_hops(
    topology: Variant,
    src_router: int,
    dst_terminal: int,
    plan: RoutePlan,
) -> int:
    """Channel traversals including the multi-hop local segments."""
    dst_router = topology.terminal_router(dst_terminal)
    hops = 0
    position = src_router
    for link in (plan.gc1, plan.gc2):
        if link is None:
            continue
        hops += topology.intra_group_hops(position, link.src_router)
        hops += 1  # the global channel
        position = link.dst_router
    hops += topology.intra_group_hops(position, dst_router)
    return hops


def _dor_port(topology: Variant, router: int, target_router: int) -> int:
    """First dimension-order hop within a group toward ``target_router``."""
    src_coords = topology.coords_of(router)
    dst_coords = topology.coords_of(target_router)
    for dim, (src_coord, dst_coord) in enumerate(zip(src_coords, dst_coords)):
        if src_coord != dst_coord:
            return topology.dim_port(router, dim, dst_coord)
    raise TopologyError("no local hop needed between identical routers")


def variant_next_hop(
    topology: Variant,
    router: int,
    plan: RoutePlan,
    progress: int,
    dst_terminal: int,
    assignment: vcs.VcAssignment = vcs.CANONICAL,
) -> Tuple[int, int, int]:
    """(out_port, out_vc, next_progress); progress = global hops taken."""
    minimal = plan.minimal
    if plan.gc1 is not None and progress == 0:
        link = plan.gc1
        if router == link.src_router:
            return link.src_port, assignment.global_vc(minimal, 0), progress + 1
        return (
            _dor_port(topology, router, link.src_router),
            assignment.local_vc(minimal, 0),
            progress,
        )
    if plan.gc2 is not None and progress == 1:
        link = plan.gc2
        if router == link.src_router:
            return link.src_port, assignment.global_vc(minimal, 1), progress + 1
        return (
            _dor_port(topology, router, link.src_router),
            assignment.local_vc(minimal, 1),
            progress,
        )
    dst_router = topology.terminal_router(dst_terminal)
    if router == dst_router:
        return topology.terminal_port(dst_terminal), 0, progress
    return _dor_port(topology, router, dst_router), assignment.final_local_vc, progress


#: Witness order for intra-group DOR walks: dimension-order routing
#: corrects one coordinate at a time in ascending dimension index, so
#: consecutive hops of one local segment strictly ascend the dimensions
#: -- the intra-class dependencies of a local segment cannot cycle.
_DOR_ORDER = "intra-group DOR dimension index"


def variant_path_grammar(
    assignment: vcs.VcAssignment = vcs.CANONICAL,
    include_nonminimal: bool = True,
) -> PathGrammar:
    """Channel-class structure of the Figure 6 group-variant routes.

    Identical stage structure to
    :func:`repro.routing.paths.dragonfly_path_grammar`, except every
    local segment is a *multi-hop* dimension-order walk through the
    flattened-butterfly group sharing the segment's VC.  Those walks add
    intra-class (self) dependencies, witnessed acyclic by the DOR
    dimension order -- valid for **any** group dimensionality, which is
    exactly what lets one grammar cover the whole variant family.
    """
    final = ChannelClass("local", assignment.final_local_vc)

    def local(cls: ChannelClass) -> Segment:
        return Segment(cls, optional=True, multi_hop=True, order=_DOR_ORDER)

    route_classes = [
        RouteClass("intra-group", (local(final),)),
        RouteClass(
            "minimal",
            (
                local(ChannelClass("local", assignment.minimal_first_vc)),
                Segment(ChannelClass("global", assignment.minimal_first_vc)),
                local(final),
            ),
        ),
    ]
    if include_nonminimal and assignment.supports_nonminimal:
        route_classes.append(RouteClass(
            "nonminimal",
            (
                local(ChannelClass("local", assignment.nonminimal_first_vc)),
                Segment(ChannelClass("global", assignment.nonminimal_first_vc)),
                local(ChannelClass("local", assignment.intermediate_vc)),
                Segment(ChannelClass("global", assignment.intermediate_vc)),
                local(final),
            ),
        ))
    return PathGrammar(
        name=f"dragonfly-fbgroup@{assignment.name}",
        num_vcs=assignment.num_vcs,
        route_classes=tuple(route_classes),
    )


def variant_walk_route(
    topology: Variant,
    src_router: int,
    dst_terminal: int,
    plan: RoutePlan,
    assignment: vcs.VcAssignment = vcs.CANONICAL,
) -> List[Tuple[int, int, int]]:
    """Full (router, port, vc) trace of a plan."""
    trace = []
    router = src_router
    progress = 0
    bound = 3 * len(topology.group_dims) + 2 + 2
    for _ in range(bound * 2):
        port, vc, progress = variant_next_hop(
            topology, router, plan, progress, dst_terminal, assignment
        )
        trace.append((router, port, vc))
        channel = topology.fabric.out_channel(router, port)
        if channel is None:
            return trace
        router = channel.dst.router
    raise TopologyError("group-variant route failed to terminate")
