"""Routing-algorithm interface.

A routing algorithm makes one decision per packet, at the source router
(Section 4): minimal or non-minimal, and which global channel(s) to use.
Adaptive algorithms read congestion estimates through the narrow
:class:`CongestionView` interface the simulator implements, which is what
makes the local/global information distinction of the paper explicit:

* ``output_occupancy``/``output_vc_occupancy`` at the *source router* is
  the only information a realisable router has (UGAL-L and variants);
* reading the occupancy of a *remote* router's global port is the ideal
  UGAL-G oracle.
"""

from __future__ import annotations

import abc
import random
from typing import Any, Protocol, Tuple

from ..network.packet import RoutePlan
from ..topology.dragonfly import Dragonfly
from .paths import next_hop as _dragonfly_next_hop


class CongestionView(Protocol):
    """Queue-state queries the simulator exposes to routing algorithms."""

    def output_occupancy(self, router: int, out_port: int) -> int:
        """Flits committed to an output: queued here + downstream buffer."""
        ...

    def output_vc_occupancy(self, router: int, out_port: int, vc: int) -> int:
        """Per-VC component of :meth:`output_occupancy`."""
        ...


class ZeroCongestion:
    """A congestion view that always reports empty queues (for tests)."""

    def output_occupancy(self, router: int, out_port: int) -> int:
        return 0

    def output_vc_occupancy(self, router: int, out_port: int, vc: int) -> int:
        return 0


class RoutingAlgorithm(abc.ABC):
    """Per-packet routing decision maker."""

    #: Display name used by experiments and plots.
    name: str = "base"
    #: True for UGAL-L_CR: the simulator enables the credit round-trip
    #: congestion sensing and delayed-credit backpressure mechanism.
    needs_credit_delay: bool = False
    #: Decide-kernel lowering metadata (:mod:`repro.network.decide_kernel`).
    #: ``kernel_decide`` names the decision structure the batched kernel
    #: can reproduce ("min" / "val" / "ugal"); ``kernel_signal`` names
    #: which occupancy feeds the UGAL comparison ("port" = first-hop
    #: whole port at the source, "remote" = the candidate global channel
    #: at its own router, "vc" = first-hop VC, "vc_hybrid" = VC when the
    #: candidates share a port, whole port otherwise).  ``None`` means no
    #: lowering exists and the array backend falls back to calling
    #: ``decide`` per packet.  Declared on the exact registry classes
    #: only -- a subclass overriding behaviour is deliberately not
    #: trusted by the kernel's eligibility check.
    kernel_decide: str | None = None
    kernel_signal: str | None = None

    @abc.abstractmethod
    def decide(
        self,
        view: CongestionView,
        topology: Dragonfly,
        rng: random.Random,
        src_router: int,
        dst_terminal: int,
    ) -> RoutePlan:
        """Choose the route plan for a packet entering at ``src_router``."""

    def next_hop(
        self,
        topology: Any,
        router: int,
        plan: Any,
        progress: int,
        dst_terminal: int,
    ) -> Tuple[int, int, int]:
        """Execute one hop of a plan: (out_port, out_vc, next_progress).

        The default executor implements dragonfly routing (Section 4.1),
        where ``progress`` counts global channels crossed.  Topology
        families with their own plan encoding (e.g. the flattened
        butterfly) override this.
        """
        port, vc = _dragonfly_next_hop(topology, router, plan, progress, dst_terminal)
        next_progress = progress
        if not topology.is_terminal_port(port) and topology.is_global_port(port):
            next_progress += 1
        return port, vc, next_progress

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
