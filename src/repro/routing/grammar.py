"""Path grammars: the channel-class structure of a routing family.

The concrete certifier in :mod:`repro.check.cdg` proves deadlock freedom
by enumerating every route of one *instance* and checking the concrete
channel-dependency graph -- exact, but per-instance, and hopeless at the
paper's Table 2 scale (N up to 1M terminals).  A *path grammar* is the
instance-independent abstraction the symbolic certifier
(:mod:`repro.check.symbolic`) analyses instead: channels collapse into
:class:`ChannelClass` values (hop kind x VC x topological role), and every
route any instance of the family can emit is described by one of the
grammar's :class:`RouteClass` sequences of :class:`Segment` values.

The abstraction contract (what makes the symbolic analysis *sound* for
every (a, p, h, g) at once):

* every concrete route of every instance maps, buffer by buffer, onto the
  segments of some route class, **in order** -- a segment marked
  ``optional`` may contribute zero hops, one marked ``multi_hop`` may
  contribute several consecutive hops, and all other segments contribute
  exactly zero-or-one (``optional``) or one hop;
* consecutive hops *within* one ``multi_hop`` segment stay inside one
  channel class, so the class-level graph needs a self-edge for it; the
  segment's ``order`` names the strict total order those hops descend
  the topology along (e.g. dimension index for a DOR walk), which is the
  witness that the intra-class dependencies are acyclic.  A ``multi_hop``
  segment without an ``order`` is treated as an unbreakable self-cycle.

The grammars themselves are defined next to the executors they describe
(:func:`repro.routing.paths.dragonfly_path_grammar` and friends) so a
routing change and its grammar change land in the same review.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..topology.faults import FaultClass

#: Order witness for local segments widened by relay repair: the detour
#: recompiler repoints a dead local hop through a surviving neighbour
#: whose own entry toward the same stage target is *unrepaired* (it owns
#: a live direct cable), so every relay hop strictly decreases the
#: surviving-relay distance to the stage's target router.  Relay chains
#: within one stage therefore descend a strict order and cannot close an
#: intra-class cycle.
RELAY_ORDER = "surviving-relay distance to the stage target"


@dataclass(frozen=True)
class ChannelClass:
    """An abstract class of (channel, VC) buffers.

    ``kind`` is the physical channel kind ("local", "global", ...),
    ``vc`` the virtual channel, and ``role`` an optional topological
    refinement (e.g. ``"dim0"`` / ``"crossed"`` for a torus dateline
    class) needed when kind x VC alone would merge buffers whose
    dependencies must stay distinguishable.
    """

    kind: str
    vc: int
    role: str = ""

    def describe(self) -> str:
        suffix = f"/{self.role}" if self.role else ""
        return f"{self.kind}@VC{self.vc}{suffix}"


@dataclass(frozen=True)
class Segment:
    """One stage of a route class.

    ``optional`` -- some realisable route takes zero hops here (e.g. the
    source router already is the gateway router).  ``multi_hop`` -- one
    route can take several consecutive hops in this class (e.g. a DOR
    walk through a flattened-butterfly group); ``order`` then names the
    strict order that witnesses the intra-class dependencies acyclic.
    """

    cls: ChannelClass
    optional: bool = False
    multi_hop: bool = False
    order: str = ""


@dataclass(frozen=True)
class RouteClass:
    """A named sequence of segments every matching route follows in order."""

    name: str
    segments: Tuple[Segment, ...]


@dataclass(frozen=True)
class PathGrammar:
    """The full channel-class route structure of one routing family."""

    name: str
    num_vcs: int
    route_classes: Tuple[RouteClass, ...] = field(default_factory=tuple)

    def classes(self) -> Tuple[ChannelClass, ...]:
        """All channel classes, in first-appearance order."""
        seen = {}
        for route_class in self.route_classes:
            for segment in route_class.segments:
                seen.setdefault(segment.cls, None)
        return tuple(seen)


#: Fault-class kinds whose table repair widens local segments into
#: relay walks (multi-hop within the local channel class).
RELAY_FAULT_KINDS = frozenset({"dead-local-link", "dead-router"})


@dataclass(frozen=True)
class DegradedPathGrammar:
    """A healthy family grammar composed with symbolic fault classes.

    ``healthy`` is the family's fault-free :class:`PathGrammar`;
    ``fault_classes`` the :class:`~repro.topology.faults.FaultClass`
    values the certificate quantifies over (severed group pair, dead
    local link, dead router -- roles, not identities); and
    ``detour_classes`` the extra :class:`RouteClass` sequences the
    detour recompiler programs for reroute-shaped faults (e.g. the
    dragonfly third-group detour).  :meth:`compose` flattens the three
    into one ordinary :class:`PathGrammar` the symbolic certifier
    (:mod:`repro.check.symbolic`) analyses unchanged -- the degraded
    certificate is the healthy machinery applied to a wider grammar,
    not a new analysis.

    Composition rules:

    * every healthy route class survives (faulted fabrics still route
      unaffected pairs minimally);
    * the detour route classes are appended;
    * when any fault class in :data:`RELAY_FAULT_KINDS` is present,
      every single-hop ``"local"`` segment (healthy and detour alike)
      is widened to ``multi_hop`` with :data:`RELAY_ORDER` as its order
      witness -- relay repair can stretch any local stage into a short
      walk through surviving neighbours.  Segments that are already
      multi-hop keep their own order: if the two orders differ for one
      class, :func:`repro.check.symbolic._witness_orders` discards the
      witness and certification conservatively fails, which is the safe
      direction.
    """

    healthy: PathGrammar
    fault_classes: Tuple["FaultClass", ...]
    detour_classes: Tuple[RouteClass, ...] = field(default_factory=tuple)

    def _widen(self, route_class: RouteClass, relay: bool) -> RouteClass:
        if not relay:
            return route_class
        segments = tuple(
            Segment(
                cls=segment.cls,
                optional=segment.optional,
                multi_hop=True,
                order=RELAY_ORDER,
            )
            if segment.cls.kind == "local" and not segment.multi_hop
            else segment
            for segment in route_class.segments
        )
        return RouteClass(route_class.name, segments)

    def compose(self) -> PathGrammar:
        """Flatten into one PathGrammar over healthy ∪ detour classes."""
        relay = any(
            fault.kind in RELAY_FAULT_KINDS for fault in self.fault_classes
        )
        route_classes = tuple(
            self._widen(route_class, relay)
            for route_class in (
                *self.healthy.route_classes,
                *self.detour_classes,
            )
        )
        kinds = ",".join(fault.kind for fault in self.fault_classes)
        return PathGrammar(
            name=f"{self.healthy.name}+faults[{kinds or 'none'}]",
            num_vcs=self.healthy.num_vcs,
            route_classes=route_classes,
        )
