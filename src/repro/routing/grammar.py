"""Path grammars: the channel-class structure of a routing family.

The concrete certifier in :mod:`repro.check.cdg` proves deadlock freedom
by enumerating every route of one *instance* and checking the concrete
channel-dependency graph -- exact, but per-instance, and hopeless at the
paper's Table 2 scale (N up to 1M terminals).  A *path grammar* is the
instance-independent abstraction the symbolic certifier
(:mod:`repro.check.symbolic`) analyses instead: channels collapse into
:class:`ChannelClass` values (hop kind x VC x topological role), and every
route any instance of the family can emit is described by one of the
grammar's :class:`RouteClass` sequences of :class:`Segment` values.

The abstraction contract (what makes the symbolic analysis *sound* for
every (a, p, h, g) at once):

* every concrete route of every instance maps, buffer by buffer, onto the
  segments of some route class, **in order** -- a segment marked
  ``optional`` may contribute zero hops, one marked ``multi_hop`` may
  contribute several consecutive hops, and all other segments contribute
  exactly zero-or-one (``optional``) or one hop;
* consecutive hops *within* one ``multi_hop`` segment stay inside one
  channel class, so the class-level graph needs a self-edge for it; the
  segment's ``order`` names the strict total order those hops descend
  the topology along (e.g. dimension index for a DOR walk), which is the
  witness that the intra-class dependencies are acyclic.  A ``multi_hop``
  segment without an ``order`` is treated as an unbreakable self-cycle.

The grammars themselves are defined next to the executors they describe
(:func:`repro.routing.paths.dragonfly_path_grammar` and friends) so a
routing change and its grammar change land in the same review.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class ChannelClass:
    """An abstract class of (channel, VC) buffers.

    ``kind`` is the physical channel kind ("local", "global", ...),
    ``vc`` the virtual channel, and ``role`` an optional topological
    refinement (e.g. ``"dim0"`` / ``"crossed"`` for a torus dateline
    class) needed when kind x VC alone would merge buffers whose
    dependencies must stay distinguishable.
    """

    kind: str
    vc: int
    role: str = ""

    def describe(self) -> str:
        suffix = f"/{self.role}" if self.role else ""
        return f"{self.kind}@VC{self.vc}{suffix}"


@dataclass(frozen=True)
class Segment:
    """One stage of a route class.

    ``optional`` -- some realisable route takes zero hops here (e.g. the
    source router already is the gateway router).  ``multi_hop`` -- one
    route can take several consecutive hops in this class (e.g. a DOR
    walk through a flattened-butterfly group); ``order`` then names the
    strict order that witnesses the intra-class dependencies acyclic.
    """

    cls: ChannelClass
    optional: bool = False
    multi_hop: bool = False
    order: str = ""


@dataclass(frozen=True)
class RouteClass:
    """A named sequence of segments every matching route follows in order."""

    name: str
    segments: Tuple[Segment, ...]


@dataclass(frozen=True)
class PathGrammar:
    """The full channel-class route structure of one routing family."""

    name: str
    num_vcs: int
    route_classes: Tuple[RouteClass, ...] = field(default_factory=tuple)

    def classes(self) -> Tuple[ChannelClass, ...]:
        """All channel classes, in first-appearance order."""
        seen = {}
        for route_class in self.route_classes:
            for segment in route_class.segments:
                seen.setdefault(segment.cls, None)
        return tuple(seen)
