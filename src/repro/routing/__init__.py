"""Routing algorithms for the dragonfly (Section 4)."""

from . import vc_assignment
from .base import CongestionView, RoutingAlgorithm, ZeroCongestion
from .fb_paths import (
    FbRoutePlan,
    fb_minimal_plan,
    fb_next_hop,
    fb_plan_hops,
    fb_valiant_plan,
    fb_walk_route,
)
from .clos_routing import (
    ClosDeterministicRouting,
    ClosRandomRouting,
    ClosRoutePlan,
    clos_plan,
    clos_walk_route,
    make_clos_routing,
)
from .fb_routing import FbMinimalRouting, FbUgalL, FbValiantRouting, make_fb_routing
from .torus_routing import (
    TorusMinimalRouting,
    TorusRoutePlan,
    TorusValiantRouting,
    make_torus_routing,
    torus_minimal_plan,
    torus_next_hop,
    torus_valiant_plan,
    torus_walk_route,
)
from .minimal import MinimalRouting
from .paths import minimal_plan, next_hop, plan_hops, valiant_plan, walk_route
from .ugal import UgalG, UgalL, UgalLCr, UgalLVc, UgalLVcH, make_routing
from .valiant import ValiantRouting
from .variant_paths import (
    variant_minimal_plan,
    variant_next_hop,
    variant_plan_hops,
    variant_valiant_plan,
    variant_walk_route,
)
from .variant_routing import (
    VariantMinimalRouting,
    VariantUgalL,
    VariantValiantRouting,
    make_variant_routing,
)

#: Every algorithm the paper evaluates, in presentation order.
ALL_ROUTING_NAMES = [
    "MIN",
    "VAL",
    "UGAL-L",
    "UGAL-G",
    "UGAL-L_VC",
    "UGAL-L_VCH",
    "UGAL-L_CR",
]

__all__ = [
    "vc_assignment",
    "FbRoutePlan",
    "fb_minimal_plan",
    "fb_next_hop",
    "fb_plan_hops",
    "fb_valiant_plan",
    "fb_walk_route",
    "ClosDeterministicRouting",
    "ClosRandomRouting",
    "ClosRoutePlan",
    "clos_plan",
    "clos_walk_route",
    "make_clos_routing",
    "FbMinimalRouting",
    "FbUgalL",
    "FbValiantRouting",
    "make_fb_routing",
    "TorusMinimalRouting",
    "TorusRoutePlan",
    "TorusValiantRouting",
    "make_torus_routing",
    "torus_minimal_plan",
    "torus_next_hop",
    "torus_valiant_plan",
    "torus_walk_route",
    "CongestionView",
    "RoutingAlgorithm",
    "ZeroCongestion",
    "MinimalRouting",
    "minimal_plan",
    "next_hop",
    "plan_hops",
    "valiant_plan",
    "walk_route",
    "UgalG",
    "UgalL",
    "UgalLCr",
    "UgalLVc",
    "UgalLVcH",
    "make_routing",
    "ValiantRouting",
    "variant_minimal_plan",
    "variant_next_hop",
    "variant_plan_hops",
    "variant_valiant_plan",
    "variant_walk_route",
    "VariantMinimalRouting",
    "VariantUgalL",
    "VariantValiantRouting",
    "make_variant_routing",
    "ALL_ROUTING_NAMES",
]
