"""Scalability curves of the dragonfly paper (Figures 1 and 4).

These are closed-form consequences of the parameter algebra in
:mod:`repro.core.params`:

* Figure 1 plots the router radix required to build a *flat* network in
  which every minimally-routed packet crosses a single global hop.  It
  grows as ``k ~ 2 sqrt(N)`` -- the motivation for virtual routers.
* Figure 4 plots the network size reachable by a *balanced* dragonfly as
  a function of router radix: ``N = ap(ah+1)`` with ``a = 2p = 2h``
  explodes as ``k^4 / 64``-ish, reaching >256K terminals at radix 64.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from .params import DragonflyParams, balanced_params_for_radix, required_radix_single_hop


@dataclass(frozen=True)
class RadixRequirementPoint:
    """One point of the Figure 1 curve."""

    num_terminals: int
    required_radix: int


@dataclass(frozen=True)
class ScalabilityPoint:
    """One point of the Figure 4 curve."""

    radix: int
    params: DragonflyParams

    @property
    def num_terminals(self) -> int:
        return self.params.num_terminals


def radix_requirement_curve(
    sizes: Iterable[int],
) -> List[RadixRequirementPoint]:
    """Figure 1: radix required for a one-global-hop flat network vs N."""
    return [
        RadixRequirementPoint(num_terminals=n, required_radix=required_radix_single_hop(n))
        for n in sizes
    ]


def dragonfly_scalability_curve(
    radices: Sequence[int],
) -> List[ScalabilityPoint]:
    """Figure 4: balanced-dragonfly network size vs router radix."""
    points = []
    for k in radices:
        params = balanced_params_for_radix(k)
        points.append(ScalabilityPoint(radix=k, params=params))
    return points


def balanced_size_for_radix(radix: int) -> int:
    """Network size of the largest balanced dragonfly at a given radix.

    With ``h = floor((k+1)/4)`` the size is ``N = 2h^2 (2h^2 + 1)``,
    i.e. approximately ``(k+1)^4 / 64`` terminals.
    """
    return balanced_params_for_radix(radix).num_terminals


def network_diameter_hops(params: DragonflyParams) -> int:
    """Maximum hop count of a minimal route (local + global + local)."""
    hops = 0
    if params.a > 1:
        hops += 2  # one local hop possible at each end
    if params.g > 1:
        hops += 1  # exactly one global hop
    return hops
