"""Parameter algebra for the dragonfly topology.

The dragonfly (Kim, Dally, Scott, Abts -- ISCA 2008) is described by three
parameters:

``p``
    number of terminals connected to each router,
``a``
    number of routers in each group,
``h``
    number of global channels per router (channels to other groups).

From these the paper derives (Section 3.1):

* router radix            ``k  = p + a + h - 1``
* effective group radix   ``k' = a * (p + h)``
* maximum group count     ``g_max = a * h + 1``
* maximum network size    ``N = a * p * (a * h + 1)``

A *balanced* dragonfly satisfies ``a = 2p = 2h`` so that the two local hops
per packet (one at each end of the global channel) do not oversubscribe the
local channels.  Deviations should overprovision local/terminal channels:
``a >= 2h`` and ``2p >= 2h`` (the paper's balance inequalities).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


class TopologyError(ValueError):
    """Raised when topology parameters are inconsistent or unbuildable."""


@dataclass(frozen=True)
class DragonflyParams:
    """Immutable description of a dragonfly configuration.

    Parameters
    ----------
    p:
        Terminals per router (concentration).
    a:
        Routers per group.
    h:
        Global channels per router.
    num_groups:
        Number of groups ``g``.  Defaults to the maximum ``a*h + 1``.
        Smaller values produce non-maximal dragonflies in which the excess
        global connections are distributed evenly over the group pairs.
    """

    p: int
    a: int
    h: int
    num_groups: Optional[int] = None

    def __post_init__(self) -> None:
        if self.p < 1:
            raise TopologyError(f"p must be >= 1, got {self.p}")
        if self.a < 1:
            raise TopologyError(f"a must be >= 1, got {self.a}")
        if self.h < 0:
            raise TopologyError(f"h must be >= 0, got {self.h}")
        g = self.num_groups
        if g is None:
            object.__setattr__(self, "num_groups", self.max_groups)
        else:
            if g < 1:
                raise TopologyError(f"num_groups must be >= 1, got {g}")
            if g > self.max_groups:
                raise TopologyError(
                    f"num_groups={g} exceeds the maximum a*h+1={self.max_groups}"
                )
            if g > 1 and self.h == 0:
                raise TopologyError("h=0 cannot connect more than one group")
            if g > 1 and (self.a * self.h) % 2 != 0 and g == self.max_groups:
                # In a maximum-size dragonfly every group pair has exactly
                # one channel so parity is automatically satisfied; for
                # smaller networks total endpoints g*a*h must be even.
                pass
            if g > 1 and (g * self.a * self.h) % 2 != 0:
                raise TopologyError(
                    "g*a*h must be even so global channels can be paired "
                    f"(got g={g}, a={self.a}, h={self.h})"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def balanced(cls, h: int, num_groups: Optional[int] = None) -> "DragonflyParams":
        """Build a balanced dragonfly (``a = 2p = 2h``) from ``h``."""
        return cls(p=h, a=2 * h, h=h, num_groups=num_groups)

    @classmethod
    def paper_1k(cls) -> "DragonflyParams":
        """The paper's default simulation configuration.

        ``p = h = 4, a = 8`` which scales to ``N = 1056`` terminals
        ("1K node" in the paper's terminology).
        """
        return cls(p=4, a=8, h=4)

    @classmethod
    def paper_example_72(cls) -> "DragonflyParams":
        """The Figure 5 example: ``p = h = 2, a = 4`` giving ``N = 72``."""
        return cls(p=2, a=4, h=2)

    @classmethod
    def smallest_balanced_for(cls, num_terminals: int) -> "DragonflyParams":
        """Smallest balanced dragonfly with at least ``num_terminals``."""
        if num_terminals < 1:
            raise TopologyError("num_terminals must be >= 1")
        h = 1
        while DragonflyParams.balanced(h).num_terminals < num_terminals:
            h += 1
        return cls.balanced(h)

    # ------------------------------------------------------------------
    # Derived quantities (Section 3.1)
    # ------------------------------------------------------------------
    @property
    def radix(self) -> int:
        """Router radix ``k = p + a + h - 1``."""
        return self.p + self.a + self.h - 1

    @property
    def effective_radix(self) -> int:
        """Virtual-router radix ``k' = a (p + h)``."""
        return self.a * (self.p + self.h)

    @property
    def max_groups(self) -> int:
        """Maximum group count ``g = a h + 1`` at global diameter one."""
        return self.a * self.h + 1

    @property
    def g(self) -> int:
        """Actual group count (``num_groups``)."""
        assert self.num_groups is not None
        return self.num_groups

    @property
    def is_max_size(self) -> bool:
        return self.g == self.max_groups

    @property
    def num_routers(self) -> int:
        return self.a * self.g

    @property
    def num_terminals(self) -> int:
        """Network size ``N = a p g``."""
        return self.a * self.p * self.g

    @property
    def terminals_per_group(self) -> int:
        return self.a * self.p

    @property
    def global_channels_per_group(self) -> int:
        """Group-level global connectivity ``a h``."""
        return self.a * self.h

    @property
    def num_global_channels(self) -> int:
        """Count of bidirectional global channels in the whole system."""
        if self.g == 1:
            return 0
        return self.g * self.a * self.h // 2

    @property
    def num_local_channels(self) -> int:
        """Count of bidirectional local channels (fully-connected groups)."""
        return self.g * (self.a * (self.a - 1) // 2)

    @property
    def is_balanced(self) -> bool:
        """Exact balance: ``a = 2p = 2h``."""
        return self.a == 2 * self.p and self.a == 2 * self.h

    @property
    def is_overprovisioned(self) -> bool:
        """The paper's relaxed balance: ``a >= 2h`` and ``p >= h``.

        Deviations from 2:1 should leave the expensive global channels the
        bottleneck, i.e. overprovision local and terminal bandwidth.
        """
        return self.a >= 2 * self.h and self.p >= self.h

    def min_channels_between_group_pairs(self) -> int:
        """Lower bound on channels between any two groups.

        In a maximum-size dragonfly each pair of groups is connected by
        exactly one channel; in smaller dragonflies the excess connections
        are distributed so each pair gets at least
        ``floor(a*h / (g-1))`` channels.
        """
        if self.g <= 1:
            return 0
        return (self.a * self.h) // (self.g - 1)

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"dragonfly(p={self.p}, a={self.a}, h={self.h}, g={self.g}): "
            f"N={self.num_terminals}, k={self.radix}, k'={self.effective_radix}"
        )


def required_radix_single_hop(num_terminals: int) -> int:
    """Radix needed for a *flat* fully-connected network of ``N`` terminals.

    Figure 1 of the paper: if a single router level must reach every other
    router with one (global) hop and concentration equals the number of
    network-facing ports, the radix grows as ``k ~ 2 sqrt(N)``.  Concretely,
    with ``c`` terminals per router and ``N/c - 1`` router-to-router ports,
    radix is minimised at ``c = sqrt(N)``, giving ``k = 2 sqrt(N) - 1``.
    """
    if num_terminals < 1:
        raise ValueError("num_terminals must be >= 1")
    best = num_terminals  # single router with N terminals
    c = 1
    while c * c <= num_terminals:
        routers = math.ceil(num_terminals / c)
        k = c + routers - 1
        best = min(best, k)
        c += 1
    return best


def balanced_params_for_radix(radix: int) -> DragonflyParams:
    """Largest balanced dragonfly buildable from routers of a given radix.

    Inverts ``k = p + a + h - 1 = 4h - 1`` for a balanced network, so
    ``h = floor((k + 1) / 4)``.  Used for the Figure 4 scalability curve.
    """
    if radix < 3:
        raise TopologyError(f"radix {radix} too small for a balanced dragonfly")
    h = (radix + 1) // 4
    return DragonflyParams.balanced(h)
