"""Parameter algebra and scaling laws of the dragonfly topology."""

from .params import (
    DragonflyParams,
    TopologyError,
    balanced_params_for_radix,
    required_radix_single_hop,
)
from .scaling import (
    RadixRequirementPoint,
    ScalabilityPoint,
    balanced_size_for_radix,
    dragonfly_scalability_curve,
    network_diameter_hops,
    radix_requirement_curve,
)

__all__ = [
    "DragonflyParams",
    "TopologyError",
    "balanced_params_for_radix",
    "required_radix_single_hop",
    "RadixRequirementPoint",
    "ScalabilityPoint",
    "balanced_size_for_radix",
    "dragonfly_scalability_curve",
    "network_diameter_hops",
    "radix_requirement_curve",
]
