"""Fault model for compiled-table routing (link and router removals).

Deployed machines route around broken cables and routers by
*reprogramming forwarding tables*, not by changing the routing code --
the controller workflow of the InfiniBand dragonfly literature.  This
module gives faults a first-class representation that the table
compiler (:mod:`repro.routing.tables`) consumes: a
:class:`FaultSet` names dead bidirectional cables (by their endpoint
router pair) and dead routers (which kill every attached cable and
terminal).

Faults are purely topological: the healthy :class:`Fabric` is left
untouched, and a fault set is interpreted as a filter over its channels.
That keeps one topology object shared between the healthy and every
degraded table set, and makes "which routes survive" a property the
static verifier (:mod:`repro.check.tables`) can decide without
rebuilding anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Tuple

from ..core.params import TopologyError


@dataclass(frozen=True)
class LinkFault:
    """One dead bidirectional cable, named by its endpoint routers.

    Both directed channels of the cable die.  For multi-cable router
    pairs (non-maximal dragonflies can wire several global cables
    between one router pair) the fault kills *all* cables between the
    two routers -- the conservative reading of "this pair of line cards
    cannot talk".
    """

    router_a: int
    router_b: int

    def normalized(self) -> "LinkFault":
        if self.router_a <= self.router_b:
            return self
        return LinkFault(self.router_b, self.router_a)


@dataclass(frozen=True)
class RouterFault:
    """A dead router: every attached cable and terminal is lost."""

    router: int


@dataclass(frozen=True)
class FaultSet:
    """A set of link and router faults, queryable by the compiler.

    Construct via :meth:`of` so link faults are normalised (unordered
    endpoint pairs) and duplicates collapse.
    """

    links: FrozenSet[LinkFault] = field(default_factory=frozenset)
    routers: FrozenSet[RouterFault] = field(default_factory=frozenset)

    @classmethod
    def of(
        cls,
        links: Iterable[Tuple[int, int]] = (),
        routers: Iterable[int] = (),
    ) -> "FaultSet":
        return cls(
            links=frozenset(LinkFault(a, b).normalized() for a, b in links),
            routers=frozenset(RouterFault(r) for r in routers),
        )

    def __bool__(self) -> bool:
        return bool(self.links) or bool(self.routers)

    def router_dead(self, router: int) -> bool:
        return RouterFault(router) in self.routers

    def link_dead(self, router_a: int, router_b: int) -> bool:
        """True when no cable between the two routers survives."""
        if self.router_dead(router_a) or self.router_dead(router_b):
            return True
        return LinkFault(router_a, router_b).normalized() in self.links

    def dead_terminals(self, topology) -> List[int]:
        """Terminals attached to dead routers (unreachable by any table)."""
        return [
            t for t in range(topology.num_terminals)
            if self.router_dead(topology.terminal_router(t))
        ]

    def describe(self) -> str:
        parts = [
            f"link {fault.router_a}<->{fault.router_b}"
            for fault in sorted(self.links, key=lambda f: (f.router_a, f.router_b))
        ]
        parts += [
            f"router {fault.router}"
            for fault in sorted(self.routers, key=lambda f: f.router)
        ]
        return ", ".join(parts) if parts else "no faults"

    def validate(self, topology) -> None:
        """Check every named fault exists in the fabric; raises otherwise.

        A fault set naming a cable that was never wired would silently
        degrade nothing -- almost certainly a typo in an experiment.
        """
        fabric = topology.fabric
        num_routers = fabric.num_routers
        for fault in self.routers:
            if not (0 <= fault.router < num_routers):
                raise TopologyError(
                    f"router fault {fault.router} out of range "
                    f"[0, {num_routers})"
                )
        wired = set()
        for forward, _ in fabric.bidirectional_links():
            pair = (forward.src.router, forward.dst.router)
            wired.add((min(pair), max(pair)))
        for fault in self.links:
            pair = (fault.router_a, fault.router_b)
            if (min(pair), max(pair)) not in wired:
                raise TopologyError(
                    f"link fault {fault.router_a}<->{fault.router_b} names "
                    "a cable that does not exist in the fabric"
                )


#: The empty fault set (healthy fabric); shared default.
NO_FAULTS = FaultSet()
