"""Fault model for compiled-table routing (link and router removals).

Deployed machines route around broken cables and routers by
*reprogramming forwarding tables*, not by changing the routing code --
the controller workflow of the InfiniBand dragonfly literature.  This
module gives faults a first-class representation that the table
compiler (:mod:`repro.routing.tables`) consumes: a
:class:`FaultSet` names dead bidirectional cables (by their endpoint
router pair) and dead routers (which kill every attached cable and
terminal).

Faults are purely topological: the healthy :class:`Fabric` is left
untouched, and a fault set is interpreted as a filter over its channels.
That keeps one topology object shared between the healthy and every
degraded table set, and makes "which routes survive" a property the
static verifier (:mod:`repro.check.tables`) can decide without
rebuilding anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Tuple

from ..core.params import TopologyError

#: The fault-class kinds the symbolic certifier reasons about.
FAULT_CLASS_KINDS = ("severed-group-pair", "dead-local-link", "dead-router")


@dataclass(frozen=True)
class FaultClass:
    """A fault abstracted by *role*, not identity.

    The symbolic certifier (:mod:`repro.check.symbolic`) proves degraded
    families deadlock-free without naming any concrete cable: what
    matters for the class-level dependency graph is only which *shapes*
    of degradation the tables route around.  Three shapes exist for the
    dragonfly family:

    * ``severed-group-pair`` -- some group pair lost every direct global
      cable; routes between the two groups take the three-group detour
      (the non-minimal VC ladder, repurposed).
    * ``dead-local-link`` -- some intra-group cable died; entries whose
      direct local hop died are repointed through a surviving relay
      neighbour, making local segments multi-hop.
    * ``dead-router`` -- a router died, taking its terminals, its global
      cables (possibly severing group pairs) and its local cables
      (forcing relays) with it.

    A concrete :class:`FaultSet` projects onto the fault classes it
    exhibits via :meth:`FaultSet.fault_classes`; a *family-level*
    certificate quantifies over fault sets by taking the classes
    directly (any fault set exhibiting only these classes is covered).
    """

    kind: str

    def __post_init__(self) -> None:
        if self.kind not in FAULT_CLASS_KINDS:
            raise ValueError(
                f"unknown fault class kind {self.kind!r}; choose from "
                f"{FAULT_CLASS_KINDS}"
            )

    def describe(self) -> str:
        return self.kind


#: The three dragonfly fault classes, in canonical order.
SEVERED_GROUP_PAIR = FaultClass("severed-group-pair")
DEAD_LOCAL_LINK = FaultClass("dead-local-link")
DEAD_ROUTER = FaultClass("dead-router")
ALL_FAULT_CLASSES = (SEVERED_GROUP_PAIR, DEAD_LOCAL_LINK, DEAD_ROUTER)


@dataclass(frozen=True)
class LinkFault:
    """One dead bidirectional cable, named by its endpoint routers.

    Both directed channels of the cable die.  For multi-cable router
    pairs (non-maximal dragonflies can wire several global cables
    between one router pair) the fault kills *all* cables between the
    two routers -- the conservative reading of "this pair of line cards
    cannot talk".
    """

    router_a: int
    router_b: int

    def normalized(self) -> "LinkFault":
        if self.router_a <= self.router_b:
            return self
        return LinkFault(self.router_b, self.router_a)


@dataclass(frozen=True)
class RouterFault:
    """A dead router: every attached cable and terminal is lost."""

    router: int


@dataclass(frozen=True)
class FaultSet:
    """A set of link and router faults, queryable by the compiler.

    Construct via :meth:`of` so link faults are normalised (unordered
    endpoint pairs) and duplicates collapse.
    """

    links: FrozenSet[LinkFault] = field(default_factory=frozenset)
    routers: FrozenSet[RouterFault] = field(default_factory=frozenset)

    @classmethod
    def of(
        cls,
        links: Iterable[Tuple[int, int]] = (),
        routers: Iterable[int] = (),
    ) -> "FaultSet":
        return cls(
            links=frozenset(LinkFault(a, b).normalized() for a, b in links),
            routers=frozenset(RouterFault(r) for r in routers),
        )

    def __bool__(self) -> bool:
        return bool(self.links) or bool(self.routers)

    def router_dead(self, router: int) -> bool:
        return RouterFault(router) in self.routers

    def link_dead(self, router_a: int, router_b: int) -> bool:
        """True when no cable between the two routers survives."""
        if self.router_dead(router_a) or self.router_dead(router_b):
            return True
        return LinkFault(router_a, router_b).normalized() in self.links

    def dead_terminals(self, topology) -> List[int]:
        """Terminals attached to dead routers (unreachable by any table)."""
        return [
            t for t in range(topology.num_terminals)
            if self.router_dead(topology.terminal_router(t))
        ]

    def describe(self) -> str:
        parts = [
            f"link {fault.router_a}<->{fault.router_b}"
            for fault in sorted(self.links, key=lambda f: (f.router_a, f.router_b))
        ]
        parts += [
            f"router {fault.router}"
            for fault in sorted(self.routers, key=lambda f: f.router)
        ]
        return ", ".join(parts) if parts else "no faults"

    def fault_classes(self, topology) -> Tuple[FaultClass, ...]:
        """The symbolic fault classes this concrete fault set exhibits.

        Projects identities away: dead routers report ``dead-router``,
        same-group link faults report ``dead-local-link``, and any group
        pair left without a surviving direct cable (whether by explicit
        global link faults, by router deaths, or both) reports
        ``severed-group-pair``.  The degraded grammar built from these
        classes (:func:`repro.routing.paths.degraded_dragonfly_grammar`)
        therefore covers every route the detour recompiler programs for
        this fault set.
        """
        classes: List[FaultClass] = []
        for src_group in range(topology.g):
            severed = False
            for dest_group in range(src_group + 1, topology.g):
                links = topology.group_links(src_group, dest_group)
                if links and all(
                    self.link_dead(link.src_router, link.dst_router)
                    for link in links
                ):
                    severed = True
                    break
            if severed:
                classes.append(SEVERED_GROUP_PAIR)
                break
        if any(
            topology.group_of(fault.router_a) == topology.group_of(fault.router_b)
            for fault in self.links
        ):
            classes.append(DEAD_LOCAL_LINK)
        if self.routers:
            classes.append(DEAD_ROUTER)
        return tuple(classes)

    def validate(self, topology) -> None:
        """Check every named fault exists in the fabric; raises otherwise.

        A fault set naming a cable that was never wired would silently
        degrade nothing -- almost certainly a typo in an experiment.
        Error messages name the offending element and the fabric bound
        that rejects it, so a bad sweep manifest points at its own typo.
        """
        fabric = topology.fabric
        num_routers = fabric.num_routers
        for fault in sorted(self.routers, key=lambda f: f.router):
            if not (0 <= fault.router < num_routers):
                raise TopologyError(
                    f"router fault {fault.router} does not exist: this "
                    f"fabric has routers 0..{num_routers - 1}"
                )
        wired = set()
        for forward, _ in fabric.bidirectional_links():
            pair = (forward.src.router, forward.dst.router)
            wired.add((min(pair), max(pair)))
        for fault in sorted(self.links, key=lambda f: (f.router_a, f.router_b)):
            for endpoint in (fault.router_a, fault.router_b):
                if not (0 <= endpoint < num_routers):
                    raise TopologyError(
                        f"link fault {fault.router_a}<->{fault.router_b}: "
                        f"router {endpoint} does not exist: this fabric "
                        f"has routers 0..{num_routers - 1}"
                    )
            pair = (fault.router_a, fault.router_b)
            if (min(pair), max(pair)) not in wired:
                raise TopologyError(
                    f"link fault {fault.router_a}<->{fault.router_b}: no "
                    f"cable is wired between routers {fault.router_a} and "
                    f"{fault.router_b} in this fabric "
                    f"({len(wired)} wired pairs); a fault naming an "
                    "unwired pair would degrade nothing"
                )


#: The empty fault set (healthy fabric); shared default.
NO_FAULTS = FaultSet()


def canonical_global_faults(topology, count: int) -> FaultSet:
    """The canonical ``count``-cable degradation: sever ``count`` disjoint
    group pairs.

    Pair ``k`` (for ``k < count``) is groups ``(2k, 2k+1)``; *every*
    direct cable between the two groups dies, so traffic between them
    must take a third-group detour.  Using disjoint pairs keeps each
    degradation independent (no shared endpoint group), which makes
    throughput-vs-faults sweeps monotone and easy to read.  No routers
    die, so the terminal set (and hence any traffic pattern) is
    unchanged.
    """
    if count < 0:
        raise TopologyError(f"fault count {count} is negative")
    if 2 * count > topology.g:
        raise TopologyError(
            f"cannot sever {count} disjoint group pairs: this fabric has "
            f"only {topology.g} groups (needs {2 * count})"
        )
    links: List[Tuple[int, int]] = []
    for k in range(count):
        for link in topology.group_links(2 * k, 2 * k + 1):
            links.append((link.src_router, link.dst_router))
    return FaultSet.of(links=links)
