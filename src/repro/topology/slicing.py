"""Channel slicing: parallel dragonfly networks (Section 3.2).

To increase terminal bandwidth without lowering the router radix, the
paper suggests connecting multiple identical networks ("slices") in
parallel rather than widening channels.  Each terminal then has one
injection port per slice; packets are spread over the slices.

This module models a sliced dragonfly as a collection of independent
:class:`~repro.topology.dragonfly.Dragonfly` instances plus a slice
selection policy.  The cost model prices a sliced network as the sum of
its slices; the simulator can simulate one slice under its share of the
load (the slices do not interact).
"""

from __future__ import annotations

import itertools
from typing import List

from ..core.params import DragonflyParams
from .dragonfly import Dragonfly


class ChannelSlicedDragonfly:
    """``num_slices`` identical dragonflies operated in parallel."""

    def __init__(
        self,
        params: DragonflyParams,
        num_slices: int,
        **latencies: int,
    ) -> None:
        if num_slices < 1:
            raise ValueError("num_slices must be >= 1")
        self.params = params
        self.num_slices = num_slices
        self.slices: List[Dragonfly] = [
            Dragonfly(params, **latencies) for _ in range(num_slices)
        ]
        self._round_robin = itertools.cycle(range(num_slices))

    @property
    def num_terminals(self) -> int:
        """Terminals of the sliced system (one NIC, ``num_slices`` ports)."""
        return self.params.num_terminals

    @property
    def terminal_bandwidth_multiplier(self) -> int:
        """Injection bandwidth per terminal relative to a single slice."""
        return self.num_slices

    def slice_for_packet(self, packet_index: int) -> int:
        """Deterministic round-robin slice assignment by packet index."""
        return packet_index % self.num_slices

    def next_slice(self) -> int:
        """Stateful round-robin slice selection."""
        return next(self._round_robin)

    def total_cables(self) -> int:
        return sum(df.fabric.num_cables() for df in self.slices)

    def describe(self) -> str:
        return f"{self.num_slices} x [{self.slices[0].describe()}]"


def tapered_dragonfly(
    params: DragonflyParams,
    max_channels_per_pair: int,
    **latencies: int,
) -> Dragonfly:
    """Build a bandwidth-tapered dragonfly (Section 3.2).

    Wires at most ``max_channels_per_pair`` global channels between any
    two groups, leaving the remaining global ports unused.  Only
    meaningful for non-maximal dragonflies (a maximum-size network already
    has exactly one channel per pair).
    """
    return Dragonfly(
        params,
        max_channels_per_pair=max_channels_per_pair,
        **latencies,
    )
