"""k-ary n-cube (torus) topology.

Used as the low-radix cost baseline of the paper (Figure 19), modelled on
the Cray T3E-style 3-D torus.  Each router sits at a coordinate of an
``m_1 x .. x m_n`` grid, carries ``c`` terminals, and connects to its two
neighbours (+1/-1, wrapping) in every dimension.

Router radix: ``k = c + 2n``.  All cables are short and electrical --
the torus' cost problem is the *number* of cables and routers needed to
supply bisection bandwidth, not their length.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .base import ChannelKind, Fabric, PortRef


class Torus:
    """Concrete k-ary n-cube fabric with coordinate helpers.

    Port layout::

        [0, c)                      terminal ports
        c + 2*d                     "plus" neighbour in dimension d
        c + 2*d + 1                 "minus" neighbour in dimension d
    """

    def __init__(
        self,
        dims: Sequence[int],
        concentration: int,
        link_latency: int = 1,
    ) -> None:
        if not dims or any(m < 2 for m in dims):
            raise ValueError(f"torus dimensions must all be >= 2, got {dims}")
        if concentration < 1:
            raise ValueError("concentration must be >= 1")
        self.dims: Tuple[int, ...] = tuple(dims)
        self.concentration = concentration
        self.num_routers = 1
        for m in self.dims:
            self.num_routers *= m
        self.fabric = Fabric(num_routers=self.num_routers, name="torus")
        self._link_latency = link_latency
        #: Ejection latency used by the simulator (interface shared with
        #: the dragonfly).
        self.terminal_latency = 1
        self._build()

    @property
    def radix(self) -> int:
        return self.concentration + 2 * len(self.dims)

    @property
    def num_terminals(self) -> int:
        return self.concentration * self.num_routers

    def coords_of(self, router: int) -> Tuple[int, ...]:
        coords = []
        rest = router
        for m in reversed(self.dims):
            coords.append(rest % m)
            rest //= m
        return tuple(reversed(coords))

    def router_at(self, coords: Sequence[int]) -> int:
        router = 0
        for coord, m in zip(coords, self.dims):
            if not (0 <= coord < m):
                raise ValueError(f"coordinate {coord} out of range for size {m}")
            router = router * m + coord
        return router

    def plus_port(self, dim: int) -> int:
        return self.concentration + 2 * dim

    def minus_port(self, dim: int) -> int:
        return self.concentration + 2 * dim + 1

    def _build(self) -> None:
        for router in range(self.num_routers):
            for port in range(self.concentration):
                self.fabric.add_terminal(router=router, port=port)
        for dim, m in enumerate(self.dims):
            for router in range(self.num_routers):
                coords = self.coords_of(router)
                dst_coords = list(coords)
                dst_coords[dim] = (coords[dim] + 1) % m
                dst = self.router_at(dst_coords)
                if m == 2 and coords[dim] == 1:
                    continue  # size-2 rings have a single cable
                self.fabric.connect(
                    PortRef(router, self.plus_port(dim)),
                    PortRef(dst, self.minus_port(dim)),
                    ChannelKind.LOCAL,
                    latency=self._link_latency,
                )
        self.fabric.validate()

    def terminal_router(self, terminal: int) -> int:
        return self.fabric.terminals[terminal].router

    def terminal_port(self, terminal: int) -> int:
        return self.fabric.terminals[terminal].port

    def minimal_hop_count(self, src_terminal: int, dst_terminal: int) -> int:
        """Hops of dimension-order minimal routing (ring distances)."""
        src = self.coords_of(self.fabric.terminals[src_terminal].router)
        dst = self.coords_of(self.fabric.terminals[dst_terminal].router)
        hops = 0
        for s, d, m in zip(src, dst, self.dims):
            delta = abs(s - d)
            hops += min(delta, m - delta)
        return hops

    def describe(self) -> str:
        dims = "x".join(str(m) for m in self.dims)
        return f"torus(dims={dims}, c={self.concentration}): N={self.num_terminals}, k={self.radix}"
