"""The dragonfly topology (Section 3 of the paper).

A dragonfly is a three-level hierarchy: router, group, system.  Each
router has ``p`` terminals, ``a - 1`` local channels to the other routers
of its group (the intra-group network here is the paper's default
completely-connected / 1-D flattened butterfly), and ``h`` global channels
to routers in other groups.  The ``a`` routers of a group act together as
a virtual router of radix ``k' = a(p + h)``, which lets up to
``g = ah + 1`` groups be connected with a global diameter of one.

Port layout of every router (radix ``k = p + a + h - 1``)::

    [0, p)              terminal ports
    [p, p + a - 1)      local ports
    [p + a - 1, k)      global ports

Global wiring
-------------
For a maximum-size dragonfly (``g = ah + 1``) each pair of groups is
connected by exactly one channel, using the *absolute* arrangement: group
``gi``'s group-level port ``e`` (``e`` in ``[0, ah)``) connects to group
``e`` if ``e < gi`` else ``e + 1``.  For smaller dragonflies the excess
global connections are distributed round-robin over the group pairs so
that every pair is connected by at least ``floor(ah / (g-1))`` channels
(Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.params import DragonflyParams, TopologyError
from .base import ChannelKind, Fabric, PortRef


@dataclass(frozen=True)
class GlobalLink:
    """One directed global connection leaving a group."""

    src_router: int
    src_port: int
    dst_router: int
    dst_group: int


class Dragonfly:
    """A concrete dragonfly network with routing tables.

    Parameters
    ----------
    params:
        The ``(p, a, h, g)`` configuration.
    local_latency, global_latency, terminal_latency:
        Channel latencies in cycles used by the simulator.
    """

    def __init__(
        self,
        params: DragonflyParams,
        local_latency: int = 1,
        global_latency: int = 1,
        terminal_latency: int = 1,
        max_channels_per_pair: Optional[int] = None,
    ) -> None:
        """Build the network.

        ``max_channels_per_pair`` enables *bandwidth tapering*
        (Section 3.2): when set, at most that many global channels are
        wired between any pair of groups, leaving excess global ports
        unused and reducing global cable count (and cost) when uniform
        inter-group bandwidth is not required.
        """
        if max_channels_per_pair is not None and max_channels_per_pair < 1:
            raise TopologyError("max_channels_per_pair must be >= 1 when set")
        self.params = params
        self.max_channels_per_pair = max_channels_per_pair
        self.local_latency = local_latency
        self.global_latency = global_latency
        self.terminal_latency = terminal_latency
        # Plain attributes (not properties): these sit on the hot path
        # of routing decisions, where descriptor dispatch is measurable.
        self.p = params.p
        self.a = params.a
        self.h = params.h
        self.g = params.g
        self.num_terminals = params.num_terminals
        self.fabric = Fabric(num_routers=params.num_routers, name="dragonfly")
        # (group, group) -> list of directed GlobalLink from first to second
        self._group_links: Dict[Tuple[int, int], List[GlobalLink]] = {}
        # router -> list of GlobalLink (one per global port)
        self._router_global_links: Dict[int, List[GlobalLink]] = {
            r: [] for r in range(params.num_routers)
        }
        self._build()

    # ------------------------------------------------------------------
    # Identity helpers
    # ------------------------------------------------------------------
    def group_of(self, router: int) -> int:
        return router // self.a

    def local_index(self, router: int) -> int:
        return router % self.a

    def router_id(self, group: int, local_index: int) -> int:
        return group * self.a + local_index

    def group_routers(self, group: int) -> range:
        return range(group * self.a, (group + 1) * self.a)

    def terminal_router(self, terminal: int) -> int:
        return self._terminal_routers[terminal]

    def terminal_port(self, terminal: int) -> int:
        return self.fabric.terminals[terminal].port

    def terminal_group(self, terminal: int) -> int:
        return self.group_of(self.terminal_router(terminal))

    # Port-class helpers -------------------------------------------------
    def is_terminal_port(self, port: int) -> bool:
        return port < self.p

    def is_local_port(self, port: int) -> bool:
        return self.p <= port < self.p + self.a - 1

    def is_global_port(self, port: int) -> bool:
        return self.p + self.a - 1 <= port < self.params.radix

    def local_port(self, router: int, dst_router: int) -> int:
        """Port of ``router`` on the direct local channel to ``dst_router``.

        Both routers must be in the same group and distinct.
        """
        if self.group_of(router) != self.group_of(dst_router):
            raise TopologyError("local_port requires routers in the same group")
        src_local = self.local_index(router)
        dst_local = self.local_index(dst_router)
        if src_local == dst_local:
            raise TopologyError("no local channel from a router to itself")
        offset = dst_local if dst_local < src_local else dst_local - 1
        return self.p + offset

    def global_links_of(self, router: int) -> List[GlobalLink]:
        """The ``h`` global connections of a router."""
        return self._router_global_links[router]

    def group_links(self, src_group: int, dst_group: int) -> List[GlobalLink]:
        """All directed global connections from one group to another."""
        if src_group == dst_group:
            raise TopologyError("no global links within a group")
        return self._group_links.get((src_group, dst_group), [])

    def groups_reached_by(self, router: int) -> List[int]:
        return [link.dst_group for link in self._router_global_links[router]]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        params = self.params
        # Terminals: terminal t -> router t // p, port t % p.
        for router in range(params.num_routers):
            for port in range(params.p):
                self.fabric.add_terminal(router=router, port=port)
        # Local channels: each group completely connected.
        for group in range(params.g):
            routers = list(self.group_routers(group))
            for i, src in enumerate(routers):
                for dst in routers[i + 1:]:
                    self.fabric.connect(
                        PortRef(src, self.local_port(src, dst)),
                        PortRef(dst, self.local_port(dst, src)),
                        ChannelKind.LOCAL,
                        latency=self.local_latency,
                    )
        # Global channels.
        if params.g > 1:
            if params.is_max_size and self.max_channels_per_pair is None:
                self._wire_global_max_size()
            else:
                self._wire_global_distributed()
        self.fabric.validate()
        #: True when every connected group pair has exactly one global
        #: link -- the canonical ``g = ah + 1`` dragonfly.  Route-plan
        #: construction then never has a tie to break (consumes no rng
        #: beyond the Valiant intermediate-group draw), which lets
        #: :mod:`repro.routing.paths` memoise plans per group tuple.
        self.single_link_pairs = all(
            len(links) == 1 for links in self._group_links.values()
        )
        #: Flat terminal -> router table; ``terminal_router`` sits on the
        #: per-packet routing path, where the ``fabric.terminals[t]``
        #: attribute chain is measurable.
        self._terminal_routers = [
            ref.router for ref in self.fabric.terminals
        ]

    def _group_port_to_router_port(self, group: int, group_port: int) -> PortRef:
        """Map a group-level global port index to a concrete router port."""
        local_router = group_port // self.h
        port_within = group_port % self.h
        router = self.router_id(group, local_router)
        return PortRef(router, self.p + self.a - 1 + port_within)

    def _record_global(self, src: PortRef, dst: PortRef) -> None:
        src_group = self.group_of(src.router)
        dst_group = self.group_of(dst.router)
        forward = GlobalLink(
            src_router=src.router,
            src_port=src.port,
            dst_router=dst.router,
            dst_group=dst_group,
        )
        backward = GlobalLink(
            src_router=dst.router,
            src_port=dst.port,
            dst_router=src.router,
            dst_group=src_group,
        )
        self._group_links.setdefault((src_group, dst_group), []).append(forward)
        self._group_links.setdefault((dst_group, src_group), []).append(backward)
        self._router_global_links[src.router].append(forward)
        self._router_global_links[dst.router].append(backward)

    def _wire_global_max_size(self) -> None:
        """Absolute arrangement: one channel between every pair of groups."""
        for src_group in range(self.g):
            for group_port in range(self.a * self.h):
                dst_group = group_port if group_port < src_group else group_port + 1
                if dst_group < src_group:
                    continue  # wired when iterating the smaller group
                src = self._group_port_to_router_port(src_group, group_port)
                dst_group_port = src_group  # since src_group < dst_group
                dst = self._group_port_to_router_port(dst_group, dst_group_port)
                self.fabric.connect(src, dst, ChannelKind.GLOBAL, latency=self.global_latency)
                self._record_global(src, dst)

    def _wire_global_distributed(self) -> None:
        """Round-robin distribution of channels over group pairs.

        Guarantees every pair is connected by at least
        ``floor(ah / (g-1))`` channels and that channel counts between
        pairs differ by at most one.
        """
        free_ports = {group: list(range(self.a * self.h)) for group in range(self.g)}
        pairs = [
            (i, j)
            for i in range(self.g)
            for j in range(i + 1, self.g)
        ]
        wired = {pair: 0 for pair in pairs}
        cap = self.max_channels_per_pair
        # Balanced greedy: always extend the least-wired pair, breaking
        # ties toward the groups with the most free ports.  This keeps
        # per-pair counts within one of each other and avoids stranding
        # ports on a group whose peers exhausted theirs.
        while True:
            candidates = [
                pair
                for pair in pairs
                if free_ports[pair[0]]
                and free_ports[pair[1]]
                and (cap is None or wired[pair] < cap)
            ]
            if not candidates:
                break
            i, j = min(
                candidates,
                key=lambda pair: (
                    wired[pair],
                    -(len(free_ports[pair[0]]) + len(free_ports[pair[1]])),
                    pair,
                ),
            )
            src = self._group_port_to_router_port(i, free_ports[i].pop(0))
            dst = self._group_port_to_router_port(j, free_ports[j].pop(0))
            self.fabric.connect(src, dst, ChannelKind.GLOBAL, latency=self.global_latency)
            self._record_global(src, dst)
            wired[(i, j)] += 1
        leftover = sum(len(ports) for ports in free_ports.values())
        if cap is None and leftover > 1:
            # At most one port can remain unpaired (odd total endpoints are
            # rejected by DragonflyParams); more indicates a wiring bug.
            raise TopologyError(f"{leftover} global ports left unwired")
        if any(count == 0 for count in wired.values()):
            raise TopologyError("tapering disconnected a pair of groups")

    # ------------------------------------------------------------------
    # Path helpers (used by the routing algorithms and analytics)
    # ------------------------------------------------------------------
    def minimal_hop_count(self, src_terminal: int, dst_terminal: int) -> int:
        """Router-to-router channel traversals of the minimal route."""
        src_router = self.terminal_router(src_terminal)
        dst_router = self.terminal_router(dst_terminal)
        if src_router == dst_router:
            return 0
        src_group = self.group_of(src_router)
        dst_group = self.group_of(dst_router)
        if src_group == dst_group:
            return 1
        best = None
        for link in self.group_links(src_group, dst_group):
            hops = 1  # the global channel
            if link.src_router != src_router:
                hops += 1
            if link.dst_router != dst_router:
                hops += 1
            best = hops if best is None else min(best, hops)
        if best is None:
            raise TopologyError(
                f"groups {src_group} and {dst_group} are not connected"
            )
        return best

    def describe(self) -> str:
        return (
            f"{self.params.describe()}, "
            f"{self.fabric.num_cables(ChannelKind.LOCAL)} local cables, "
            f"{self.fabric.num_cables(ChannelKind.GLOBAL)} global cables"
        )


def make_dragonfly(
    p: int,
    a: int,
    h: int,
    num_groups: Optional[int] = None,
    **latencies: int,
) -> Dragonfly:
    """Convenience constructor: ``make_dragonfly(p=2, a=4, h=2)``."""
    return Dragonfly(DragonflyParams(p=p, a=a, h=h, num_groups=num_groups), **latencies)
