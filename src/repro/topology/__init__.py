"""Topology builders: dragonfly and the paper's comparison baselines."""

from .base import Channel, ChannelKind, Fabric, PortRef, Terminal
from .dragonfly import Dragonfly, GlobalLink, make_dragonfly
from .flattened_butterfly import FlattenedButterfly
from .folded_clos import FoldedClos, levels_required
from .group_variants import FlattenedButterflyGroupDragonfly
from .slicing import ChannelSlicedDragonfly, tapered_dragonfly
from .torus import Torus

__all__ = [
    "Channel",
    "ChannelKind",
    "Fabric",
    "PortRef",
    "Terminal",
    "Dragonfly",
    "GlobalLink",
    "make_dragonfly",
    "FlattenedButterfly",
    "FoldedClos",
    "levels_required",
    "FlattenedButterflyGroupDragonfly",
    "ChannelSlicedDragonfly",
    "tapered_dragonfly",
    "Torus",
]
