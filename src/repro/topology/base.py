"""Shared fabric representation used by all topologies.

A :class:`Fabric` is the low-level wiring description every topology in
this package produces: a set of routers, each with numbered ports, a set
of directed channels between router ports, and a set of terminals attached
to dedicated router ports.  The cycle-accurate simulator in
:mod:`repro.network` consumes a fabric directly; the cost model consumes
the channel list together with a physical layout.

Channels are *directed*: every physical bidirectional cable appears as two
directed channels, one per direction.  Helpers are provided to enumerate
the underlying bidirectional links when counting cables for cost purposes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx


class ChannelKind(enum.Enum):
    """Classification of a channel for routing, VC and cost purposes."""

    TERMINAL = "terminal"  # router <-> attached terminal (injection/ejection)
    LOCAL = "local"        # intra-group / intra-dimension, short electrical
    GLOBAL = "global"      # inter-group / inter-cabinet, long (optical)


@dataclass(frozen=True)
class PortRef:
    """A (router, port) pair identifying one endpoint of a channel."""

    router: int
    port: int


@dataclass(frozen=True)
class Channel:
    """One directed channel of the fabric.

    ``index`` is the dense identifier assigned by the fabric; the reverse
    direction of the same cable is a distinct channel.
    """

    index: int
    src: PortRef
    dst: PortRef
    kind: ChannelKind
    latency: int = 1


@dataclass(frozen=True)
class Terminal:
    """A network endpoint (processor) attached to a router port."""

    index: int
    router: int
    port: int


class Fabric:
    """Mutable builder + queryable description of a wired network.

    Construction protocol (used by the topology builders):

    >>> fabric = Fabric(num_routers=2)
    >>> t = fabric.add_terminal(router=0, port=0)
    >>> c = fabric.connect(PortRef(0, 1), PortRef(1, 1), ChannelKind.LOCAL)

    ``connect`` wires *both* directions of a bidirectional cable and
    returns the forward channel.
    """

    def __init__(self, num_routers: int, name: str = "fabric") -> None:
        if num_routers < 1:
            raise ValueError("a fabric needs at least one router")
        self.name = name
        self.num_routers = num_routers
        self.channels: List[Channel] = []
        self.terminals: List[Terminal] = []
        # (router, port) -> outgoing channel index
        self._out_channel: Dict[Tuple[int, int], int] = {}
        # (router, port) -> incoming channel index
        self._in_channel: Dict[Tuple[int, int], int] = {}
        # (router, port) -> terminal index for terminal ports
        self._terminal_at: Dict[Tuple[int, int], int] = {}
        self._ports_used: Dict[int, set] = {r: set() for r in range(num_routers)}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _claim_port(self, router: int, port: int) -> None:
        if not (0 <= router < self.num_routers):
            raise ValueError(f"router {router} out of range")
        if port in self._ports_used[router]:
            raise ValueError(f"port {port} of router {router} already wired")
        self._ports_used[router].add(port)

    def add_terminal(self, router: int, port: int) -> Terminal:
        """Attach a terminal to a router port (claims the port)."""
        self._claim_port(router, port)
        terminal = Terminal(index=len(self.terminals), router=router, port=port)
        self.terminals.append(terminal)
        self._terminal_at[(router, port)] = terminal.index
        return terminal

    def connect(
        self,
        src: PortRef,
        dst: PortRef,
        kind: ChannelKind,
        latency: int = 1,
    ) -> Channel:
        """Wire a bidirectional cable between two router ports.

        Claims both ports and creates two directed channels.  Returns the
        ``src -> dst`` direction.
        """
        if src.router == dst.router:
            raise ValueError("cannot connect a router to itself")
        self._claim_port(src.router, src.port)
        self._claim_port(dst.router, dst.port)
        forward = Channel(index=len(self.channels), src=src, dst=dst, kind=kind, latency=latency)
        self.channels.append(forward)
        backward = Channel(
            index=len(self.channels),
            src=dst,
            dst=src,
            kind=kind,
            latency=latency,
        )
        self.channels.append(backward)
        self._out_channel[(src.router, src.port)] = forward.index
        self._in_channel[(dst.router, dst.port)] = forward.index
        self._out_channel[(dst.router, dst.port)] = backward.index
        self._in_channel[(src.router, src.port)] = backward.index
        return forward

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_terminals(self) -> int:
        return len(self.terminals)

    @property
    def num_channels(self) -> int:
        """Count of *directed* router-to-router channels."""
        return len(self.channels)

    def radix(self, router: int) -> int:
        """Number of wired ports (including terminal ports) of a router."""
        return len(self._ports_used[router])

    def max_radix(self) -> int:
        return max(self.radix(r) for r in range(self.num_routers))

    def out_channel(self, router: int, port: int) -> Optional[Channel]:
        """The outgoing channel at a port, or None for terminal ports."""
        idx = self._out_channel.get((router, port))
        return self.channels[idx] if idx is not None else None

    def terminal_at(self, router: int, port: int) -> Optional[Terminal]:
        idx = self._terminal_at.get((router, port))
        return self.terminals[idx] if idx is not None else None

    def is_terminal_port(self, router: int, port: int) -> bool:
        return (router, port) in self._terminal_at

    def ports(self, router: int) -> List[int]:
        return sorted(self._ports_used[router])

    def channels_of_kind(self, kind: ChannelKind) -> List[Channel]:
        return [c for c in self.channels if c.kind == kind]

    def bidirectional_links(self) -> Iterator[Tuple[Channel, Channel]]:
        """Yield (forward, backward) pairs -- one per physical cable."""
        for i in range(0, len(self.channels), 2):
            yield self.channels[i], self.channels[i + 1]

    def num_cables(self, kind: Optional[ChannelKind] = None) -> int:
        """Count of physical bidirectional cables, optionally by kind."""
        count = 0
        for forward, _ in self.bidirectional_links():
            if kind is None or forward.kind == kind:
                count += 1
        return count

    def neighbors(self, router: int) -> List[int]:
        """Routers directly connected to ``router``."""
        out = []
        for port in self.ports(router):
            channel = self.out_channel(router, port)
            if channel is not None:
                out.append(channel.dst.router)
        return out

    # ------------------------------------------------------------------
    # Graph export / structural checks
    # ------------------------------------------------------------------
    def router_graph(self) -> nx.MultiGraph:
        """Undirected multigraph over routers (one edge per cable)."""
        graph = nx.MultiGraph()
        graph.add_nodes_from(range(self.num_routers))
        for forward, _ in self.bidirectional_links():
            graph.add_edge(
                forward.src.router,
                forward.dst.router,
                kind=forward.kind.value,
            )
        return graph

    def is_connected(self) -> bool:
        return nx.is_connected(self.router_graph())

    def router_diameter(self) -> int:
        """Hop diameter of the router-to-router graph."""
        return nx.diameter(nx.Graph(self.router_graph()))

    def validate(self) -> None:
        """Structural sanity checks; raises ValueError on inconsistency."""
        for (router, port), idx in self._out_channel.items():
            channel = self.channels[idx]
            if channel.src != PortRef(router, port):
                raise ValueError(f"channel map corrupt at router {router} port {port}")
        for terminal in self.terminals:
            if (terminal.router, terminal.port) in self._out_channel:
                raise ValueError(
                    f"terminal {terminal.index} shares a port with a channel"
                )
        if self.num_routers > 1 and not self.is_connected():
            raise ValueError("fabric is not connected")
