"""Folded-Clos (fat-tree) topology.

The dragonfly paper uses the folded Clos [Clos 1953, Leiserson 1985] as a
cost baseline: an indirect network built from radix-``k`` switches in
``L`` levels, with half the ports of each switch facing down and half
facing up (the top level uses only its down ports).  Full bisection
bandwidth is provided: every level boundary carries the full injection
bandwidth of the terminals below it.

This module builds the uniform-level folded Clos: with ``d = k/2`` ports
per direction, every level has ``d^(L-1)`` switches and the network
supports ``N = d^L`` terminals using ``L * d^(L-1)`` switches.  (The cost
model in :mod:`repro.cost` additionally knows the paper's half-top-level
optimisation analytically.)
"""

from __future__ import annotations

from typing import List

from .base import ChannelKind, Fabric, PortRef


def levels_required(num_terminals: int, radix: int) -> int:
    """Minimum level count for a folded Clos of ``N`` terminals."""
    if radix < 2 or radix % 2 != 0:
        raise ValueError("folded Clos requires an even radix >= 2")
    if num_terminals < 1:
        raise ValueError("num_terminals must be >= 1")
    down = radix // 2
    levels = 1
    capacity = down
    while capacity < num_terminals:
        levels += 1
        capacity *= down
    return levels


class FoldedClos:
    """A concrete folded-Clos fabric.

    Levels run from 0 (leaves, terminals attached) to ``levels - 1``
    (roots).  Between adjacent levels switches are wired in the standard
    butterfly pattern: the level-``l`` switch with base-``d`` digit vector
    ``D`` connects its up port ``u`` to the level-``l+1`` switch whose
    digits equal ``D`` with digit ``l`` replaced by ``u``, arriving on
    that switch's down port ``D[l]``.  Folding pairs each up cable with
    the corresponding down cable into one bidirectional link.

    Port layout of every switch: down ports ``[0, d)`` (terminals at the
    leaves), up ports ``[d, 2d)`` (unused at the top level).
    """

    def __init__(
        self,
        num_terminals: int,
        radix: int,
        local_latency: int = 1,
        global_latency: int = 1,
    ) -> None:
        if radix < 2 or radix % 2 != 0:
            raise ValueError("folded Clos requires an even radix >= 2")
        down = radix // 2
        self.radix = radix
        self.down = down
        self.levels = levels_required(num_terminals, radix)
        self.switches_per_level = down ** (self.levels - 1)
        self.capacity = down**self.levels
        if num_terminals != self.capacity:
            raise ValueError(
                f"num_terminals={num_terminals} must equal d^L={self.capacity} "
                f"for a full fabric (use the analytic cost model for partial "
                f"configurations)"
            )
        self.num_terminals = num_terminals
        self.num_switches = self.levels * self.switches_per_level
        self.fabric = Fabric(num_routers=self.num_switches, name="folded_clos")
        self._local_latency = local_latency
        self._global_latency = global_latency
        #: Ejection latency used by the simulator (shared interface).
        self.terminal_latency = 1
        self._build()

    def switch_id(self, level: int, index: int) -> int:
        if not (0 <= level < self.levels):
            raise ValueError(f"level {level} out of range")
        if not (0 <= index < self.switches_per_level):
            raise ValueError(f"index {index} out of range at level {level}")
        return level * self.switches_per_level + index

    def _digits(self, index: int) -> List[int]:
        digits = []
        rest = index
        for _ in range(self.levels - 1):
            digits.append(rest % self.down)
            rest //= self.down
        return digits

    def _undigits(self, digits: List[int]) -> int:
        value = 0
        for i, digit in enumerate(digits):
            value += digit * self.down**i
        return value

    def _build(self) -> None:
        down = self.down
        for leaf in range(self.switches_per_level):
            switch = self.switch_id(0, leaf)
            for port in range(down):
                self.fabric.add_terminal(router=switch, port=port)
        for level in range(self.levels - 1):
            kind = ChannelKind.LOCAL if level == 0 else ChannelKind.GLOBAL
            latency = (
                self._local_latency if kind == ChannelKind.LOCAL else self._global_latency
            )
            for index in range(self.switches_per_level):
                src = self.switch_id(level, index)
                digits = self._digits(index)
                for up in range(down):
                    dst_digits = list(digits)
                    dst_digits[level] = up
                    dst = self.switch_id(level + 1, self._undigits(dst_digits))
                    self.fabric.connect(
                        PortRef(src, down + up),
                        PortRef(dst, digits[level]),
                        kind,
                        latency=latency,
                    )
        self.fabric.validate()

    def terminal_leaf(self, terminal: int) -> int:
        return self.fabric.terminals[terminal].router

    def terminal_router(self, terminal: int) -> int:
        return self.fabric.terminals[terminal].router

    def terminal_port(self, terminal: int) -> int:
        return self.fabric.terminals[terminal].port

    def level_of(self, switch: int) -> int:
        return switch // self.switches_per_level

    def index_of(self, switch: int) -> int:
        return switch % self.switches_per_level

    def digits_of_leaf(self, leaf_index: int) -> List[int]:
        """Base-``d`` digits of a leaf index (digit ``l`` selects the
        level-``l`` up/down branch)."""
        return self._digits(leaf_index)

    def ancestor_level(self, src_leaf: int, dst_leaf: int) -> int:
        """Nearest-common-ancestor level of two leaves."""
        if src_leaf == dst_leaf:
            return 0
        src_digits = self._digits(src_leaf)
        dst_digits = self._digits(dst_leaf)
        highest = 0
        for i in range(self.levels - 1):
            if src_digits[i] != dst_digits[i]:
                highest = i + 1
        return highest

    def minimal_hop_count(self, src_terminal: int, dst_terminal: int) -> int:
        """Hops of the minimal (nearest-common-ancestor) route."""
        src = self.fabric.terminals[src_terminal]
        dst = self.fabric.terminals[dst_terminal]
        if src.router == dst.router:
            return 0
        src_digits = self._digits(src.router)
        dst_digits = self._digits(dst.router - 0)  # leaves are level 0
        # Nearest common ancestor level: the highest differing digit + 1.
        highest = 0
        for i in range(self.levels - 1):
            if src_digits[i] != dst_digits[i]:
                highest = i + 1
        return 2 * highest

    def describe(self) -> str:
        return (
            f"folded_clos(N={self.num_terminals}, k={self.radix}, "
            f"levels={self.levels}, switches={self.num_switches})"
        )
