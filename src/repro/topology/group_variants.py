"""Dragonfly group variants (Section 3.2, Figure 6).

The intra-group network of a dragonfly need not be completely connected.
Figure 6 of the paper shows two variants:

(a) a 2-D flattened butterfly intra-group network with the same group
    radix that exploits packaging locality (more bandwidth to neighbouring
    routers), and
(b) a higher-dimensional flattened butterfly intra-group network that
    *increases* the group size ``a`` (and hence ``k'``) for the same
    router radix -- e.g. a 3-D flattened butterfly of 2x2x2 routers with
    ``p = 2`` is a 3-D cube and doubles ``k'`` from 16 to 32 relative to
    the Figure 5 example.

This module builds such dragonflies: the inter-group wiring is identical
to the canonical topology; only the local wiring (and therefore the local
minimal path length, up to ``n`` hops per group) changes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.params import TopologyError
from .base import ChannelKind, Fabric, PortRef
from .dragonfly import GlobalLink


class FlattenedButterflyGroupDragonfly:
    """Dragonfly whose groups are n-dimensional flattened butterflies.

    Parameters
    ----------
    p:
        Terminals per router.
    group_dims:
        Dimension sizes of the intra-group flattened butterfly; the group
        size is ``a = prod(group_dims)``.
    h:
        Global channels per router.
    num_groups:
        Group count; defaults to the maximum ``a*h + 1``.
    """

    def __init__(
        self,
        p: int,
        group_dims: Sequence[int],
        h: int,
        num_groups: int = 0,
        local_latency: int = 1,
        global_latency: int = 1,
    ) -> None:
        if p < 1 or h < 0:
            raise TopologyError("p must be >= 1 and h >= 0")
        if not group_dims or any(m < 1 for m in group_dims):
            raise TopologyError(f"invalid group dimensions {group_dims}")
        self.p = p
        self.h = h
        self.group_dims: Tuple[int, ...] = tuple(group_dims)
        self.a = 1
        for m in self.group_dims:
            self.a *= m
        max_groups = self.a * self.h + 1
        self.g = num_groups if num_groups else max_groups
        if self.g > max_groups:
            raise TopologyError(f"num_groups={self.g} exceeds a*h+1={max_groups}")
        if self.g > 1 and (self.g * self.a * self.h) % 2 != 0:
            raise TopologyError("g*a*h must be even to pair global channels")
        self.local_ports = sum(m - 1 for m in self.group_dims)
        self.radix = p + self.local_ports + h
        self.num_routers = self.a * self.g
        self.num_terminals = self.a * self.p * self.g
        #: Ejection latency used by the simulator (shared interface).
        self.terminal_latency = 1
        self.fabric = Fabric(self.num_routers, name="dragonfly_fb_group")
        self._local_latency = local_latency
        self._global_latency = global_latency
        self._dim_port_base = self._compute_port_bases()
        self._group_links: Dict[Tuple[int, int], List[GlobalLink]] = {}
        self._build()

    # ------------------------------------------------------------------
    @property
    def effective_radix(self) -> int:
        """Virtual-router radix ``k' = a (p + h)``."""
        return self.a * (self.p + self.h)

    def _compute_port_bases(self) -> List[int]:
        bases = []
        base = self.p
        for m in self.group_dims:
            bases.append(base)
            base += m - 1
        return bases

    def group_of(self, router: int) -> int:
        return router // self.a

    def local_index(self, router: int) -> int:
        return router % self.a

    def coords_of(self, router: int) -> Tuple[int, ...]:
        coords = []
        rest = self.local_index(router)
        for m in reversed(self.group_dims):
            coords.append(rest % m)
            rest //= m
        return tuple(reversed(coords))

    def local_router_at(self, group: int, coords: Sequence[int]) -> int:
        local = 0
        for coord, m in zip(coords, self.group_dims):
            if not (0 <= coord < m):
                raise TopologyError(f"coordinate {coord} out of range")
            local = local * m + coord
        return group * self.a + local

    def dim_port(self, router: int, dim: int, dst_coord: int) -> int:
        src_coord = self.coords_of(router)[dim]
        if src_coord == dst_coord:
            raise TopologyError("no channel from a router to itself")
        offset = dst_coord if dst_coord < src_coord else dst_coord - 1
        return self._dim_port_base[dim] + offset

    def global_port(self, slot: int) -> int:
        if not (0 <= slot < self.h):
            raise TopologyError(f"global slot {slot} out of range")
        return self.p + self.local_ports + slot

    def intra_group_hops(self, src_router: int, dst_router: int) -> int:
        """Hamming distance within the group's flattened butterfly."""
        src = self.coords_of(src_router)
        dst = self.coords_of(dst_router)
        return sum(1 for s, d in zip(src, dst) if s != d)

    def group_links(self, src_group: int, dst_group: int) -> List[GlobalLink]:
        return self._group_links.get((src_group, dst_group), [])

    @property
    def terminals_per_group(self) -> int:
        return self.a * self.p

    def terminal_router(self, terminal: int) -> int:
        return self.fabric.terminals[terminal].router

    def terminal_port(self, terminal: int) -> int:
        return self.fabric.terminals[terminal].port

    def terminal_group(self, terminal: int) -> int:
        return self.group_of(self.terminal_router(terminal))

    # ------------------------------------------------------------------
    def _build(self) -> None:
        for router in range(self.num_routers):
            for port in range(self.p):
                self.fabric.add_terminal(router=router, port=port)
        for group in range(self.g):
            self._wire_group(group)
        if self.g > 1:
            self._wire_global()
        self.fabric.validate()

    def _wire_group(self, group: int) -> None:
        for dim, m in enumerate(self.group_dims):
            for local in range(self.a):
                router = group * self.a + local
                coords = self.coords_of(router)
                for dst_coord in range(coords[dim] + 1, m):
                    dst_coords = list(coords)
                    dst_coords[dim] = dst_coord
                    dst = self.local_router_at(group, dst_coords)
                    self.fabric.connect(
                        PortRef(router, self.dim_port(router, dim, dst_coord)),
                        PortRef(dst, self.dim_port(dst, dim, coords[dim])),
                        ChannelKind.LOCAL,
                        latency=self._local_latency,
                    )

    def _group_port_to_router_port(self, group: int, group_port: int) -> PortRef:
        local_router = group_port // self.h
        slot = group_port % self.h
        return PortRef(group * self.a + local_router, self.global_port(slot))

    def _record_global(self, src: PortRef, dst: PortRef) -> None:
        src_group, dst_group = self.group_of(src.router), self.group_of(dst.router)
        self._group_links.setdefault((src_group, dst_group), []).append(
            GlobalLink(src.router, src.port, dst.router, dst_group)
        )
        self._group_links.setdefault((dst_group, src_group), []).append(
            GlobalLink(dst.router, dst.port, src.router, src_group)
        )

    def _wire_global(self) -> None:
        if self.g == self.a * self.h + 1:
            for src_group in range(self.g):
                for group_port in range(self.a * self.h):
                    dst_group = group_port if group_port < src_group else group_port + 1
                    if dst_group < src_group:
                        continue
                    src = self._group_port_to_router_port(src_group, group_port)
                    dst = self._group_port_to_router_port(dst_group, src_group)
                    self.fabric.connect(
                        src, dst, ChannelKind.GLOBAL, latency=self._global_latency
                    )
                    self._record_global(src, dst)
            return
        free = {group: list(range(self.a * self.h)) for group in range(self.g)}
        pairs = [(i, j) for i in range(self.g) for j in range(i + 1, self.g)]
        wired = {pair: 0 for pair in pairs}
        # Balanced greedy (see Dragonfly._wire_global_distributed).
        while True:
            candidates = [
                pair for pair in pairs if free[pair[0]] and free[pair[1]]
            ]
            if not candidates:
                break
            i, j = min(
                candidates,
                key=lambda pair: (
                    wired[pair],
                    -(len(free[pair[0]]) + len(free[pair[1]])),
                    pair,
                ),
            )
            src = self._group_port_to_router_port(i, free[i].pop(0))
            dst = self._group_port_to_router_port(j, free[j].pop(0))
            self.fabric.connect(src, dst, ChannelKind.GLOBAL, latency=self._global_latency)
            self._record_global(src, dst)
            wired[(i, j)] += 1

    def describe(self) -> str:
        dims = "x".join(str(m) for m in self.group_dims)
        return (
            f"dragonfly_fb_group(p={self.p}, dims={dims}, h={self.h}, g={self.g}): "
            f"N={self.num_terminals}, k={self.radix}, k'={self.effective_radix}"
        )
