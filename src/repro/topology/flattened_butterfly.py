"""Flattened butterfly topology (Kim, Dally, Abts -- ISCA 2007).

The dragonfly paper uses the flattened butterfly both as the intra-group
network (a 1-D flattened butterfly *is* a completely-connected network)
and as the primary cost-comparison baseline.  An ``n``-dimensional
flattened butterfly with dimension sizes ``m_1 .. m_n`` and concentration
``c`` places a router at every coordinate of the ``m_1 x .. x m_n`` grid,
attaches ``c`` terminals to each, and completely connects every
1-D sub-line of every dimension.

Router radix: ``k = c + sum_i (m_i - 1)``.

Port layout::

    [0, c)                          terminal ports
    then for each dimension d:      m_d - 1 ports to the other routers
                                    sharing all coordinates except d
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .base import ChannelKind, Fabric, PortRef


class FlattenedButterfly:
    """Concrete flattened butterfly fabric with coordinate helpers."""

    def __init__(
        self,
        dims: Sequence[int],
        concentration: int,
        local_latency: int = 1,
        global_latency: int = 1,
        global_dims: Sequence[int] = (),
    ) -> None:
        """Build the fabric.

        Parameters
        ----------
        dims:
            Size of each dimension, e.g. ``(16, 16, 16)``.
        concentration:
            Terminals per router (``c``).
        global_dims:
            Indices of dimensions whose channels are long/inter-cabinet
            (marked :class:`ChannelKind.GLOBAL` for the cost model).  The
            convention of the paper's Figure 18 is that dimension 1 is
            intra-cabinet and higher dimensions are global.
        """
        if not dims or any(m < 1 for m in dims):
            raise ValueError(f"invalid dimension sizes {dims}")
        if concentration < 1:
            raise ValueError("concentration must be >= 1")
        self.dims: Tuple[int, ...] = tuple(dims)
        self.concentration = concentration
        self.global_dims = frozenset(global_dims)
        self.num_routers = 1
        for m in self.dims:
            self.num_routers *= m
        self.fabric = Fabric(num_routers=self.num_routers, name="flattened_butterfly")
        self._local_latency = local_latency
        self._global_latency = global_latency
        #: Ejection latency used by the simulator (interface shared with
        #: the dragonfly).
        self.terminal_latency = 1
        self._dim_port_base = self._compute_port_bases()
        self._build()

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def _compute_port_bases(self) -> List[int]:
        bases = []
        base = self.concentration
        for m in self.dims:
            bases.append(base)
            base += m - 1
        return bases

    @property
    def radix(self) -> int:
        return self.concentration + sum(m - 1 for m in self.dims)

    @property
    def num_terminals(self) -> int:
        return self.concentration * self.num_routers

    def coords_of(self, router: int) -> Tuple[int, ...]:
        coords = []
        rest = router
        for m in reversed(self.dims):
            coords.append(rest % m)
            rest //= m
        return tuple(reversed(coords))

    def router_at(self, coords: Sequence[int]) -> int:
        router = 0
        for coord, m in zip(coords, self.dims):
            if not (0 <= coord < m):
                raise ValueError(f"coordinate {coord} out of range for size {m}")
            router = router * m + coord
        return router

    def dim_port(self, router: int, dim: int, dst_coord: int) -> int:
        """Port of ``router`` toward coordinate ``dst_coord`` in ``dim``."""
        src_coord = self.coords_of(router)[dim]
        if src_coord == dst_coord:
            raise ValueError("no channel from a router to itself")
        offset = dst_coord if dst_coord < src_coord else dst_coord - 1
        return self._dim_port_base[dim] + offset

    def terminal_router(self, terminal: int) -> int:
        return self.fabric.terminals[terminal].router

    def terminal_port(self, terminal: int) -> int:
        return self.fabric.terminals[terminal].port

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for router in range(self.num_routers):
            for port in range(self.concentration):
                self.fabric.add_terminal(router=router, port=port)
        for dim, m in enumerate(self.dims):
            kind = (
                ChannelKind.GLOBAL if dim in self.global_dims else ChannelKind.LOCAL
            )
            latency = (
                self._global_latency if dim in self.global_dims else self._local_latency
            )
            for router in range(self.num_routers):
                coords = self.coords_of(router)
                for dst_coord in range(coords[dim] + 1, m):
                    dst_coords = list(coords)
                    dst_coords[dim] = dst_coord
                    dst = self.router_at(dst_coords)
                    self.fabric.connect(
                        PortRef(router, self.dim_port(router, dim, dst_coord)),
                        PortRef(dst, self.dim_port(dst, dim, coords[dim])),
                        kind,
                        latency=latency,
                    )
        self.fabric.validate()

    def minimal_hop_count(self, src_terminal: int, dst_terminal: int) -> int:
        """Hops of dimension-order minimal routing (Hamming distance)."""
        src = self.coords_of(self.terminal_router(src_terminal))
        dst = self.coords_of(self.terminal_router(dst_terminal))
        return sum(1 for s, d in zip(src, dst) if s != d)

    def describe(self) -> str:
        dims = "x".join(str(m) for m in self.dims)
        return (
            f"flattened_butterfly(dims={dims}, c={self.concentration}): "
            f"N={self.num_terminals}, k={self.radix}"
        )
