"""Terminal visualisation helpers (no plotting dependencies)."""

from .ascii import bar_chart, histogram_chart, line_chart, sweep_chart

__all__ = ["bar_chart", "histogram_chart", "line_chart", "sweep_chart"]
