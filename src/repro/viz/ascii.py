"""Terminal (ASCII) charts for simulation and cost results.

The paper's figures are latency-vs-load curves, bar-style channel
utilisation plots and histograms; this module renders all three as plain
text so examples and the benchmark harness can show *shapes*, not just
tables, without any plotting dependency.

All functions return a string (no printing) so they are trivially
testable and composable.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence, Tuple

#: Marker characters assigned to series in order.
_MARKERS = "ox+*#@%&"


def _finite(values: Sequence[float]) -> List[float]:
    return [value for value in values if not math.isinf(value) and not math.isnan(value)]


def line_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    y_max: Optional[float] = None,
) -> str:
    """Scatter/line chart of multiple (x, y) series.

    Infinite y values (saturated points) are drawn as ``^`` pinned to the
    top of the chart.  Series are labelled in a legend with markers
    assigned in iteration order.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 10 or height < 4:
        raise ValueError("chart too small")
    all_x = [x for points in series.values() for x, _ in points]
    all_y = _finite([y for points in series.values() for _, y in points])
    if not all_x:
        raise ValueError("series contain no points")
    x_min, x_max = min(all_x), max(all_x)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max is None:
        y_max = max(all_y) if all_y else 1.0
    y_min = 0.0
    if y_max <= y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def col_of(x: float) -> int:
        return min(width - 1, int((x - x_min) / (x_max - x_min) * (width - 1)))

    def row_of(y: float) -> int:
        fraction = (y - y_min) / (y_max - y_min)
        fraction = min(1.0, max(0.0, fraction))
        return (height - 1) - int(fraction * (height - 1))

    legend = []
    for index, (name, points) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in points:
            if math.isinf(y) or math.isnan(y) or y > y_max:
                grid[0][col_of(x)] = "^"
            else:
                grid[row_of(y)][col_of(x)] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:g}"
    for row_index, row in enumerate(grid):
        prefix = top_label.rjust(8) if row_index == 0 else " " * 8
        if row_index == height - 1:
            prefix = f"{y_min:g}".rjust(8)
        lines.append(prefix + " |" + "".join(row))
    axis = " " * 8 + " +" + "-" * width
    lines.append(axis)
    x_axis = " " * 10 + f"{x_min:g}".ljust(width - 8) + f"{x_max:g}"
    lines.append(x_axis)
    footer = []
    if x_label:
        footer.append(f"x: {x_label}")
    if y_label:
        footer.append(f"y: {y_label}")
    footer.append("legend: " + "  ".join(legend))
    if any(cell == "^" for row in grid for cell in row):
        footer.append("^ = saturated / off-scale")
    lines.append(" " * 8 + "  " + "; ".join(footer))
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart (e.g. per-channel utilisation, $/node)."""
    if not values:
        raise ValueError("need at least one bar")
    maximum = max(values.values())
    if maximum <= 0:
        maximum = 1.0
    label_width = max(len(name) for name in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(0, int(round(value / maximum * width)))
        lines.append(
            f"{name.rjust(label_width)} |{bar} {value:g}{unit}"
        )
    return "\n".join(lines)


def histogram_chart(
    bins: Sequence[Tuple[int, float]],
    width: int = 50,
    title: str = "",
    bin_label: str = "latency",
) -> str:
    """Vertical-bin histogram rendered as horizontal bars.

    ``bins`` is (bin_start, fraction) as produced by
    :meth:`repro.network.stats.SimulationResult.latency_histogram`.
    """
    if not bins:
        raise ValueError("need at least one bin")
    maximum = max(fraction for _, fraction in bins)
    if maximum <= 0:
        maximum = 1.0
    lines = [title] if title else []
    for bin_start, fraction in bins:
        bar = "#" * max(0, int(round(fraction / maximum * width)))
        lines.append(f"{bin_label} {bin_start:>6} |{bar} {fraction:.3f}")
    return "\n".join(lines)


def sweep_chart(
    sweeps: Mapping[str, Sequence],
    title: str = "latency vs offered load",
    y_max: Optional[float] = None,
) -> str:
    """Chart a dict of routing-name -> list of SweepPoint."""
    series = {
        name: [(point.load, point.latency) for point in points]
        for name, points in sweeps.items()
    }
    return line_chart(
        series,
        title=title,
        x_label="offered load (flits/node/cycle)",
        y_label="avg latency (cycles)",
        y_max=y_max,
    )
