"""``python -m repro.serve`` -- submit / status / query / gc.

Usage::

    python -m repro.serve --root DIR submit fig09
    python -m repro.serve --root DIR submit fig09 --loads 0.05,0.1 --workers 4
    python -m repro.serve --root DIR submit --manifest sweep.json --json
    python -m repro.serve --root DIR status
    python -m repro.serve --root DIR query --figure fig09 --routing UGAL-G
    python -m repro.serve --root DIR gc

``--root`` defaults to ``$REPRO_SWEEP_SERVICE``.  ``submit`` exits 0
when every unit completed, 1 when any unit failed permanently.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..service.client import service_root_from_env
from ..service.manifest import SweepManifest, manifests_for_figure
from ..service.scheduler import (
    JobProgress,
    SchedulerOptions,
    run_manifest,
)
from ..service.status import (
    job_statuses,
    render_query_rows,
    render_statuses,
    store_summary,
)
from ..service.store import ResultStore


def _resolve_root(raw: Optional[str]) -> Path:
    if raw:
        root = Path(raw)
        if root.exists() and not root.is_dir():
            raise SystemExit(
                f"error: service root {raw!r} exists and is not a directory"
            )
        return root
    root = service_root_from_env()
    if root is None:
        raise SystemExit(
            "error: no service root; pass --root DIR or set REPRO_SWEEP_SERVICE"
        )
    return root


def _parse_loads(raw: Optional[str]) -> Optional[List[float]]:
    if raw is None:
        return None
    try:
        loads = [float(part) for part in raw.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"error: --loads must be comma-separated floats, got {raw!r}")
    if not loads:
        raise SystemExit("error: --loads must name at least one load")
    return loads


def _manifests(args: argparse.Namespace) -> List[SweepManifest]:
    loads = _parse_loads(args.loads)
    if args.manifest:
        try:
            data = json.loads(Path(args.manifest).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise SystemExit(f"error: cannot read manifest {args.manifest}: {error}")
        try:
            manifest = SweepManifest.from_dict(data)
        except (KeyError, TypeError, ValueError) as error:
            raise SystemExit(f"error: bad manifest {args.manifest}: {error}")
        if loads is not None:
            import dataclasses

            manifest = dataclasses.replace(manifest, loads=tuple(loads))
        return [manifest]
    if not args.figure:
        raise SystemExit("error: submit needs a FIGURE id or --manifest FILE")
    try:
        return manifests_for_figure(args.figure, quick=not args.full, loads=loads)
    except KeyError as error:
        raise SystemExit(f"error: {error.args[0]}")


def _cmd_submit(args: argparse.Namespace) -> int:
    root = _resolve_root(args.root)
    options = SchedulerOptions.from_env()
    if args.workers is not None:
        import dataclasses

        options = dataclasses.replace(options, workers=args.workers)
    manifests = _manifests(args)
    live = args.progress and sys.stderr.isatty() and not args.json
    summaries = []
    exit_code = 0
    for manifest in manifests:
        if not args.json:
            print(
                f"submit {manifest.job_id}: {manifest.num_units()} units "
                f"({len(manifest.routings)} routings x "
                f"{len(manifest.patterns)} patterns x "
                f"{len(manifest.loads)} loads x {len(manifest.seeds)} seeds), "
                f"{options.workers} workers"
            )

        def show(progress: JobProgress) -> None:
            if live:
                print(
                    f"\r  {progress.line(options.workers)}",
                    end="",
                    file=sys.stderr,
                    flush=True,
                )

        report = run_manifest(root, manifest, options, on_progress=show)
        if live:
            print(file=sys.stderr)
        summary = {
            "job": report.job_id,
            "figure": report.figure,
            **report.progress.to_dict(),
            "failed_units": report.failed,
            "fallback_error": report.fallback_error,
        }
        summaries.append(summary)
        if report.failed:
            exit_code = 1
        if not args.json:
            print(f"  {report.progress.line(options.workers)}")
            if report.fallback_error:
                print(f"  fallback: {report.fallback_error}")
            for index, error in sorted(report.failed.items()):
                print(f"  FAILED unit {index}: {error}")
    if args.json:
        total = {
            "jobs": summaries,
            "simulated": sum(s["simulated"] for s in summaries),
            "cached": sum(s["cached"] for s in summaries),
            "failed": sum(s["failed"] for s in summaries),
        }
        print(json.dumps(total, indent=2, sort_keys=True))
    return exit_code


def _cmd_status(args: argparse.Namespace) -> int:
    root = _resolve_root(args.root)
    statuses = job_statuses(root)
    summary = store_summary(root)
    if args.json:
        print(json.dumps(
            {
                "jobs": [status.to_dict() for status in statuses],
                "store": summary,
            },
            indent=2,
            sort_keys=True,
        ))
        return 0
    print(render_statuses(statuses))
    figures = ", ".join(
        f"{figure}: {count}" for figure, count in summary["figures"].items()  # type: ignore[union-attr]
    )
    print(f"store: {summary['points']} points ({figures or 'empty'})")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    root = _resolve_root(args.root)
    store = ResultStore(root / "store")
    points = store.query(
        figure=args.figure,
        routing=args.routing,
        pattern=args.pattern,
        load=args.load,
        min_load=args.min_load,
        max_load=args.max_load,
        seed=args.seed,
        digest=args.digest,
        backend=args.backend,
    )
    if args.json:
        print(json.dumps([point.to_row() for point in points], indent=2))
        return 0
    print(render_query_rows(points))
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    root = _resolve_root(args.root)
    store = ResultStore(root / "store")
    counts = store.gc()
    if args.json:
        print(json.dumps(counts, indent=2, sort_keys=True))
        return 0
    print(
        f"gc: {counts['indexed']} points indexed, "
        f"{counts['recovered']} recovered, {counts['dropped']} index entries "
        f"dropped, {counts['corrupt']} corrupt records skipped, "
        f"{counts['tmp_removed']} temp files removed"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Sweep service: submit sweeps, query the result store.",
    )
    parser.add_argument(
        "--root",
        help="service root directory (default: $REPRO_SWEEP_SERVICE)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    submit = commands.add_parser(
        "submit", help="run a sweep (figure preset or --manifest file)"
    )
    submit.add_argument("figure", nargs="?", help="figure id, e.g. fig09")
    submit.add_argument("--manifest", help="explicit manifest JSON file")
    submit.add_argument(
        "--loads", help="override load list, comma-separated (e.g. 0.05,0.1)"
    )
    submit.add_argument(
        "--workers", type=int, help="worker processes (default: env)"
    )
    submit.add_argument(
        "--full", action="store_true", help="paper-scale topology (slow)"
    )
    submit.add_argument(
        "--json", action="store_true", help="machine-readable summary"
    )
    submit.add_argument(
        "--no-progress",
        dest="progress",
        action="store_false",
        help="disable the live progress line",
    )
    submit.set_defaults(func=_cmd_submit)

    status = commands.add_parser("status", help="narrate submitted jobs")
    status.add_argument("--json", action="store_true")
    status.set_defaults(func=_cmd_status)

    query = commands.add_parser("query", help="filter the result store")
    query.add_argument("--figure")
    query.add_argument("--routing")
    query.add_argument("--pattern")
    query.add_argument("--load", type=float)
    query.add_argument("--min-load", type=float)
    query.add_argument("--max-load", type=float)
    query.add_argument("--seed", type=int)
    query.add_argument("--digest", help="digest prefix")
    query.add_argument(
        "--backend",
        help="filter by producing engine (scalar, array, unknown)",
    )
    query.add_argument("--json", action="store_true")
    query.set_defaults(func=_cmd_query)

    gc = commands.add_parser("gc", help="rebuild the index, drop litter")
    gc.add_argument("--json", action="store_true")
    gc.set_defaults(func=_cmd_gc)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
