"""CLI front end of the sweep service (``python -m repro.serve``).

Verbs (see ``docs/sweep-service.md``):

``submit``
    Decompose a figure preset or an explicit ``--manifest`` file into
    content-addressed work units, run them through the sharded,
    journaled scheduler, and report live progress.  Re-submitting an
    already computed sweep performs zero simulation calls.
``status``
    Narrate every submitted job from its crash journal: done/failed
    counts, attempts burned, serial-fallback diagnostics.
``query``
    Filter the result store's index (figure, routing, pattern, load
    range, seed, digest prefix) -- never simulates.
``gc``
    Drop temp litter and stale records, rebuild the index.

The implementation lives in :mod:`repro.serve.__main__`; the library
layer is :mod:`repro.service`.
"""
