"""Bisection bandwidth analytics.

Channel counts across the worst-case even bipartition, both analytically
for the standard configurations and exactly (via max-flow-free counting
on the group graph) for concrete dragonflies.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..topology.dragonfly import Dragonfly


def dragonfly_group_bisection(topology: Dragonfly) -> int:
    """Global channels crossing the best balanced group bipartition.

    Exhaustive over group bipartitions for small ``g`` (<= 16), otherwise
    uses the contiguous split (exact for the symmetric maximum-size
    dragonfly, where every balanced split cuts the same channel count).
    """
    g = topology.g
    if g < 2:
        return 0
    half = g // 2

    def crossing(groups_a) -> int:
        set_a = set(groups_a)
        count = 0
        for group_i in set_a:
            for group_j in range(g):
                if group_j in set_a:
                    continue
                count += len(topology.group_links(group_i, group_j))
        return count

    if g <= 16:
        best: Optional[int] = None
        for combo in itertools.combinations(range(g), half):
            value = crossing(combo)
            best = value if best is None else min(best, value)
        return best if best is not None else 0
    return crossing(range(half))


def dragonfly_bisection_per_node(topology: Dragonfly) -> float:
    """Global bisection channels per terminal (0.5 means full bisection
    for uniform traffic, since only half a node's traffic crosses)."""
    return dragonfly_group_bisection(topology) / topology.num_terminals


def max_size_dragonfly_bisection(a: int, h: int) -> int:
    """Closed form for the maximum-size dragonfly (g = ah + 1): a
    balanced cut separates ``floor(g/2) * ceil(g/2)`` group pairs, one
    channel each."""
    g = a * h + 1
    return (g // 2) * ((g + 1) // 2)
