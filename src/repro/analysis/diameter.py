"""Hop-count and cable-length comparison (Table 2).

Table 2 of the paper compares the dragonfly and the flattened butterfly
of the same scale in terms of hop counts -- ``hl`` local hops and ``hg``
global hops -- and cable lengths relative to ``E``, the length of one
dimension of the physical system layout:

====================  ==============  =================  =========  ====
topology              minimal         non-minimal        avg cable  max
====================  ==============  =================  =========  ====
flattened butterfly   hl + 2 hg       2 hl + 4 hg        E/3        E
dragonfly             2 hl + hg       3 hl + 2 hg        2E/3       2E
====================  ==============  =================  =========  ====

(the dragonfly's maximum drops to ``sqrt(2) E`` with diagonal cable
runs).  The hop expressions assume the 64K-node configuration of Figure
18: a 3-D flattened butterfly (one local dimension, two global) versus a
dragonfly whose groups connect in a single global dimension.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class HopCount:
    """A path cost expressed in local and global hops."""

    local: int
    global_: int

    def cycles(self, local_latency: float, global_latency: float) -> float:
        return self.local * local_latency + self.global_ * global_latency

    def __str__(self) -> str:
        return f"{self.local}*hl + {self.global_}*hg"


@dataclass(frozen=True)
class TopologyComparison:
    """One row of Table 2."""

    topology: str
    minimal_diameter: HopCount
    nonminimal_diameter: HopCount
    #: Average and maximum cable length as fractions of the layout
    #: dimension ``E``.
    avg_cable_fraction: float
    max_cable_fraction: float

    def avg_cable_m(self, extent_m: float) -> float:
        return self.avg_cable_fraction * extent_m

    def max_cable_m(self, extent_m: float) -> float:
        return self.max_cable_fraction * extent_m


def flattened_butterfly_row() -> TopologyComparison:
    """Table 2's flattened butterfly row (3-D configuration)."""
    return TopologyComparison(
        topology="flattened butterfly",
        minimal_diameter=HopCount(local=1, global_=2),
        nonminimal_diameter=HopCount(local=2, global_=4),
        avg_cable_fraction=1.0 / 3.0,
        max_cable_fraction=1.0,
    )


def dragonfly_row(diagonal_cables: bool = False) -> TopologyComparison:
    """Table 2's dragonfly row.

    ``diagonal_cables`` applies the footnote: with diagonal runs the
    maximum cable shrinks from ``2E`` to ``sqrt(2) E``.
    """
    return TopologyComparison(
        topology="dragonfly",
        minimal_diameter=HopCount(local=2, global_=1),
        nonminimal_diameter=HopCount(local=3, global_=2),
        avg_cable_fraction=2.0 / 3.0,
        max_cable_fraction=math.sqrt(2.0) if diagonal_cables else 2.0,
    )


def table2() -> list:
    """Both rows, dragonfly last as in the paper."""
    return [flattened_butterfly_row(), dragonfly_row()]


def dragonfly_minimal_diameter_hops(a: int, g: int) -> int:
    """Channel-hop diameter of a concrete dragonfly's minimal routing."""
    hops = 0
    if a > 1:
        hops += 2
    if g > 1:
        hops += 1
    return hops
