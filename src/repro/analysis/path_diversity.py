"""Path diversity and fault tolerance of the dragonfly.

Non-minimal routing is not only a load-balancing tool: the same route
freedom provides fault tolerance.  Between any two groups a dragonfly
offers one minimal global channel and ``g - 2`` two-hop alternatives
through intermediate groups, so single global-cable faults are always
routable around.  This module quantifies that:

* route counts per source/destination pair (minimal and Valiant),
* global-channel fault tolerance: the number of distinct global-channel
  failures a pair of groups can absorb while staying connected at the
  group level,
* survivability of a concrete fault set, decided on the group graph.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

import networkx as nx

from ..topology.dragonfly import Dragonfly, GlobalLink


def minimal_route_count(topology: Dragonfly, src_terminal: int, dst_terminal: int) -> int:
    """Distinct minimal routes (one per parallel global channel)."""
    src_group = topology.terminal_group(src_terminal)
    dst_group = topology.terminal_group(dst_terminal)
    if src_group == dst_group:
        return 1
    return len(topology.group_links(src_group, dst_group))

def valiant_route_count(topology: Dragonfly, src_terminal: int, dst_terminal: int) -> int:
    """Distinct two-global-hop routes through intermediate groups."""
    src_group = topology.terminal_group(src_terminal)
    dst_group = topology.terminal_group(dst_terminal)
    if src_group == dst_group:
        return 0
    count = 0
    for intermediate in range(topology.g):
        if intermediate in (src_group, dst_group):
            continue
        first = len(topology.group_links(src_group, intermediate))
        second = len(topology.group_links(intermediate, dst_group))
        count += first * second
    return count


def group_graph(
    topology: Dragonfly,
    failed_channels: Iterable[GlobalLink] = (),
) -> nx.MultiGraph:
    """The group-level multigraph, optionally minus failed channels.

    A failed link removes both directions of its physical cable.
    """
    failed: Set[Tuple[int, int]] = set()
    for link in failed_channels:
        failed.add((link.src_router, link.src_port))
        channel = topology.fabric.out_channel(link.src_router, link.src_port)
        assert channel is not None
        failed.add((channel.dst.router, channel.dst.port))
    graph = nx.MultiGraph()
    graph.add_nodes_from(range(topology.g))
    for group_i in range(topology.g):
        for group_j in range(group_i + 1, topology.g):
            for link in topology.group_links(group_i, group_j):
                if (link.src_router, link.src_port) in failed:
                    continue
                graph.add_edge(group_i, group_j)
    return graph


def survives_faults(
    topology: Dragonfly,
    failed_channels: Iterable[GlobalLink],
) -> bool:
    """True when every group pair is still connected (possibly via
    intermediate groups) after the given global-channel failures."""
    graph = group_graph(topology, failed_channels)
    return nx.is_connected(graph)


def group_fault_tolerance(topology: Dragonfly) -> int:
    """Global-channel failures any adversary needs to disconnect groups,
    minus one (i.e. the guaranteed-survivable fault count).

    Equals the edge connectivity of the group multigraph: a maximum-size
    dragonfly (complete group graph) tolerates ``g - 2`` arbitrary
    global-cable failures.
    """
    if topology.g < 2:
        return 0
    graph = group_graph(topology)
    return nx.edge_connectivity(graph) - 1
