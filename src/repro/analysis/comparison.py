"""Structural 64K-node comparison of dragonfly vs flattened butterfly
(Figure 18).

The paper compares a 64K-terminal dragonfly (groups of 16 routers = 256
terminals, all groups connected in one large dimension of effective radix
256) against a 64K 3-D flattened butterfly (dimensions of 16, plus the
concentration of 16).  The headline results:

* both provide the same global bisection bandwidth, but the dragonfly
  needs only **half** the number of global cables;
* the flattened butterfly spends **50%** of its router ports on global
  channels, the dragonfly only **25%**.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class StructureSummary:
    """Cable/port structure of one topology at a given scale."""

    topology: str
    num_terminals: int
    num_routers: int
    router_radix: int
    terminal_ports_per_router: int
    local_ports_per_router: int
    global_ports_per_router: int
    num_local_cables: int
    num_global_cables: int

    @property
    def global_port_fraction(self) -> float:
        return self.global_ports_per_router / self.router_radix

    @property
    def global_cables_per_node(self) -> float:
        return self.num_global_cables / self.num_terminals

    def summary(self) -> str:
        return (
            f"{self.topology:20s} routers={self.num_routers:5d} k={self.router_radix:2d} "
            f"global ports {self.global_ports_per_router:2d}/{self.router_radix} "
            f"({100 * self.global_port_fraction:.0f}%), "
            f"global cables {self.num_global_cables} "
            f"({self.global_cables_per_node:.3f}/node)"
        )


def dragonfly_structure(
    p: int = 16,
    a: int = 16,
    num_terminals: int = 65536,
) -> StructureSummary:
    """Figure 18(b): groups of ``a`` routers, one global dimension.

    Every group needs a connection to each other group, so each router
    carries ``h = (g - 1) / a`` global channels.
    """
    terminals_per_group = a * p
    num_groups = math.ceil(num_terminals / terminals_per_group)
    h = math.ceil((num_groups - 1) / a)
    num_routers = a * num_groups
    radix = p + (a - 1) + h
    return StructureSummary(
        topology="dragonfly",
        num_terminals=num_groups * terminals_per_group,
        num_routers=num_routers,
        router_radix=radix,
        terminal_ports_per_router=p,
        local_ports_per_router=a - 1,
        global_ports_per_router=h,
        num_local_cables=num_groups * (a * (a - 1) // 2),
        num_global_cables=num_groups * a * h // 2,
    )


def flattened_butterfly_structure(
    concentration: int = 16,
    dim_size: int = 16,
    num_dims: int = 3,
) -> StructureSummary:
    """Figure 18(a): dimension 1 is local (intra-cabinet), higher
    dimensions are global."""
    num_routers = dim_size**num_dims
    num_terminals = concentration * num_routers
    local_ports = dim_size - 1
    global_ports = (num_dims - 1) * (dim_size - 1)
    radix = concentration + local_ports + global_ports
    cables_per_dim = num_routers * (dim_size - 1) // 2
    return StructureSummary(
        topology="flattened butterfly",
        num_terminals=num_terminals,
        num_routers=num_routers,
        router_radix=radix,
        terminal_ports_per_router=concentration,
        local_ports_per_router=local_ports,
        global_ports_per_router=global_ports,
        num_local_cables=cables_per_dim,
        num_global_cables=(num_dims - 1) * cables_per_dim,
    )


def figure18_comparison() -> List[StructureSummary]:
    """The paper's 64K comparison: FB needs 2x the global cables."""
    return [flattened_butterfly_structure(), dragonfly_structure()]
