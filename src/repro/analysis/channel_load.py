"""Analytic channel-load and throughput bounds (Section 4.2).

These closed forms are what the simulator's measured saturation points
are validated against.  The paper quotes the leading-order values (MIN
caps at ``1/(a h)`` on the worst case, VAL at "slightly under 50%"); the
exact expressions below include the finite-``g`` corrections our
implementation exhibits, and reduce to the paper's numbers as ``g``
grows:

* **MIN on WC**: all ``a p`` terminals of a group funnel over the
  channels to the next group -- throughput ``links / (a p)``.
* **VAL**: a packet crosses one global channel leaving its group and,
  unless the random intermediate group *is* the destination group
  (probability ``1/(g-1)``), a second one leaving the intermediate
  group; throughput = global capacity / expected global hops.
* **Ideal adaptive on WC**: mix minimal (1 hop on the direct channel)
  and non-minimal (2 hops elsewhere) optimally:
  ``theta = (ah + 1) / (2 ah)`` of capacity -- 0.5625 for the 72-node
  network, 0.531 at the paper's scale, -> 0.5 as ``ah -> inf``.
"""

from __future__ import annotations

from ..core.params import DragonflyParams


def min_worst_case_throughput(params: DragonflyParams) -> float:
    """Saturation throughput of MIN routing under WC traffic: the
    paper's ``1/(a h)`` for a balanced maximum-size network."""
    if params.g < 2:
        raise ValueError("worst-case traffic needs at least two groups")
    links = max(1, params.min_channels_between_group_pairs())
    return links / (params.a * params.p)


def _expected_valiant_global_hops_cross_traffic(params: DragonflyParams) -> float:
    """Expected global hops of a Valiant route between distinct groups.

    The intermediate group is uniform over the ``g - 1`` non-source
    groups; drawing the destination group degenerates to the minimal
    (single-hop) route.
    """
    g = params.g
    if g < 3:
        return 1.0
    return 2.0 - 1.0 / (g - 1)


def valiant_uniform_throughput(params: DragonflyParams) -> float:
    """VAL's UR capacity: global capacity / expected global hops.

    Uniform traffic crosses groups with probability
    ``(N - ap) / (N - 1)``; each crossing packet takes
    ``2 - 1/(g-1)`` global hops in expectation.  For large ``g`` this
    approaches the paper's "half of capacity".
    """
    n = params.num_terminals
    if n < 2 or params.g < 2:
        return 1.0
    p_cross = (n - params.terminals_per_group) / (n - 1)
    expected_hops = p_cross * _expected_valiant_global_hops_cross_traffic(params)
    if expected_hops <= 0:
        return 1.0
    return min(1.0, _global_capacity_per_node(params) / expected_hops)


def valiant_worst_case_throughput(params: DragonflyParams) -> float:
    """VAL's WC capacity: every packet crosses groups."""
    if params.g < 2:
        raise ValueError("worst-case traffic needs at least two groups")
    expected_hops = _expected_valiant_global_hops_cross_traffic(params)
    return min(1.0, _global_capacity_per_node(params) / expected_hops)


def min_uniform_throughput(params: DragonflyParams) -> float:
    """MIN's uniform-random capacity.

    Each packet crosses one global channel with probability
    ``(N - ap)/(N - 1)``; per-node global capacity is ``h/p`` (1.0 when
    balanced).
    """
    n = params.num_terminals
    if params.g < 2 or n < 2:
        return 1.0
    fraction_global = (n - params.terminals_per_group) / (n - 1)
    return min(1.0, _global_capacity_per_node(params) / fraction_global)


def _global_capacity_per_node(params: DragonflyParams) -> float:
    """Global channel bandwidth per terminal (1.0 for balanced)."""
    return params.h / params.p


def ugal_ideal_worst_case_throughput(params: DragonflyParams) -> float:
    """Optimal adaptive throughput on WC traffic.

    Send fraction ``m`` of each group's traffic minimally over the
    single direct channel and the rest non-minimally (two hops over the
    remaining ``ah - 1`` out-channels plus transit capacity).  Setting
    the direct channel exactly full gives
    ``theta = (ah + 1) / (2 ah)`` of per-node capacity -- the finite-size
    version of the paper's ~50%.
    """
    if params.g < 2:
        raise ValueError("worst-case traffic needs at least two groups")
    ah = params.a * params.h
    theta = (ah + 1) / (2 * ah)
    return min(1.0, theta * _global_capacity_per_node(params))
