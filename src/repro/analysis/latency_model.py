"""Analytic zero-load latency model.

At vanishing load a packet's latency is deterministic: channel flight
times along its route, plus serialisation of its flits, plus the ejection
latency.  This model computes expected zero-load latency for the
dragonfly's routing algorithms and is cross-validated against the
simulator by the test suite -- a calibration anchor for every
latency-vs-load figure.

Hop-count expectations over uniform random traffic on a maximum-size
dragonfly (per Section 3.1's structure):

* probability the destination shares the router: ``(p-1)/(N-1)``;
* shares the group: ``(ap-1)/(N-1)`` (one local hop unless same router);
* otherwise one global hop plus local hops at each end, each present
  unless the source/destination router happens to own the chosen global
  channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.params import DragonflyParams


@dataclass(frozen=True)
class LatencyModel:
    """Zero-load latency calculator for a dragonfly configuration."""

    params: DragonflyParams
    local_latency: int = 1
    global_latency: int = 1
    terminal_latency: int = 1
    packet_size: int = 1

    # ------------------------------------------------------------------
    # Hop-count expectations (uniform random traffic)
    # ------------------------------------------------------------------
    def probability_same_router(self) -> float:
        n = self.params.num_terminals
        return (self.params.p - 1) / (n - 1)

    def probability_same_group(self) -> float:
        """Same group but a different router."""
        n = self.params.num_terminals
        return (self.params.terminals_per_group - self.params.p) / (n - 1)

    def probability_cross_group(self) -> float:
        return 1.0 - self.probability_same_router() - self.probability_same_group()

    def expected_minimal_local_hops(self) -> float:
        """Expected local-channel traversals of a minimal route (UR)."""
        params = self.params
        same_group = self.probability_same_group()
        cross = self.probability_cross_group()
        # Crossing routes take a local hop at each end unless the
        # corresponding endpoint router owns the global channel: the
        # source side is direct with probability h/(a*h) = 1/a per
        # candidate group (one channel somewhere in the group), and
        # symmetrically at the destination.
        p_direct = 1.0 / params.a
        cross_local = 2.0 - 2.0 * p_direct
        return same_group * 1.0 + cross * cross_local

    def expected_minimal_global_hops(self) -> float:
        return self.probability_cross_group()

    def expected_minimal_latency(self) -> float:
        """Expected zero-load packet latency under MIN routing (UR)."""
        flight = (
            self.expected_minimal_local_hops() * self.local_latency
            + self.expected_minimal_global_hops() * self.global_latency
        )
        serialisation = self.packet_size - 1
        return flight + serialisation + self.terminal_latency

    def worst_case_minimal_latency(self) -> float:
        """Latency of the longest minimal route (local+global+local)."""
        hops = 0.0
        if self.params.a > 1:
            hops += 2 * self.local_latency
        if self.params.g > 1:
            hops += self.global_latency
        return hops + (self.packet_size - 1) + self.terminal_latency

    def valiant_extra_latency(self) -> float:
        """Expected extra zero-load latency of VAL over MIN (UR): one
        more global hop plus roughly one more local hop."""
        fraction_detoured = (self.params.g - 2) / max(1, self.params.g - 1)
        per_detour = self.global_latency + self.local_latency
        return fraction_detoured * self.probability_cross_group() * per_detour
