"""Analytic network metrics: diameter, bisection, structure, bounds."""

from .bisection import (
    dragonfly_bisection_per_node,
    dragonfly_group_bisection,
    max_size_dragonfly_bisection,
)
from .channel_load import (
    min_uniform_throughput,
    min_worst_case_throughput,
    ugal_ideal_worst_case_throughput,
    valiant_uniform_throughput,
    valiant_worst_case_throughput,
)
from .comparison import (
    StructureSummary,
    dragonfly_structure,
    figure18_comparison,
    flattened_butterfly_structure,
)
from .latency_model import LatencyModel
from .path_diversity import (
    group_fault_tolerance,
    group_graph,
    minimal_route_count,
    survives_faults,
    valiant_route_count,
)
from .diameter import (
    HopCount,
    TopologyComparison,
    dragonfly_minimal_diameter_hops,
    dragonfly_row,
    flattened_butterfly_row,
    table2,
)

__all__ = [
    "LatencyModel",
    "group_fault_tolerance",
    "group_graph",
    "minimal_route_count",
    "survives_faults",
    "valiant_route_count",
    "dragonfly_bisection_per_node",
    "dragonfly_group_bisection",
    "max_size_dragonfly_bisection",
    "min_uniform_throughput",
    "min_worst_case_throughput",
    "ugal_ideal_worst_case_throughput",
    "valiant_uniform_throughput",
    "valiant_worst_case_throughput",
    "StructureSummary",
    "dragonfly_structure",
    "figure18_comparison",
    "flattened_butterfly_structure",
    "HopCount",
    "TopologyComparison",
    "dragonfly_minimal_diameter_hops",
    "dragonfly_row",
    "flattened_butterfly_row",
    "table2",
]
