"""Unit tests for the dragonfly parameter algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import (
    DragonflyParams,
    TopologyError,
    balanced_params_for_radix,
    required_radix_single_hop,
)


class TestDerivedQuantities:
    def test_figure5_example(self):
        params = DragonflyParams.paper_example_72()
        assert params.radix == 7
        assert params.effective_radix == 16
        assert params.max_groups == 9
        assert params.g == 9
        assert params.num_terminals == 72
        assert params.num_routers == 36

    def test_paper_1k_configuration(self):
        params = DragonflyParams.paper_1k()
        assert (params.p, params.a, params.h) == (4, 8, 4)
        assert params.num_terminals == 1056
        assert params.max_groups == 33

    def test_radix_formula(self):
        params = DragonflyParams(p=3, a=5, h=2)
        assert params.radix == 3 + 5 + 2 - 1

    def test_effective_radix_formula(self):
        params = DragonflyParams(p=3, a=5, h=2)
        assert params.effective_radix == 5 * (3 + 2)

    def test_channel_counts_max_size(self):
        params = DragonflyParams(p=2, a=4, h=2)
        # 9 groups, fully connected pairs: 36 global channels.
        assert params.num_global_channels == 9 * 4 * 2 // 2
        assert params.num_local_channels == 9 * (4 * 3 // 2)

    def test_single_group_has_no_global_channels(self):
        params = DragonflyParams(p=2, a=4, h=2, num_groups=1)
        assert params.num_global_channels == 0

    def test_terminals_per_group(self):
        assert DragonflyParams(p=3, a=4, h=3).terminals_per_group == 12


class TestBalance:
    def test_balanced_constructor(self):
        params = DragonflyParams.balanced(4)
        assert params.is_balanced
        assert (params.p, params.a, params.h) == (4, 8, 4)

    def test_paper_configs_are_balanced(self):
        assert DragonflyParams.paper_1k().is_balanced
        assert DragonflyParams.paper_example_72().is_balanced

    def test_overprovisioned_accepts_extra_local(self):
        params = DragonflyParams(p=4, a=10, h=4)
        assert not params.is_balanced
        assert params.is_overprovisioned

    def test_underprovisioned_detected(self):
        params = DragonflyParams(p=2, a=4, h=4)
        assert not params.is_overprovisioned


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"p": 0, "a": 4, "h": 2},
        {"p": 2, "a": 0, "h": 2},
        {"p": 2, "a": 4, "h": -1},
    ])
    def test_rejects_nonpositive(self, kwargs):
        with pytest.raises(TopologyError):
            DragonflyParams(**kwargs)

    def test_rejects_too_many_groups(self):
        with pytest.raises(TopologyError):
            DragonflyParams(p=2, a=4, h=2, num_groups=10)

    def test_rejects_multi_group_without_global_channels(self):
        with pytest.raises(TopologyError):
            DragonflyParams(p=2, a=4, h=0, num_groups=2)

    def test_rejects_odd_global_endpoint_total(self):
        # g=3 groups with a*h=1 ports each: 3 endpoints cannot be paired.
        with pytest.raises(TopologyError):
            DragonflyParams(p=1, a=1, h=1, num_groups=3)

    def test_accepts_non_maximal_group_count(self):
        params = DragonflyParams(p=2, a=4, h=2, num_groups=5)
        assert params.g == 5
        assert not params.is_max_size


class TestMinChannelsBetweenPairs:
    def test_max_size_guarantees_one(self):
        assert DragonflyParams(p=2, a=4, h=2).min_channels_between_group_pairs() == 1

    def test_small_network_gets_more(self):
        params = DragonflyParams(p=2, a=4, h=2, num_groups=3)
        # 8 ports per group over 2 peers -> at least 4 channels per pair.
        assert params.min_channels_between_group_pairs() == 4

    def test_single_group_zero(self):
        assert DragonflyParams(p=2, a=4, h=2, num_groups=1).min_channels_between_group_pairs() == 0


class TestSmallestBalancedFor:
    def test_exact(self):
        params = DragonflyParams.smallest_balanced_for(72)
        assert params.num_terminals == 72

    def test_at_least(self):
        params = DragonflyParams.smallest_balanced_for(73)
        assert params.num_terminals >= 73
        smaller = DragonflyParams.balanced(params.h - 1)
        assert smaller.num_terminals < 73

    def test_invalid(self):
        with pytest.raises(TopologyError):
            DragonflyParams.smallest_balanced_for(0)


class TestRequiredRadix:
    def test_single_terminal(self):
        assert required_radix_single_hop(1) == 1

    def test_scales_as_two_sqrt_n(self):
        for n in (100, 10_000, 1_000_000):
            expected = 2 * int(n**0.5)
            assert abs(required_radix_single_hop(n) - expected) <= 2

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            required_radix_single_hop(0)

    @given(st.integers(min_value=1, max_value=50_000))
    @settings(max_examples=50)
    def test_radix_is_achievable(self, n):
        """Some concentration c actually achieves the reported radix."""
        import math

        k = required_radix_single_hop(n)
        achievable = any(
            c + math.ceil(n / c) - 1 == k for c in range(1, int(n**0.5) + 1)
        ) or k == n
        assert achievable


class TestBalancedParamsForRadix:
    def test_radix_64(self):
        params = balanced_params_for_radix(64)
        assert params.h == 16
        assert params.num_terminals == 262_656  # > 256K, paper's claim

    def test_radix_7_gives_figure5(self):
        params = balanced_params_for_radix(7)
        assert (params.p, params.a, params.h) == (2, 4, 2)

    def test_built_radix_never_exceeds_budget(self):
        for k in range(3, 128):
            assert balanced_params_for_radix(k).radix <= k

    def test_too_small(self):
        with pytest.raises(TopologyError):
            balanced_params_for_radix(2)
