"""Tests for the Figure 1 / Figure 4 scaling curves."""

import pytest

from repro.core.params import DragonflyParams
from repro.core.scaling import (
    balanced_size_for_radix,
    dragonfly_scalability_curve,
    network_diameter_hops,
    radix_requirement_curve,
)


class TestRadixRequirementCurve:
    def test_monotone_in_n(self):
        points = radix_requirement_curve([100, 1000, 10_000, 100_000])
        radices = [p.required_radix for p in points]
        assert radices == sorted(radices)

    def test_figure1_magnitude(self):
        """Near 1M nodes the required radix passes 1000 (Figure 1)."""
        (point,) = radix_requirement_curve([1_000_000])
        assert point.required_radix > 1000


class TestScalabilityCurve:
    def test_monotone_in_radix(self):
        points = dragonfly_scalability_curve(range(8, 64, 4))
        sizes = [p.num_terminals for p in points]
        assert sizes == sorted(sizes)

    def test_radix_64_exceeds_256k(self):
        assert balanced_size_for_radix(64) > 256_000

    def test_quartic_growth(self):
        """Doubling the radix grows the network ~16x (N ~ k^4 / 64)."""
        ratio = balanced_size_for_radix(63) / balanced_size_for_radix(31)
        assert 10 < ratio < 24

    def test_points_carry_params(self):
        (point,) = dragonfly_scalability_curve([7])
        assert point.params.num_terminals == 72


class TestDiameter:
    def test_full_dragonfly_diameter_three(self):
        assert network_diameter_hops(DragonflyParams(p=2, a=4, h=2)) == 3

    def test_single_group(self):
        assert network_diameter_hops(DragonflyParams(p=2, a=4, h=0, num_groups=1)) == 2

    def test_single_router_groups(self):
        # a=1: no local hops, global diameter 1.
        assert network_diameter_hops(DragonflyParams(p=2, a=1, h=2)) == 1
