"""Shared fixtures: small dragonflies and fast simulation configs."""

import pytest

from repro.core.params import DragonflyParams
from repro.network.config import SimulationConfig
from repro.topology.dragonfly import Dragonfly


@pytest.fixture(scope="session")
def tiny_dragonfly() -> Dragonfly:
    """The smallest interesting dragonfly: p=1, a=2, h=1 -> N=6, g=3."""
    return Dragonfly(DragonflyParams(p=1, a=2, h=1))


@pytest.fixture(scope="session")
def paper72_dragonfly() -> Dragonfly:
    """The Figure 5 example: p=h=2, a=4 -> N=72, g=9."""
    return Dragonfly(DragonflyParams.paper_example_72())


@pytest.fixture()
def fast_config() -> SimulationConfig:
    """Short warm-up/measurement windows for unit-level simulations."""
    return SimulationConfig(
        load=0.1,
        warmup_cycles=200,
        measure_cycles=200,
        drain_max_cycles=4000,
    )
