"""Property: compiled tables replay the algorithmic executor exactly.

For random small dragonfly and flattened-butterfly shapes, every
enumerable route case -- minimal and Valiant, every global-link and
intermediate choice -- must walk through the compiled tables with a
hop-for-hop identical (router, out_port, out_vc) trace to the family's
algorithmic executor.  This is the semantic core of the tentpole: the
tables are a *lowering* of the routing code, not a reimplementation.
"""

import functools

from hypothesis import given, settings, strategies as st

from repro.core.params import DragonflyParams, TopologyError
from repro.routing import vc_assignment as vcs
from repro.routing.tables import (
    DragonflyLowering,
    FbLowering,
    table_walk_route,
)
from repro.topology.dragonfly import Dragonfly
from repro.topology.flattened_butterfly import FlattenedButterfly

SETTINGS = settings(max_examples=20, deadline=None)


def _valid_dragonfly_tuples():
    """Buildable (p, a, h) small enough to enumerate exhaustively."""
    valid = []
    for p in (1, 2):
        for a in (1, 2, 3):
            for h in (1, 2):
                try:
                    params = DragonflyParams(p=p, a=a, h=h)
                    if params.num_groups < 2 or params.num_groups > 8:
                        continue
                    Dragonfly(params)
                except (TopologyError, ValueError):
                    continue
                valid.append((p, a, h))
    assert valid
    return valid


FB_SHAPES = [(2, 2), (3, 2), (2, 2, 2), (4, 3)]


@functools.lru_cache(maxsize=None)
def _dragonfly_lowering(p, a, h, include_nonminimal):
    topology = Dragonfly(DragonflyParams(p=p, a=a, h=h))
    return (
        DragonflyLowering(
            topology, vcs.CANONICAL, include_nonminimal=include_nonminimal
        ),
        topology,
    )


@functools.lru_cache(maxsize=None)
def _fb_lowering(dims):
    topology = FlattenedButterfly(dims=dims, concentration=1)
    return FbLowering(topology), topology


def assert_cases_match(lowering, topology):
    tables = lowering.compile()
    checked = 0
    for case in lowering.cases():
        walk = table_walk_route(
            topology, tables, case.src_router, case.dst_terminal, case.legs
        )
        assert tuple(walk) == case.algorithmic, case.label
        checked += 1
    assert checked > 0


@given(
    shape=st.sampled_from(_valid_dragonfly_tuples()),
    include_nonminimal=st.booleans(),
)
@SETTINGS
def test_dragonfly_tables_replay_executor(shape, include_nonminimal):
    # MIN-only compilations cover the MIN executor; non-minimal ones add
    # every Valiant (gc1, mid, gc2) choice the UGAL family selects from.
    lowering, topology = _dragonfly_lowering(*shape, include_nonminimal)
    assert_cases_match(lowering, topology)


@given(dims=st.sampled_from(FB_SHAPES))
@SETTINGS
def test_fb_tables_replay_executor(dims):
    # FB cases cover DOR minimal and router-Valiant two-phase routes.
    lowering, topology = _fb_lowering(dims)
    assert_cases_match(lowering, topology)
