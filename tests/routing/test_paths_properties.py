"""Property-based routing invariants over random valid dragonflies.

For every valid small ``(p, a, h)`` dragonfly and every (source router,
destination terminal) pair, the route plans of ``paths.py`` -- minimal,
Valiant, and the plans the UGAL family selects between them -- must

* terminate at the destination terminal's ejection port,
* cross at most one global channel on minimal paths (the paper's
  3-step route) and at most two on Valiant paths,
* never revisit a ``(channel, VC)`` pair -- the acyclic-resource-order
  argument behind the Dally-Seitz deadlock-freedom certificate of
  :mod:`repro.check.cdg` assumes routes are channel-VC-simple, so a
  revisit would silently void the certificate.

Hypothesis drives random topologies, endpoints and RNG seeds through
``walk_route``, which executes the very ``next_hop`` code path the
simulator runs.
"""

import functools
import random

from hypothesis import given, settings, strategies as st

from repro.core.params import DragonflyParams, TopologyError
from repro.routing.base import ZeroCongestion
from repro.routing.paths import minimal_plan, plan_hops, valiant_plan, walk_route
from repro.routing.ugal import make_routing
from repro.topology.dragonfly import Dragonfly

SETTINGS = settings(max_examples=60, deadline=None)


def _valid_param_tuples():
    """Every buildable (p, a, h) in a small envelope, maximal group count."""
    valid = []
    for p in (1, 2, 3):
        for a in (1, 2, 3, 4):
            for h in (1, 2, 3):
                try:
                    params = DragonflyParams(p=p, a=a, h=h)
                    if params.num_groups < 2:
                        continue
                    _topology(p, a, h)
                except (TopologyError, ValueError):
                    continue
                valid.append((p, a, h))
    assert valid, "no valid dragonfly parameters in the envelope"
    return valid


@functools.lru_cache(maxsize=None)
def _topology(p: int, a: int, h: int) -> Dragonfly:
    return Dragonfly(DragonflyParams(p=p, a=a, h=h))


@st.composite
def routed_case(draw):
    """(topology, rng, src_router, dst_terminal) over valid dragonflies."""
    p, a, h = draw(st.sampled_from(_valid_param_tuples()))
    topology = _topology(p, a, h)
    src_router = draw(st.integers(0, topology.fabric.num_routers - 1))
    dst_terminal = draw(st.integers(0, topology.num_terminals - 1))
    seed = draw(st.integers(0, 2**32 - 1))
    return topology, random.Random(seed), src_router, dst_terminal


def assert_route_invariants(topology, src_router, dst_terminal, plan,
                            max_global_hops):
    trace = walk_route(topology, src_router, dst_terminal, plan)

    # Reaches its destination: the last hop ejects at the destination
    # terminal's port on the destination router, and no earlier hop is
    # an ejection.
    dst_router = topology.terminal_router(dst_terminal)
    last_router, last_port, _ = trace[-1]
    assert last_router == dst_router
    assert last_port == topology.terminal_port(dst_terminal)
    assert all(
        not topology.is_terminal_port(port) for _, port, _ in trace[:-1]
    )

    # Global channel budget: <= 1 for minimal, <= 2 for Valiant.
    global_hops = sum(
        1 for _, port, _ in trace if topology.is_global_port(port)
    )
    assert global_hops <= max_global_hops

    # Channel-VC-simple: no (channel, VC) pair is ever revisited.
    seen = set()
    for router, port, vc in trace[:-1]:
        channel = topology.fabric.out_channel(router, port)
        assert channel is not None
        assert (channel.index, vc) not in seen
        seen.add((channel.index, vc))

    # The walked trace agrees with the hop count UGAL bases its
    # adaptive decision on.
    assert len(trace) - 1 == plan_hops(topology, src_router, dst_terminal, plan)


class TestMinimalRouteProperties:
    @SETTINGS
    @given(case=routed_case())
    def test_minimal_route_invariants(self, case):
        topology, rng, src_router, dst_terminal = case
        plan = minimal_plan(topology, rng, src_router, dst_terminal)
        assert plan.minimal
        assert_route_invariants(
            topology, src_router, dst_terminal, plan, max_global_hops=1
        )

    @SETTINGS
    @given(case=routed_case())
    def test_intra_group_minimal_has_no_global_channel(self, case):
        topology, rng, src_router, dst_terminal = case
        if topology.group_of(src_router) != topology.terminal_group(dst_terminal):
            return
        plan = minimal_plan(topology, rng, src_router, dst_terminal)
        assert plan.gc1 is None and plan.gc2 is None


class TestValiantRouteProperties:
    @SETTINGS
    @given(case=routed_case())
    def test_valiant_route_invariants(self, case):
        topology, rng, src_router, dst_terminal = case
        plan = valiant_plan(topology, rng, src_router, dst_terminal)
        assert_route_invariants(
            topology, src_router, dst_terminal, plan,
            max_global_hops=1 if plan.minimal else 2,
        )


class TestUgalRouteProperties:
    @SETTINGS
    @given(case=routed_case(), name=st.sampled_from(
        ["UGAL-L", "UGAL-G", "UGAL-L_VC", "UGAL-L_VCH", "UGAL-L_CR"]
    ))
    def test_ugal_chosen_route_invariants(self, case, name):
        """Whatever a UGAL variant picks obeys the same invariants."""
        topology, rng, src_router, dst_terminal = case
        routing = make_routing(name)
        plan = routing.decide(
            ZeroCongestion(), topology, rng, src_router, dst_terminal
        )
        assert_route_invariants(
            topology, src_router, dst_terminal, plan,
            max_global_hops=1 if plan.minimal else 2,
        )
