"""Tests for ``DegradedTableRouting``: the simulation executor that
routes off detour-recompiled tables (``TBL-MIN`` / ``TBL-MIN/gcK``)."""

import random

import pytest

from repro.core.params import DragonflyParams
from repro.network.config import SimulationConfig
from repro.network.parallel import SweepExecutor
from repro.routing.tables import DegradedTableRouting
from repro.routing.ugal import make_routing
from repro.topology.dragonfly import Dragonfly
from repro.topology.faults import canonical_global_faults


@pytest.fixture(scope="module")
def paper72():
    return Dragonfly(DragonflyParams.paper_example_72())


def walk(routing, topology, src_terminal, dst_terminal, seed=0):
    """Drive decide + next_hop to ejection; returns the (router, port,
    vc) trace exactly as the simulator would execute it."""
    rng = random.Random(seed)
    router = topology.terminal_router(src_terminal)
    plan = routing.decide(None, topology, rng, router, dst_terminal)
    trace = []
    progress = 0
    for _ in range(12):
        port, vc, progress = routing.next_hop(
            topology, router, plan, progress, dst_terminal
        )
        trace.append((router, port, vc))
        if topology.is_terminal_port(port):
            assert router == topology.terminal_router(dst_terminal)
            return trace
        channel = topology.fabric.out_channel(router, port)
        assert channel is not None
        router = channel.dst.router
    raise AssertionError("route failed to terminate")


class TestFactoryNames:
    def test_healthy_name(self):
        routing = make_routing("TBL-MIN")
        assert isinstance(routing, DegradedTableRouting)
        assert routing.fault_pairs == 0
        assert routing.name == "TBL-MIN"

    def test_degraded_name_parses_pair_count(self):
        routing = make_routing("TBL-MIN/gc3")
        assert routing.fault_pairs == 3
        assert routing.name == "TBL-MIN/gc3"

    def test_bad_suffix_names_the_convention(self):
        with pytest.raises(ValueError, match="TBL-MIN/gcK"):
            make_routing("TBL-MIN/gcfoo")

    def test_negative_pairs_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            DegradedTableRouting(fault_pairs=-1)

    def test_unknown_name_mentions_table_routings(self):
        with pytest.raises(ValueError, match="TBL-MIN"):
            make_routing("no-such-routing")


class TestTableWalks:
    def test_surviving_pairs_route_minimally(self, paper72):
        routing = DegradedTableRouting(fault_pairs=1)
        # Groups 6 and 7 keep their cable (only pair (0,1) is severed).
        src = 6 * paper72.a * paper72.p
        dst = 7 * paper72.a * paper72.p
        trace = walk(routing, paper72, src, dst)
        global_hops = [
            (router, port) for router, port, _ in trace
            if paper72.is_global_port(port)
        ]
        assert len(global_hops) == 1

    def test_severed_pair_takes_the_detour(self, paper72):
        routing = DegradedTableRouting(fault_pairs=1)
        faults = canonical_global_faults(paper72, 1)
        src = 0  # terminal in group 0
        dst = 1 * paper72.a * paper72.p  # terminal in group 1
        trace = walk(routing, paper72, src, dst)
        global_hops = [
            (router, port) for router, port, _ in trace
            if paper72.is_global_port(port)
        ]
        # Third-group detour: two global hops, neither over a dead cable.
        assert len(global_hops) == 2
        for router, port in global_hops:
            channel = paper72.fabric.out_channel(router, port)
            assert not faults.link_dead(channel.src.router, channel.dst.router)

    def test_intra_group_routes_stay_local(self, paper72):
        routing = DegradedTableRouting(fault_pairs=2)
        trace = walk(routing, paper72, 0, 3)
        assert not any(
            paper72.is_global_port(port) for _, port, _ in trace
        )

    def test_every_pair_delivers_on_degraded_fabric(self, paper72):
        routing = DegradedTableRouting(fault_pairs=3)
        # walk() asserts delivery at the destination router.
        terminals = range(0, paper72.num_terminals, 7)
        for src in terminals:
            for dst in terminals:
                if src != dst:
                    walk(routing, paper72, src, dst)

    def test_tables_cached_per_topology(self, paper72):
        routing = DegradedTableRouting(fault_pairs=1)
        walk(routing, paper72, 0, 30)
        state = routing._state(paper72)
        walk(routing, paper72, 0, 40)
        assert routing._state(paper72) is state
        tiny = Dragonfly(DragonflyParams(p=1, a=2, h=1))
        assert routing._state(tiny) is not state
        assert len(routing._cache) == 2


class TestSimulation:
    def test_degraded_routing_simulates_and_delivers(self, paper72):
        config = SimulationConfig(
            load=0.1, seed=2, warmup_cycles=100, measure_cycles=100,
            drain_max_cycles=2000,
        )
        result = SweepExecutor().run_point(
            paper72, "TBL-MIN/gc2", "uniform_random", config
        )
        assert not result.saturated
        assert result.accepted_load > 0.08
