"""Tests for the deadlock-free VC assignment (Figure 7)."""

import networkx as nx
import pytest

from repro.routing import vc_assignment as vcs


class TestVcValues:
    def test_minimal_route_uses_two_vcs(self):
        """Minimal routing needs 2 VCs (the paper's claim): VC1 and VC2."""
        used = {
            vcs.local_vc(True, 0),
            vcs.global_vc(True, 0),
            vcs.local_vc(True, 1),
        }
        assert used == {1, 2}

    def test_nonminimal_route_uses_three_vcs(self):
        used = {
            vcs.local_vc(False, 0),
            vcs.global_vc(False, 0),
            vcs.local_vc(False, 1),
            vcs.global_vc(False, 1),
            vcs.local_vc(False, 2),
        }
        assert used == {0, 1, 2}

    def test_first_local_hop_discriminates_minimal(self):
        """UGAL-L_VC's premise: q_m^vc reads VC1, q_nm^vc reads VC0."""
        assert vcs.local_vc(True, 0) == vcs.MINIMAL_FIRST_VC == 1
        assert vcs.local_vc(False, 0) == vcs.NONMINIMAL_FIRST_VC == 0

    def test_vcs_nondecreasing_along_routes(self):
        for sequence in vcs.vc_sequences():
            values = [vc for _, vc in sequence]
            assert values == sorted(values)

    def test_num_vcs_required(self):
        all_vcs = {vc for seq in vcs.vc_sequences() for _, vc in seq}
        assert len(all_vcs) == vcs.NUM_VCS_REQUIRED


class TestDeadlockFreedom:
    def test_dependency_graph_acyclic(self):
        assert vcs.is_deadlock_free()

    def test_graph_covers_all_route_stages(self):
        graph = vcs.channel_dependency_graph()
        for sequence in vcs.vc_sequences():
            for node in sequence:
                assert node in graph.nodes

    def test_topological_order_exists(self):
        graph = vcs.channel_dependency_graph()
        order = list(nx.topological_sort(graph))
        position = {node: i for i, node in enumerate(order)}
        for src, dst in graph.edges:
            assert position[src] < position[dst]
