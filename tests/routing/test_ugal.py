"""Tests for the UGAL decision logic using controllable congestion views."""

import random

import pytest

from repro.core.params import DragonflyParams
from repro.routing.base import ZeroCongestion
from repro.routing.paths import next_hop
from repro.routing.ugal import (
    UgalG,
    UgalL,
    UgalLCr,
    UgalLVc,
    UgalLVcH,
    make_routing,
)
from repro.topology.dragonfly import Dragonfly


@pytest.fixture(scope="module")
def df():
    return Dragonfly(DragonflyParams.paper_example_72())


class FakeView:
    """Congestion view with per-(router, port[, vc]) programmable values."""

    def __init__(self, port_occupancy=None, vc_occupancy=None):
        self.port_occupancy = port_occupancy or {}
        self.vc_occupancy = vc_occupancy or {}

    def output_occupancy(self, router, out_port):
        return self.port_occupancy.get((router, out_port), 0)

    def output_vc_occupancy(self, router, out_port, vc):
        return self.vc_occupancy.get((router, out_port, vc), 0)


class TestFactory:
    @pytest.mark.parametrize("name", [
        "MIN", "VAL", "UGAL-L", "UGAL-G", "UGAL-L_VC", "UGAL-L_VCH", "UGAL-L_CR",
    ])
    def test_all_names_resolve(self, name):
        algorithm = make_routing(name)
        assert algorithm.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_routing("UGAL-X")

    def test_only_cr_needs_credit_delay(self):
        assert make_routing("UGAL-L_CR").needs_credit_delay
        for name in ("MIN", "VAL", "UGAL-L", "UGAL-G", "UGAL-L_VC", "UGAL-L_VCH"):
            assert not make_routing(name).needs_credit_delay


class TestUncongestedDecisions:
    """With empty queues every UGAL variant routes minimally."""

    @pytest.mark.parametrize("cls", [UgalL, UgalG, UgalLVc, UgalLVcH, UgalLCr])
    def test_minimal_when_idle(self, df, cls):
        algorithm = cls()
        rng = random.Random(1)
        for dst in (30, 50, 71):
            plan = algorithm.decide(ZeroCongestion(), df, rng, 0, dst)
            assert plan.minimal

    @pytest.mark.parametrize("cls", [UgalL, UgalG, UgalLVc, UgalLVcH, UgalLCr])
    def test_intra_group_always_minimal(self, df, cls):
        algorithm = cls()
        rng = random.Random(2)
        plan = algorithm.decide(ZeroCongestion(), df, rng, 0, 7)
        assert plan.minimal
        assert plan.gc1 is None


class TestUgalLDecision:
    def test_routes_nonminimally_when_minimal_port_congested(self, df):
        rng = random.Random(3)
        algorithm = UgalL()
        dst = 71
        min_port, _ = next_hop(
            df, 0, algorithm.decide(ZeroCongestion(), df, rng, 0, dst), 0, dst
        )
        view = FakeView(port_occupancy={(0, min_port): 1000})
        nonminimal_seen = False
        for _ in range(30):
            plan = algorithm.decide(view, df, rng, 0, dst)
            if not plan.minimal:
                nonminimal_seen = True
        assert nonminimal_seen

    def test_stays_minimal_when_congestion_elsewhere(self, df):
        """Occupancy on an unrelated router must not affect UGAL-L."""
        rng = random.Random(4)
        algorithm = UgalL()
        remote_router = 20
        view = FakeView(
            port_occupancy={(remote_router, port): 1000 for port in range(7)}
        )
        for _ in range(20):
            assert algorithm.decide(view, df, rng, 0, 71).minimal


class TestUgalGDecision:
    def test_reads_remote_global_channel(self, df):
        """UGAL-G reacts to congestion at the *remote* router owning the
        minimal global channel -- the information UGAL-L cannot see."""
        rng = random.Random(5)
        algorithm = UgalG()
        dst = 71
        dst_group = df.terminal_group(dst)
        occupancy = {}
        for link in df.group_links(0, dst_group):
            occupancy[(link.src_router, link.src_port)] = 1000
        view = FakeView(port_occupancy=occupancy)
        nonminimal_seen = False
        for _ in range(30):
            if not algorithm.decide(view, df, rng, 0, dst).minimal:
                nonminimal_seen = True
        assert nonminimal_seen

    def test_hop_count_weighting(self, df):
        """q_m*H_m <= q_nm*H_nm: with *equal* occupancy everywhere the
        shorter minimal path always wins (H_m < H_nm)."""
        rng = random.Random(6)
        algorithm = UgalG()
        dst = 71
        occupancy = {
            (router, port): 5
            for router in range(df.fabric.num_routers)
            for port in range(df.params.radix)
        }
        view = FakeView(port_occupancy=occupancy)
        for _ in range(30):
            assert algorithm.decide(view, df, rng, 0, dst).minimal

    def test_strict_rule_flips_on_any_imbalance(self, df):
        """The paper's rule has no minimal bias: q_m = 1 vs q_nm = 0
        already routes non-minimally (footnote 8, applied verbatim)."""
        rng = random.Random(60)
        algorithm = UgalG()
        dst = 71
        dst_group = df.terminal_group(dst)
        occupancy = {
            (link.src_router, link.src_port): 1
            for link in df.group_links(0, dst_group)
        }
        view = FakeView(port_occupancy=occupancy)
        assert any(
            not algorithm.decide(view, df, rng, 0, dst).minimal
            for _ in range(30)
        )


class TestVcDiscrimination:
    def test_vc_variant_reads_only_its_vc(self, df):
        """Congestion on VC0 (non-minimal traffic) of the shared port must
        not make UGAL-L_VC abandon the minimal route."""
        rng = random.Random(7)
        algorithm = UgalLVc()
        dst = 71
        plan = algorithm.decide(ZeroCongestion(), df, rng, 0, dst)
        min_port, min_vc = next_hop(df, 0, plan, 0, dst)
        assert min_vc == 1
        view = FakeView(vc_occupancy={(0, min_port, 0): 1000})
        for _ in range(20):
            assert algorithm.decide(view, df, rng, 0, dst).minimal

    def test_vc_variant_flips_on_minimal_vc(self, df):
        rng = random.Random(8)
        algorithm = UgalLVc()
        dst = 71
        plan = algorithm.decide(ZeroCongestion(), df, rng, 0, dst)
        min_port, _ = next_hop(df, 0, plan, 0, dst)
        view = FakeView(vc_occupancy={(0, min_port, 1): 1000})
        nonminimal_seen = any(
            not algorithm.decide(view, df, rng, 0, dst).minimal for _ in range(30)
        )
        assert nonminimal_seen

    def test_hybrid_uses_port_occupancy_when_ports_differ(self, df):
        """When candidates use different first-hop ports, UGAL-L_VCH
        compares whole ports (like UGAL-L), not single VCs."""
        rng = random.Random(9)
        hybrid = UgalLVcH()
        dst = 71
        plan = hybrid.decide(ZeroCongestion(), df, rng, 0, dst)
        min_port, _ = next_hop(df, 0, plan, 0, dst)
        # Port congested but VC1 empty: plain VC reading would stay
        # minimal; the hybrid must consider the whole port when the
        # sampled non-minimal path uses a different port.
        view = FakeView(port_occupancy={(0, min_port): 1000})
        nonminimal_seen = any(
            not hybrid.decide(view, df, rng, 0, dst).minimal for _ in range(50)
        )
        assert nonminimal_seen
