"""Tests for flattened-butterfly routing and simulation (extension)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator
from repro.network.traffic import FbAdversarial, make_pattern
from repro.routing.fb_paths import (
    FbRoutePlan,
    fb_minimal_plan,
    fb_plan_hops,
    fb_valiant_plan,
    fb_walk_route,
)
from repro.routing.fb_routing import FbUgalL, make_fb_routing
from repro.topology.flattened_butterfly import FlattenedButterfly


@pytest.fixture(scope="module")
def fb():
    return FlattenedButterfly(dims=(4, 4), concentration=4)


def _route_reaches(topology, src_terminal, dst_terminal, plan):
    src_router = topology.terminal_router(src_terminal)
    trace = fb_walk_route(topology, src_router, dst_terminal, plan)
    last_router, last_port, _ = trace[-1]
    assert last_router == topology.terminal_router(dst_terminal)
    assert last_port == topology.terminal_port(dst_terminal)
    return trace


class TestFbPlans:
    def test_minimal_is_dimension_order(self, fb):
        plan = fb_minimal_plan()
        trace = _route_reaches(fb, 0, fb.num_terminals - 1, plan)
        # 2 dimension hops + ejection.
        assert len(trace) == 3
        assert fb_plan_hops(fb, 0, fb.num_terminals - 1, plan) == 2

    def test_minimal_same_router(self, fb):
        plan = fb_minimal_plan()
        trace = _route_reaches(fb, 0, 1, plan)
        assert len(trace) == 1  # direct ejection

    def test_valiant_reaches_destination(self, fb):
        rng = random.Random(3)
        for _ in range(30):
            plan = fb_valiant_plan(fb, rng, 0, fb.num_terminals - 1)
            _route_reaches(fb, 0, fb.num_terminals - 1, plan)

    def test_valiant_hop_bound(self, fb):
        rng = random.Random(4)
        for _ in range(30):
            plan = fb_valiant_plan(fb, rng, 0, 63)
            assert fb_plan_hops(fb, 0, 63, plan) <= 2 * len(fb.dims)

    def test_valiant_degenerates_on_endpoint_draw(self, fb):
        dst_router = fb.terminal_router(63)
        plan = fb_valiant_plan(fb, random.Random(5), 0, 63,
                               intermediate_router=dst_router)
        assert plan.minimal

    def test_vcs_escalate_at_intermediate(self, fb):
        plan = fb_valiant_plan(fb, random.Random(6), 0, 63,
                               intermediate_router=5)
        trace = fb_walk_route(fb, 0, 63, plan)
        vcs_used = [vc for _, port, vc in trace[:-1]]
        assert vcs_used == sorted(vcs_used)
        assert set(vcs_used) <= {0, 1}


class TestFbUgal:
    def test_idle_network_routes_minimally(self, fb):
        from repro.routing.base import ZeroCongestion

        algorithm = FbUgalL()
        rng = random.Random(7)
        for dst in (10, 40, 63):
            assert algorithm.decide(ZeroCongestion(), fb, rng, 0, dst).minimal

    def test_factory(self):
        for name in ("FB-MIN", "FB-VAL", "FB-UGAL-L"):
            assert make_fb_routing(name).name == name
        with pytest.raises(ValueError):
            make_fb_routing("FB-UGAL-G")


class TestFbAdversarialPattern:
    def test_targets_next_router_in_dim(self, fb):
        pattern = FbAdversarial(fb, seed=8)
        src_router = fb.terminal_router(0)
        dst_router = fb.terminal_router(pattern(0))
        src_coords, dst_coords = fb.coords_of(src_router), fb.coords_of(dst_router)
        assert dst_coords[-1] == (src_coords[-1] + 1) % fb.dims[-1]
        assert dst_coords[:-1] == src_coords[:-1]

    def test_rejects_non_fb(self, paper72_dragonfly):
        with pytest.raises(TypeError):
            FbAdversarial(paper72_dragonfly)


class TestFbSimulation:
    def _run(self, fb, name, pattern_name, load, drain=6000):
        config = SimulationConfig(
            load=load, warmup_cycles=500, measure_cycles=500,
            drain_max_cycles=drain,
        )
        pattern = make_pattern(pattern_name, fb, seed=11)
        return Simulator(fb, make_fb_routing(name), pattern, config).run()

    def test_all_algorithms_drain_uniform(self, fb):
        for name in ("FB-MIN", "FB-VAL", "FB-UGAL-L"):
            result = self._run(fb, name, "uniform_random", 0.3)
            assert result.drained, name

    def test_min_adversarial_caps_at_1_over_c(self, fb):
        """DOR funnels a router's c terminals onto one channel."""
        result = self._run(fb, "FB-MIN", "fb_adversarial", 0.4, drain=1000)
        assert result.accepted_load == pytest.approx(1 / fb.concentration, rel=0.2)

    def test_ugal_survives_adversarial(self, fb):
        result = self._run(fb, "FB-UGAL-L", "fb_adversarial", 0.4)
        assert result.drained
        assert result.avg_latency < 30

    def test_local_information_is_direct_on_fb(self, fb):
        """The dragonfly paper's contrast: on the FB the congested
        channel sits on the source router, so UGAL-L adapts without the
        dragonfly's intermediate-latency pathology."""
        ugal = self._run(fb, "FB-UGAL-L", "fb_adversarial", 0.35)
        val = self._run(fb, "FB-VAL", "fb_adversarial", 0.35)
        assert ugal.avg_latency < 2 * val.avg_latency

    def test_invariants(self, fb):
        config = SimulationConfig(
            load=0.4, warmup_cycles=300, measure_cycles=300,
            drain_max_cycles=3000,
        )
        pattern = make_pattern("fb_adversarial", fb, seed=12)
        simulator = Simulator(fb, make_fb_routing("FB-UGAL-L"), pattern, config)
        simulator.run()
        simulator.check_invariants()


@given(
    src=st.integers(min_value=0, max_value=63),
    dst=st.integers(min_value=0, max_value=63),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=60, deadline=None)
def test_fb_any_route_reaches(src, dst, seed):
    """Property: every FB plan terminates at its destination."""
    fb = FlattenedButterfly(dims=(4, 4), concentration=4)
    rng = random.Random(seed)
    plan = fb_valiant_plan(fb, rng, fb.terminal_router(src), dst)
    trace = fb_walk_route(fb, fb.terminal_router(src), dst, plan)
    last_router, last_port, _ = trace[-1]
    assert last_router == fb.terminal_router(dst)
    assert last_port == fb.terminal_port(dst)
