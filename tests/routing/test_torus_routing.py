"""Tests for torus routing (dateline DOR and Valiant, extension)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator
from repro.network.traffic import TorusTornado, make_pattern
from repro.routing.torus_routing import (
    make_torus_routing,
    torus_minimal_plan,
    torus_valiant_plan,
    torus_walk_route,
)
from repro.topology.torus import Torus


@pytest.fixture(scope="module")
def torus():
    return Torus(dims=(4, 4), concentration=2)


def _route_reaches(topology, src_terminal, dst_terminal, plan):
    src_router = topology.terminal_router(src_terminal)
    trace = torus_walk_route(topology, src_router, dst_terminal, plan)
    last_router, last_port, _ = trace[-1]
    assert last_router == topology.terminal_router(dst_terminal)
    assert last_port == topology.terminal_port(dst_terminal)
    return trace


class TestDatelineDor:
    def test_reaches_all_destinations(self, torus):
        plan = torus_minimal_plan()
        for dst in range(torus.num_terminals):
            _route_reaches(torus, 0, dst, plan)

    def test_hop_count_is_ring_distance(self, torus):
        plan = torus_minimal_plan()
        for dst in range(0, torus.num_terminals, 3):
            trace = _route_reaches(torus, 0, dst, plan)
            assert len(trace) - 1 == torus.minimal_hop_count(0, dst)

    def test_takes_shorter_ring_direction(self, torus):
        """0 -> coordinate 3 in a size-4 ring wraps backwards (1 hop)."""
        plan = torus_minimal_plan()
        dst_router = torus.router_at((3, 0))
        trace = _route_reaches(torus, 0, dst_router * 2, plan)
        assert len(trace) - 1 == 1

    def test_wrapping_hop_uses_dateline_vc(self, torus):
        plan = torus_minimal_plan()
        dst_router = torus.router_at((3, 0))  # one hop backwards, wraps
        trace = _route_reaches(torus, 0, dst_router * 2, plan)
        (router, port, vc) = trace[0]
        assert vc == 1

    def test_non_wrapping_route_stays_on_vc0(self, torus):
        plan = torus_minimal_plan()
        dst_router = torus.router_at((1, 1))
        trace = _route_reaches(torus, 0, dst_router * 2, plan)
        for _, port, vc in trace[:-1]:
            assert vc == 0

    def test_vc_resets_between_dimensions(self, torus):
        """Wrap in dim 0, then a fresh dim-1 traversal starts on VC0."""
        plan = torus_minimal_plan()
        dst_router = torus.router_at((3, 1))
        trace = _route_reaches(torus, 0, dst_router * 2, plan)
        vcs = [vc for _, port, vc in trace[:-1]]
        assert vcs[0] == 1  # dim-0 wrap
        assert vcs[1] == 0  # dim-1 fresh


class TestTorusValiant:
    def test_reaches_destination(self, torus):
        rng = random.Random(5)
        for _ in range(40):
            plan = torus_valiant_plan(torus, rng, 0, 31)
            _route_reaches(torus, 0, 31, plan)

    def test_vcs_partition_by_phase(self, torus):
        plan = torus_valiant_plan(
            torus, random.Random(6), 0, 30, intermediate_router=9
        )
        trace = torus_walk_route(torus, 0, 30, plan)
        phase = 0
        for router, port, vc in trace[:-1]:
            if vc >= 2:
                phase = 1
            if phase == 0:
                assert vc < 2
            else:
                assert vc >= 2

    def test_degenerates_on_endpoint_draw(self, torus):
        plan = torus_valiant_plan(
            torus, random.Random(7), 0, 31, intermediate_router=0
        )
        assert plan.minimal


class TestTornadoPattern:
    def test_offset_is_half_ring(self, torus):
        pattern = TorusTornado(torus, seed=8)
        src_router = torus.terminal_router(0)
        dst_router = torus.terminal_router(pattern(0))
        src_coords, dst_coords = torus.coords_of(src_router), torus.coords_of(dst_router)
        assert dst_coords[0] == (src_coords[0] + 1) % 4  # (4-1)//2 = 1
        assert dst_coords[1:] == src_coords[1:]

    def test_rejects_non_torus(self, paper72_dragonfly):
        with pytest.raises(TypeError):
            TorusTornado(paper72_dragonfly)


class TestTorusSimulation:
    def _run(self, torus, name, pattern_name, load):
        config = SimulationConfig(
            load=load, warmup_cycles=400, measure_cycles=400,
            drain_max_cycles=6000, num_vcs=4,
        )
        pattern = make_pattern(pattern_name, torus, seed=9)
        return Simulator(torus, make_torus_routing(name), pattern, config).run()

    def test_dor_drains_uniform(self, torus):
        result = self._run(torus, "TORUS-DOR", "uniform_random", 0.2)
        assert result.drained

    def test_valiant_drains(self, torus):
        result = self._run(torus, "TORUS-VAL", "uniform_random", 0.15)
        assert result.drained

    def test_factory(self):
        assert make_torus_routing("TORUS-DOR").name == "TORUS-DOR"
        with pytest.raises(ValueError):
            make_torus_routing("TORUS-UGAL")

    def test_invariants(self, torus):
        config = SimulationConfig(
            load=0.3, warmup_cycles=300, measure_cycles=300,
            drain_max_cycles=3000, num_vcs=4,
        )
        pattern = make_pattern("torus_tornado", torus, seed=10)
        simulator = Simulator(torus, make_torus_routing("TORUS-DOR"), pattern, config)
        simulator.run()
        simulator.check_invariants()


@given(
    src=st.integers(min_value=0, max_value=31),
    dst=st.integers(min_value=0, max_value=31),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=50, deadline=None)
def test_torus_any_route_reaches(src, dst, seed):
    torus = Torus(dims=(4, 4), concentration=2)
    rng = random.Random(seed)
    plan = torus_valiant_plan(torus, rng, torus.terminal_router(src), dst)
    trace = torus_walk_route(torus, torus.terminal_router(src), dst, plan)
    last_router, last_port, _ = trace[-1]
    assert last_router == torus.terminal_router(dst)
    assert last_port == torus.terminal_port(dst)
