"""Tests for routing on Figure 6 group-variant dragonflies."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator
from repro.network.traffic import make_pattern
from repro.routing.variant_paths import (
    variant_minimal_plan,
    variant_plan_hops,
    variant_valiant_plan,
    variant_walk_route,
)
from repro.routing.variant_routing import make_variant_routing
from repro.topology.group_variants import FlattenedButterflyGroupDragonfly


@pytest.fixture(scope="module")
def cube_df():
    """Figure 6(b): 2x2x2 cube groups, p=h=2, k'=32, g=17, N=272."""
    return FlattenedButterflyGroupDragonfly(p=2, group_dims=(2, 2, 2), h=2)


def _route_reaches(topology, src_terminal, dst_terminal, plan):
    src_router = topology.terminal_router(src_terminal)
    trace = variant_walk_route(topology, src_router, dst_terminal, plan)
    last_router, last_port, _ = trace[-1]
    assert last_router == topology.terminal_router(dst_terminal)
    assert last_port == topology.terminal_port(dst_terminal)
    return trace


class TestVariantPlans:
    def test_minimal_reaches_cross_group(self, cube_df):
        rng = random.Random(1)
        plan = variant_minimal_plan(cube_df, rng, 0, cube_df.num_terminals - 1)
        trace = _route_reaches(cube_df, 0, cube_df.num_terminals - 1, plan)
        # <= 3 local + 1 global + <= 3 local + ejection.
        assert len(trace) <= 8

    def test_minimal_single_global_hop(self, cube_df):
        rng = random.Random(2)
        plan = variant_minimal_plan(cube_df, rng, 0, cube_df.num_terminals - 1)
        assert plan.num_global_hops == 1

    def test_intra_group_route(self, cube_df):
        rng = random.Random(3)
        plan = variant_minimal_plan(cube_df, rng, 0, 15)  # same group
        assert plan.gc1 is None
        trace = _route_reaches(cube_df, 0, 15, plan)
        assert len(trace) - 1 <= 3  # DOR in a 2x2x2 cube

    def test_valiant_reaches(self, cube_df):
        rng = random.Random(4)
        for _ in range(25):
            plan = variant_valiant_plan(cube_df, rng, 0, 260)
            _route_reaches(cube_df, 0, 260, plan)

    def test_plan_hops_match_trace(self, cube_df):
        rng = random.Random(5)
        for dst in (17, 100, 260):
            plan = variant_valiant_plan(cube_df, rng, 0, dst)
            trace = variant_walk_route(cube_df, 0, dst, plan)
            assert variant_plan_hops(cube_df, 0, dst, plan) == len(trace) - 1

    def test_vcs_nondecreasing(self, cube_df):
        rng = random.Random(6)
        for _ in range(25):
            plan = variant_valiant_plan(cube_df, rng, 0, 260)
            trace = variant_walk_route(cube_df, 0, 260, plan)
            vcs_used = [vc for _, port, vc in trace[:-1]]
            assert vcs_used == sorted(vcs_used)


class TestVariantSimulation:
    def _run(self, topology, name, pattern_name, load, drain=8000):
        config = SimulationConfig(
            load=load, warmup_cycles=400, measure_cycles=400,
            drain_max_cycles=drain,
        )
        pattern = make_pattern(pattern_name, topology, seed=7)
        return Simulator(
            topology, make_variant_routing(name), pattern, config
        ).run()

    def test_min_wc_caps_at_1_over_ah(self, cube_df):
        """a=8, h=2: the Figure 6(b) network's MIN bound is 1/16."""
        result = self._run(cube_df, "VAR-MIN", "worst_case", 0.2, drain=800)
        assert result.accepted_load == pytest.approx(1 / 16, rel=0.2)

    def test_valiant_survives_wc(self, cube_df):
        result = self._run(cube_df, "VAR-VAL", "worst_case", 0.15)
        assert result.drained
        assert result.avg_latency < 20

    def test_ugal_adapts(self, cube_df):
        result = self._run(cube_df, "VAR-UGAL-L", "worst_case", 0.15)
        assert result.drained

    def test_uniform_all_algorithms(self, cube_df):
        for name in ("VAR-MIN", "VAR-VAL", "VAR-UGAL-L"):
            result = self._run(cube_df, name, "uniform_random", 0.2)
            assert result.drained, name

    def test_factory(self):
        assert make_variant_routing("VAR-MIN").name == "VAR-MIN"
        with pytest.raises(ValueError):
            make_variant_routing("VAR-UGAL-G")

    def test_invariants(self, cube_df):
        config = SimulationConfig(
            load=0.2, warmup_cycles=300, measure_cycles=300,
            drain_max_cycles=3000,
        )
        pattern = make_pattern("worst_case", cube_df, seed=8)
        simulator = Simulator(
            cube_df, make_variant_routing("VAR-UGAL-L"), pattern, config
        )
        simulator.run()
        simulator.check_invariants()


_PROPERTY_TOPOLOGY = FlattenedButterflyGroupDragonfly(
    p=2, group_dims=(2, 2, 2), h=2
)


@given(
    src=st.integers(min_value=0, max_value=271),
    dst=st.integers(min_value=0, max_value=271),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_variant_any_route_reaches(src, dst, seed):
    topology = _PROPERTY_TOPOLOGY
    rng = random.Random(seed)
    plan = variant_valiant_plan(topology, rng, topology.terminal_router(src), dst)
    trace = variant_walk_route(topology, topology.terminal_router(src), dst, plan)
    last_router, last_port, _ = trace[-1]
    assert last_router == topology.terminal_router(dst)
    assert last_port == topology.terminal_port(dst)
