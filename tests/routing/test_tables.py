"""Unit coverage of the forwarding-table compiler and executor.

The exhaustive table-vs-algorithmic equivalence lives in the property
suite (``test_table_property.py``) and the verifier tests; here we pin
the table container's contracts (conflict detection, via selection,
serialisation) and the fault model's behaviour.
"""

import pytest

from repro.core.params import DragonflyParams, TopologyError
from repro.routing import vc_assignment as vcs
from repro.routing.tables import (
    DegradedDragonflyLowering,
    DragonflyLowering,
    ForwardingTables,
    Leg,
    TableCompileError,
    TableEntry,
    TableRouteError,
    compile_dragonfly_tables,
    table_walk_route,
)
from repro.topology.dragonfly import Dragonfly
from repro.topology.faults import NO_FAULTS, FaultSet


@pytest.fixture(scope="module")
def tiny():
    return Dragonfly(DragonflyParams(p=1, a=2, h=1))


@pytest.fixture(scope="module")
def paper72():
    return Dragonfly(DragonflyParams.paper_example_72())


class TestForwardingTablesContainer:
    def make(self, num_vcs=3):
        return ForwardingTables("t", "dragonfly", num_vcs, num_routers=4)

    def test_duplicate_adds_collapse(self):
        tables = self.make()
        entry = TableEntry(out_port=1, out_vc=0)
        tables.add(0, (0, 1, 0), entry)
        tables.add(0, (0, 1, 0), TableEntry(out_port=1, out_vc=0))
        assert tables.num_entries() == 1

    def test_conflicting_entry_raises(self):
        tables = self.make()
        tables.add(0, (0, 1, 0), TableEntry(out_port=1, out_vc=0))
        with pytest.raises(TableCompileError, match="conflicting"):
            tables.add(0, (0, 1, 0), TableEntry(out_port=2, out_vc=0))

    def test_vc_budget_enforced_on_out_vc_and_next_vc(self):
        tables = self.make(num_vcs=2)
        with pytest.raises(TableCompileError, match="VC budget"):
            tables.add(0, (0, 1, 0), TableEntry(out_port=1, out_vc=2))
        with pytest.raises(TableCompileError, match="VC budget"):
            tables.add(0, (0, 1, 0), TableEntry(out_port=1, out_vc=0, next_vc=5))

    def test_missing_key_raises_route_error(self):
        with pytest.raises(TableRouteError, match="no entry"):
            self.make().lookup(0, (0, 1, 0))

    def test_multi_candidate_needs_via(self):
        tables = self.make()
        tables.add(0, (1, 2, 0), TableEntry(out_port=3, out_vc=0, via=("link", 0, 3)))
        tables.add(0, (1, 2, 0), TableEntry(out_port=4, out_vc=0, via=("link", 0, 4)))
        with pytest.raises(TableRouteError, match="candidates"):
            tables.lookup(0, (1, 2, 0))
        entry = tables.lookup(0, (1, 2, 0), {("link", 0, 4)})
        assert entry.out_port == 4

    def test_single_candidate_resolves_without_via(self):
        tables = self.make()
        tables.add(0, (1, 2, 0), TableEntry(out_port=3, out_vc=1, via=("link", 0, 3)))
        assert tables.lookup(0, (1, 2, 0)).out_port == 3

    def test_next_vc_threads_to_next_router(self):
        entry = TableEntry(out_port=1, out_vc=1, next_vc=0)
        assert entry.in_vc_at_next == 0
        assert TableEntry(out_port=1, out_vc=1).in_vc_at_next == 1


class TestSerialisation:
    def test_round_trip_is_exact(self, tiny, tmp_path):
        tables = compile_dragonfly_tables(tiny)
        path = tmp_path / "tables.json"
        tables.dump(str(path))
        restored = ForwardingTables.load(str(path))
        assert restored == tables
        assert restored.to_json_dict() == tables.to_json_dict()

    def test_unsupported_schema_version_rejected(self, tiny):
        data = compile_dragonfly_tables(tiny).to_json_dict()
        data["schema_version"] = 999
        with pytest.raises(TableCompileError, match="schema version"):
            ForwardingTables.from_json_dict(data)

    def test_walks_identical_after_round_trip(self, tiny):
        lowering = DragonflyLowering(tiny, vcs.CANONICAL, include_nonminimal=True)
        tables = lowering.compile()
        restored = ForwardingTables.from_json_dict(tables.to_json_dict())
        for case in lowering.cases():
            original = table_walk_route(
                tiny, tables, case.src_router, case.dst_terminal, case.legs
            )
            assert original == table_walk_route(
                tiny, restored, case.src_router, case.dst_terminal, case.legs
            )


class TestTableWalk:
    def test_walk_matches_algorithmic_trace(self, tiny):
        lowering = DragonflyLowering(tiny, vcs.CANONICAL, include_nonminimal=True)
        tables = lowering.compile()
        cases = list(lowering.cases())
        assert cases
        for case in cases:
            walk = table_walk_route(
                tiny, tables, case.src_router, case.dst_terminal, case.legs
            )
            assert tuple(walk) == case.algorithmic, case.label

    def test_unreachable_leg_raises(self, tiny):
        tables = compile_dragonfly_tables(tiny)
        bogus = (Leg(target_group=0, target_router=1, entry_vc=99),)
        with pytest.raises(TableRouteError):
            table_walk_route(tiny, tables, 0, 1, bogus)


class TestFaultModel:
    def test_validate_rejects_unwired_link(self, tiny):
        faults = FaultSet.of(links=[(0, 5)])
        with pytest.raises(TopologyError, match="no cable is wired"):
            faults.validate(tiny)

    def test_validate_rejects_out_of_range_router(self, tiny):
        with pytest.raises(TopologyError, match="routers 0..5"):
            FaultSet.of(routers=[99]).validate(tiny)

    def test_dead_terminals_follow_dead_routers(self, paper72):
        faults = FaultSet.of(routers=[35])
        assert faults.dead_terminals(paper72) == [70, 71]

    def test_link_dead_covers_router_faults(self):
        faults = FaultSet.of(links=[(2, 3)], routers=[7])
        assert faults.link_dead(2, 3)
        assert faults.link_dead(3, 2)
        assert faults.link_dead(7, 0)
        assert not faults.link_dead(0, 1)

    def test_describe_and_bool(self):
        assert not NO_FAULTS
        faults = FaultSet.of(links=[(3, 2)], routers=[7])
        assert bool(faults)
        assert faults.describe() == "link 2<->3, router 7"


class TestDegradedCompilation:
    def faults(self, topology):
        link = topology.group_links(0, 1)[0]
        return FaultSet.of(
            links=[(link.src_router, link.dst_router), (2, 3)],
            routers=[35],
        )

    def test_degraded_requires_minimal_base(self, paper72):
        with pytest.raises(TableCompileError, match="minimal"):
            compile_dragonfly_tables(
                paper72, include_nonminimal=True, faults=self.faults(paper72)
            )

    def test_degraded_requires_nonminimal_vcs_for_detours(self, paper72):
        with pytest.raises(TableCompileError):
            compile_dragonfly_tables(
                paper72,
                vcs.MINIMAL_TWO_VC,
                include_nonminimal=False,
                faults=self.faults(paper72),
            )

    def test_detours_recorded_and_all_cases_walk(self, paper72):
        lowering = DegradedDragonflyLowering(paper72, self.faults(paper72))
        tables = lowering.compile()
        detours = tables.meta["detours"]
        # Groups 0<->1 lost their only cable; group 8 lost two cables
        # with router 35.
        assert "0->1" in detours and "1->0" in detours
        cases = list(lowering.cases())
        assert cases
        for case in cases:
            walk = table_walk_route(
                paper72, tables, case.src_router, case.dst_terminal, case.legs
            )
            assert walk[-1][0] == paper72.terminal_router(case.dst_terminal)

    def test_no_entries_at_dead_routers(self, paper72):
        tables = DegradedDragonflyLowering(paper72, self.faults(paper72)).compile()
        assert all(router != 35 for router, _, _ in tables.entries())

    def test_healthy_compile_unchanged_by_no_faults(self, tiny):
        assert compile_dragonfly_tables(tiny, faults=NO_FAULTS) == (
            compile_dragonfly_tables(tiny)
        )
