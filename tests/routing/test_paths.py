"""Tests for route-plan construction and execution."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import DragonflyParams
from repro.routing.paths import (
    minimal_plan,
    next_hop,
    plan_hops,
    valiant_plan,
    walk_route,
)
from repro.topology.dragonfly import Dragonfly


@pytest.fixture(scope="module")
def df():
    return Dragonfly(DragonflyParams.paper_example_72())


def _route_reaches(topology, src_terminal, dst_terminal, plan):
    trace = walk_route(
        topology, topology.terminal_router(src_terminal), dst_terminal, plan
    )
    last_router, last_port, _ = trace[-1]
    assert last_router == topology.terminal_router(dst_terminal)
    assert last_port == topology.terminal_port(dst_terminal)
    return trace


class TestMinimalPlan:
    def test_reaches_destination(self, df):
        rng = random.Random(1)
        for src, dst in [(0, 71), (0, 2), (0, 1), (10, 50)]:
            plan = minimal_plan(df, rng, df.terminal_router(src), dst)
            _route_reaches(df, src, dst, plan)

    def test_at_most_one_global_hop(self, df):
        rng = random.Random(2)
        plan = minimal_plan(df, rng, df.terminal_router(0), 71)
        assert plan.num_global_hops == 1
        assert plan.minimal

    def test_intra_group_has_no_global(self, df):
        rng = random.Random(3)
        plan = minimal_plan(df, rng, df.terminal_router(0), 7)
        assert plan.gc1 is None and plan.gc2 is None

    def test_hop_count_at_most_three(self, df):
        rng = random.Random(4)
        for dst in range(8, 72, 3):
            plan = minimal_plan(df, rng, 0, dst)
            assert plan_hops(df, 0, dst, plan) <= 3

    def test_prefers_direct_global_link(self, df):
        """If the source router owns a link to the target group, use it."""
        rng = random.Random(5)
        link = df.global_links_of(0)[0]
        dst_terminal = link.dst_group * df.params.terminals_per_group
        plan = minimal_plan(df, rng, 0, dst_terminal)
        assert plan.gc1.src_router == 0


class TestValiantPlan:
    def test_reaches_destination(self, df):
        rng = random.Random(6)
        for src, dst in [(0, 71), (3, 40), (20, 60)]:
            plan = valiant_plan(df, rng, df.terminal_router(src), dst)
            _route_reaches(df, src, dst, plan)

    def test_uses_up_to_two_global_hops(self, df):
        rng = random.Random(7)
        seen_two = False
        for _ in range(50):
            plan = valiant_plan(df, rng, 0, 71)
            assert plan.num_global_hops <= 2
            seen_two = seen_two or plan.num_global_hops == 2
        assert seen_two

    def test_degenerates_to_minimal_via_destination_group(self, df):
        rng = random.Random(8)
        dst_group = df.terminal_group(71)
        plan = valiant_plan(df, rng, 0, 71, intermediate_group=dst_group)
        assert plan.minimal

    def test_rejects_source_group_intermediate(self, df):
        rng = random.Random(9)
        with pytest.raises(ValueError):
            valiant_plan(df, rng, 0, 71, intermediate_group=0)

    def test_intermediate_group_respected(self, df):
        rng = random.Random(10)
        plan = valiant_plan(df, rng, 0, 71, intermediate_group=4)
        assert plan.gc1.dst_group == 4

    def test_hop_count_at_most_five(self, df):
        rng = random.Random(11)
        for _ in range(30):
            plan = valiant_plan(df, rng, 0, 71)
            assert plan_hops(df, 0, 71, plan) <= 5


class TestNextHopVcs:
    def test_minimal_vcs(self, df):
        rng = random.Random(12)
        plan = minimal_plan(df, rng, 0, 71)
        trace = _route_reaches(df, 0, 71, plan)
        vcs_used = [vc for router, port, vc in trace if not df.is_terminal_port(port)]
        # Local hops 1 then 2, global on 1 (subsequence of [1, 1, 2]).
        assert all(vc in (1, 2) for vc in vcs_used)
        assert vcs_used == sorted(vcs_used)

    def test_nonminimal_vcs_nondecreasing(self, df):
        rng = random.Random(13)
        for _ in range(20):
            plan = valiant_plan(df, rng, 0, 71)
            trace = walk_route(df, 0, 71, plan)
            vcs_used = [
                vc for router, port, vc in trace if not df.is_terminal_port(port)
            ]
            assert vcs_used == sorted(vcs_used)

    def test_ejection_hop(self, df):
        rng = random.Random(14)
        plan = minimal_plan(df, rng, df.terminal_router(5), 5)
        port, vc = next_hop(df, df.terminal_router(5), plan, 0, 5)
        assert df.is_terminal_port(port)
        assert port == df.terminal_port(5)


@given(
    src=st.integers(min_value=0, max_value=71),
    dst=st.integers(min_value=0, max_value=71),
    seed=st.integers(min_value=0, max_value=2**16),
    use_valiant=st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_any_route_terminates_and_reaches(src, dst, seed, use_valiant):
    """Property: every plan reaches its destination within hop bounds."""
    topology = Dragonfly(DragonflyParams.paper_example_72())
    rng = random.Random(seed)
    src_router = topology.terminal_router(src)
    if use_valiant:
        plan = valiant_plan(topology, rng, src_router, dst)
        bound = 5
    else:
        plan = minimal_plan(topology, rng, src_router, dst)
        bound = 3
    trace = walk_route(topology, src_router, dst, plan)
    assert len(trace) - 1 <= bound  # channel hops exclude the ejection
    last_router, last_port, _ = trace[-1]
    assert last_router == topology.terminal_router(dst)
    assert last_port == topology.terminal_port(dst)
    assert plan_hops(topology, src_router, dst, plan) == len(trace) - 1
