"""Tests for folded-Clos up*/down* routing (extension)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator
from repro.network.traffic import make_pattern
from repro.routing.clos_routing import (
    clos_plan,
    clos_walk_route,
    make_clos_routing,
)
from repro.topology.folded_clos import FoldedClos


@pytest.fixture(scope="module")
def clos():
    return FoldedClos(num_terminals=64, radix=8)


def _route_reaches(topology, src_terminal, dst_terminal, plan):
    src_router = topology.terminal_router(src_terminal)
    trace = clos_walk_route(topology, src_router, dst_terminal, plan)
    last_router, last_port, _ = trace[-1]
    assert last_router == topology.terminal_router(dst_terminal)
    assert last_port == topology.terminal_port(dst_terminal)
    return trace


class TestAncestorLevel:
    def test_same_leaf_zero(self, clos):
        assert clos.ancestor_level(0, 0) == 0

    def test_adjacent_leaves(self, clos):
        assert clos.ancestor_level(0, 1) == 1

    def test_far_leaves_full_height(self, clos):
        assert clos.ancestor_level(0, clos.switches_per_level - 1) == clos.levels - 1


class TestClosPlans:
    def test_same_leaf_ejects_directly(self, clos):
        rng = random.Random(1)
        plan = clos_plan(clos, rng, clos.terminal_router(0), 1)
        trace = _route_reaches(clos, 0, 1, plan)
        assert len(trace) == 1

    def test_route_length_is_twice_ancestor(self, clos):
        rng = random.Random(2)
        for dst in (2, 17, 63):
            src_router = clos.terminal_router(0)
            plan = clos_plan(clos, rng, src_router, dst)
            trace = _route_reaches(clos, 0, dst, plan)
            assert len(trace) - 1 == 2 * plan.ancestor_level
            assert len(trace) - 1 == clos.minimal_hop_count(0, dst)

    def test_all_destinations_reachable_random(self, clos):
        rng = random.Random(3)
        for dst in range(clos.num_terminals):
            plan = clos_plan(clos, rng, clos.terminal_router(5), dst)
            _route_reaches(clos, 5, dst, plan)

    def test_all_destinations_reachable_deterministic(self, clos):
        for dst in range(clos.num_terminals):
            plan = clos_plan(
                clos, None, clos.terminal_router(5), dst, deterministic=True
            )
            _route_reaches(clos, 5, dst, plan)

    def test_single_vc_suffices(self, clos):
        rng = random.Random(4)
        plan = clos_plan(clos, rng, clos.terminal_router(0), 63)
        trace = clos_walk_route(clos, clos.terminal_router(0), 63, plan)
        assert all(vc == 0 for _, _, vc in trace)

    def test_up_then_down_never_up_again(self, clos):
        rng = random.Random(5)
        plan = clos_plan(clos, rng, clos.terminal_router(0), 63)
        trace = clos_walk_route(clos, clos.terminal_router(0), 63, plan)
        levels = [clos.level_of(router) for router, _, _ in trace]
        peak = levels.index(max(levels))
        assert levels[:peak + 1] == sorted(levels[:peak + 1])
        assert levels[peak:] == sorted(levels[peak:], reverse=True)


class TestClosSimulation:
    def _run(self, clos, name, pattern_name, load):
        config = SimulationConfig(
            load=load, warmup_cycles=400, measure_cycles=400,
            drain_max_cycles=8000,
        )
        pattern = make_pattern(pattern_name, clos, seed=6)
        return Simulator(clos, make_clos_routing(name), pattern, config).run()

    def test_random_up_is_load_balanced(self, clos):
        result = self._run(clos, "CLOS-RAND", "uniform_random", 0.5)
        assert result.drained
        assert result.avg_latency < 15

    def test_deterministic_up_congests(self, clos):
        """d-mod-k up-routing concentrates load: same traffic, far worse
        latency -- the motivation for randomised/adaptive up-routing."""
        rand = self._run(clos, "CLOS-RAND", "shift", 0.3)
        det = self._run(clos, "CLOS-DET", "shift", 0.3)
        assert det.avg_latency > 3 * rand.avg_latency

    def test_factory(self):
        assert make_clos_routing("CLOS-RAND").name == "CLOS-RAND"
        with pytest.raises(ValueError):
            make_clos_routing("CLOS-UGAL")

    def test_invariants(self, clos):
        config = SimulationConfig(
            load=0.4, warmup_cycles=300, measure_cycles=300,
            drain_max_cycles=3000,
        )
        pattern = make_pattern("uniform_random", clos, seed=7)
        simulator = Simulator(clos, make_clos_routing("CLOS-RAND"), pattern, config)
        simulator.run()
        simulator.check_invariants()


_PROPERTY_CLOS = FoldedClos(num_terminals=64, radix=8)


@given(
    src=st.integers(min_value=0, max_value=63),
    dst=st.integers(min_value=0, max_value=63),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=60, deadline=None)
def test_clos_any_route_reaches(src, dst, seed):
    clos = _PROPERTY_CLOS
    rng = random.Random(seed)
    plan = clos_plan(clos, rng, clos.terminal_router(src), dst)
    trace = clos_walk_route(clos, clos.terminal_router(src), dst, plan)
    last_router, last_port, _ = trace[-1]
    assert last_router == clos.terminal_router(dst)
    assert last_port == clos.terminal_port(dst)
