"""Tests for the shared Fabric wiring representation."""

import pytest

from repro.topology.base import ChannelKind, Fabric, PortRef


def two_router_fabric():
    fabric = Fabric(num_routers=2)
    fabric.add_terminal(router=0, port=0)
    fabric.add_terminal(router=1, port=0)
    fabric.connect(PortRef(0, 1), PortRef(1, 1), ChannelKind.LOCAL, latency=3)
    return fabric


class TestConstruction:
    def test_connect_creates_both_directions(self):
        fabric = two_router_fabric()
        assert fabric.num_channels == 2
        forward = fabric.out_channel(0, 1)
        backward = fabric.out_channel(1, 1)
        assert forward.dst == PortRef(1, 1)
        assert backward.dst == PortRef(0, 1)
        assert forward.latency == backward.latency == 3

    def test_port_collision_rejected(self):
        fabric = two_router_fabric()
        with pytest.raises(ValueError):
            fabric.connect(PortRef(0, 1), PortRef(1, 2), ChannelKind.LOCAL)

    def test_terminal_port_collision_rejected(self):
        fabric = two_router_fabric()
        with pytest.raises(ValueError):
            fabric.add_terminal(router=0, port=0)

    def test_self_loop_rejected(self):
        fabric = Fabric(num_routers=2)
        with pytest.raises(ValueError):
            fabric.connect(PortRef(0, 0), PortRef(0, 1), ChannelKind.LOCAL)

    def test_router_out_of_range(self):
        fabric = Fabric(num_routers=2)
        with pytest.raises(ValueError):
            fabric.add_terminal(router=5, port=0)

    def test_needs_at_least_one_router(self):
        with pytest.raises(ValueError):
            Fabric(num_routers=0)


class TestQueries:
    def test_radix_counts_all_wired_ports(self):
        fabric = two_router_fabric()
        assert fabric.radix(0) == 2  # one terminal + one channel

    def test_terminal_lookup(self):
        fabric = two_router_fabric()
        assert fabric.is_terminal_port(0, 0)
        assert not fabric.is_terminal_port(0, 1)
        assert fabric.terminal_at(0, 0).index == 0
        assert fabric.terminal_at(0, 1) is None

    def test_out_channel_none_for_terminal_port(self):
        fabric = two_router_fabric()
        assert fabric.out_channel(0, 0) is None

    def test_neighbors(self):
        fabric = two_router_fabric()
        assert fabric.neighbors(0) == [1]

    def test_num_cables_by_kind(self):
        fabric = two_router_fabric()
        assert fabric.num_cables() == 1
        assert fabric.num_cables(ChannelKind.LOCAL) == 1
        assert fabric.num_cables(ChannelKind.GLOBAL) == 0

    def test_bidirectional_links_pairs_forward_backward(self):
        fabric = two_router_fabric()
        (pair,) = list(fabric.bidirectional_links())
        forward, backward = pair
        assert forward.src == backward.dst
        assert forward.dst == backward.src


class TestGraphExport:
    def test_connectivity(self):
        fabric = two_router_fabric()
        assert fabric.is_connected()
        assert fabric.router_diameter() == 1

    def test_validate_detects_disconnection(self):
        fabric = Fabric(num_routers=3)
        fabric.connect(PortRef(0, 0), PortRef(1, 0), ChannelKind.LOCAL)
        with pytest.raises(ValueError):
            fabric.validate()

    def test_validate_passes_on_connected(self):
        two_router_fabric().validate()
