"""Tests for the dragonfly topology builder, including hypothesis
property tests over arbitrary (p, a, h, g) configurations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import DragonflyParams, TopologyError
from repro.topology.base import ChannelKind
from repro.topology.dragonfly import Dragonfly, make_dragonfly


@st.composite
def dragonfly_params(draw, max_routers: int = 60):
    """Hypothesis strategy over buildable dragonfly configurations."""
    p = draw(st.integers(min_value=1, max_value=3))
    a = draw(st.integers(min_value=1, max_value=5))
    h = draw(st.integers(min_value=1, max_value=3))
    max_g = min(a * h + 1, max_routers // a)
    g = draw(st.integers(min_value=1, max_value=max(1, max_g)))
    if g > 1 and (g * a * h) % 2:
        g -= 1
    return DragonflyParams(p=p, a=a, h=h, num_groups=max(1, g))


class TestFigure5Example:
    """The concrete N=72 example of the paper's Figure 5."""

    def test_sizes(self, paper72_dragonfly):
        df = paper72_dragonfly
        assert df.num_terminals == 72
        assert df.fabric.num_routers == 36
        assert df.g == 9

    def test_every_router_has_full_radix(self, paper72_dragonfly):
        fabric = paper72_dragonfly.fabric
        for router in range(fabric.num_routers):
            assert fabric.radix(router) == 7

    def test_cable_counts(self, paper72_dragonfly):
        fabric = paper72_dragonfly.fabric
        assert fabric.num_cables(ChannelKind.LOCAL) == 9 * 6
        assert fabric.num_cables(ChannelKind.GLOBAL) == 36

    def test_each_group_pair_connected_once(self, paper72_dragonfly):
        df = paper72_dragonfly
        for group_i in range(df.g):
            for group_j in range(df.g):
                if group_i == group_j:
                    continue
                assert len(df.group_links(group_i, group_j)) == 1

    def test_router_diameter_is_three(self, paper72_dragonfly):
        assert paper72_dragonfly.fabric.router_diameter() == 3


class TestPortLayout:
    def test_port_classes(self, paper72_dragonfly):
        df = paper72_dragonfly
        assert df.is_terminal_port(0) and df.is_terminal_port(1)
        assert df.is_local_port(2) and df.is_local_port(4)
        assert df.is_global_port(5) and df.is_global_port(6)

    def test_local_port_is_symmetric_channel(self, paper72_dragonfly):
        df = paper72_dragonfly
        src, dst = 0, 2  # same group
        channel = df.fabric.out_channel(src, df.local_port(src, dst))
        assert channel.dst.router == dst
        assert channel.dst.port == df.local_port(dst, src)

    def test_local_port_rejects_cross_group(self, paper72_dragonfly):
        with pytest.raises(TopologyError):
            paper72_dragonfly.local_port(0, 10)

    def test_local_port_rejects_self(self, paper72_dragonfly):
        with pytest.raises(TopologyError):
            paper72_dragonfly.local_port(3, 3)

    def test_terminal_mapping(self, paper72_dragonfly):
        df = paper72_dragonfly
        assert df.terminal_router(0) == 0
        assert df.terminal_router(2) == 1
        assert df.terminal_port(3) == 1
        assert df.terminal_group(71) == 8


class TestGlobalWiring:
    def test_global_links_consistent_with_fabric(self, paper72_dragonfly):
        df = paper72_dragonfly
        for router in range(df.fabric.num_routers):
            for link in df.global_links_of(router):
                channel = df.fabric.out_channel(link.src_router, link.src_port)
                assert channel is not None
                assert channel.kind == ChannelKind.GLOBAL
                assert channel.dst.router == link.dst_router
                assert df.group_of(channel.dst.router) == link.dst_group

    def test_each_router_has_h_global_links(self, paper72_dragonfly):
        df = paper72_dragonfly
        for router in range(df.fabric.num_routers):
            assert len(df.global_links_of(router)) == df.h

    def test_group_links_reciprocal(self, paper72_dragonfly):
        df = paper72_dragonfly
        for i in range(df.g):
            for j in range(i + 1, df.g):
                assert len(df.group_links(i, j)) == len(df.group_links(j, i))


class TestNonMaximalDragonfly:
    def test_distributed_wiring_minimum_guarantee(self):
        df = make_dragonfly(p=2, a=4, h=2, num_groups=5)
        minimum = df.params.min_channels_between_group_pairs()
        assert minimum == 2
        for i in range(df.g):
            for j in range(df.g):
                if i != j:
                    assert len(df.group_links(i, j)) >= minimum

    def test_channel_counts_balanced_within_one(self):
        df = make_dragonfly(p=2, a=4, h=2, num_groups=5)
        counts = [
            len(df.group_links(i, j))
            for i in range(df.g)
            for j in range(i + 1, df.g)
        ]
        assert max(counts) - min(counts) <= 1

    def test_all_ports_used_when_even(self):
        df = make_dragonfly(p=2, a=4, h=2, num_groups=5)
        total = sum(
            len(df.group_links(i, j))
            for i in range(df.g)
            for j in range(i + 1, df.g)
        )
        assert total == df.g * df.a * df.h // 2


class TestTapering:
    def test_tapered_network_has_fewer_global_cables(self):
        full = make_dragonfly(p=2, a=4, h=2, num_groups=5)
        tapered = Dragonfly(
            DragonflyParams(p=2, a=4, h=2, num_groups=5),
            max_channels_per_pair=1,
        )
        assert (
            tapered.fabric.num_cables(ChannelKind.GLOBAL)
            < full.fabric.num_cables(ChannelKind.GLOBAL)
        )
        for i in range(tapered.g):
            for j in range(tapered.g):
                if i != j:
                    assert len(tapered.group_links(i, j)) == 1

    def test_invalid_taper(self):
        with pytest.raises(TopologyError):
            Dragonfly(DragonflyParams(p=2, a=4, h=2), max_channels_per_pair=0)


class TestMinimalHopCount:
    def test_same_router(self, paper72_dragonfly):
        assert paper72_dragonfly.minimal_hop_count(0, 1) == 0

    def test_same_group(self, paper72_dragonfly):
        assert paper72_dragonfly.minimal_hop_count(0, 2) == 1

    def test_cross_group_at_most_three(self, paper72_dragonfly):
        df = paper72_dragonfly
        for src in range(0, df.num_terminals, 7):
            for dst in range(0, df.num_terminals, 5):
                if df.terminal_group(src) != df.terminal_group(dst):
                    assert 1 <= df.minimal_hop_count(src, dst) <= 3


@given(dragonfly_params())
@settings(max_examples=30, deadline=None)
def test_dragonfly_structure_invariants(params):
    """Property: any buildable configuration yields a consistent fabric."""
    df = Dragonfly(params)
    fabric = df.fabric
    assert fabric.num_terminals == params.num_terminals
    assert fabric.num_cables(ChannelKind.LOCAL) == params.num_local_channels
    if params.g > 1:
        # Connectivity between every pair of groups.
        for i in range(params.g):
            for j in range(params.g):
                if i != j:
                    assert df.group_links(i, j)
    # No router exceeds the radix budget.
    assert fabric.max_radix() <= params.radix
    # The router graph is connected (validated at build, re-check).
    if fabric.num_routers > 1:
        assert fabric.is_connected()


@given(dragonfly_params())
@settings(max_examples=20, deadline=None)
def test_global_diameter_is_one(params):
    """Property: minimal routes cross at most one global channel, i.e.
    every group pair is directly connected (the paper's unity global
    diameter)."""
    df = Dragonfly(params)
    for src in range(0, params.num_terminals, max(1, params.num_terminals // 10)):
        for dst in range(0, params.num_terminals, max(1, params.num_terminals // 10)):
            if src != dst:
                assert df.minimal_hop_count(src, dst) <= 3
