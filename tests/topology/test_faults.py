"""Tests for the fault model: class projection, canonical degradations,
and validation diagnostics (which must name the offending element)."""

import pytest

from repro.core.params import DragonflyParams, TopologyError
from repro.topology.dragonfly import Dragonfly
from repro.topology.faults import (
    ALL_FAULT_CLASSES,
    DEAD_LOCAL_LINK,
    DEAD_ROUTER,
    NO_FAULTS,
    SEVERED_GROUP_PAIR,
    FaultClass,
    FaultSet,
    canonical_global_faults,
)


@pytest.fixture(scope="module")
def paper72():
    return Dragonfly(DragonflyParams.paper_example_72())


class TestFaultClass:
    def test_canonical_classes(self):
        assert [cls.kind for cls in ALL_FAULT_CLASSES] == [
            "severed-group-pair", "dead-local-link", "dead-router",
        ]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault class kind"):
            FaultClass("flooded-machine-room")

    def test_describe(self):
        assert SEVERED_GROUP_PAIR.describe() == "severed-group-pair"


class TestFaultClassProjection:
    def test_no_faults_projects_to_nothing(self, paper72):
        assert NO_FAULTS.fault_classes(paper72) == ()

    def test_single_dead_cable_does_not_sever_pair_with_spares(self):
        # Non-maximal dragonfly: g=5 < a*h+1=9 wires two cables per
        # group pair, so killing one leaves the pair connected.
        topology = Dragonfly(DragonflyParams(p=2, a=4, h=2, num_groups=5))
        links = topology.group_links(0, 1)
        assert len(links) > 1
        faults = FaultSet.of(links=[(links[0].src_router, links[0].dst_router)])
        assert faults.fault_classes(topology) == ()

    def test_severed_pair_detected(self, paper72):
        links = paper72.group_links(0, 1)
        faults = FaultSet.of(
            links=[(link.src_router, link.dst_router) for link in links]
        )
        assert faults.fault_classes(paper72) == (SEVERED_GROUP_PAIR,)

    def test_router_death_can_sever_a_pair(self, paper72):
        # Kill the group-0 endpoints of every 0<->1 cable: the pair is
        # severed by router faults alone (plus dead-router, of course).
        links = paper72.group_links(0, 1)
        faults = FaultSet.of(routers={link.src_router for link in links})
        classes = faults.fault_classes(paper72)
        assert SEVERED_GROUP_PAIR in classes
        assert DEAD_ROUTER in classes

    def test_local_link_classified(self, paper72):
        faults = FaultSet.of(links=[(2, 3)])  # same group (a=4)
        assert faults.fault_classes(paper72) == (DEAD_LOCAL_LINK,)

    def test_mixed_fault_set_projects_all_classes(self, paper72):
        links = paper72.group_links(0, 1)
        faults = FaultSet.of(
            links=[(link.src_router, link.dst_router) for link in links]
            + [(8, 9)],
            routers=[35],
        )
        assert faults.fault_classes(paper72) == ALL_FAULT_CLASSES


class TestCanonicalGlobalFaults:
    def test_zero_count_is_healthy(self, paper72):
        assert not canonical_global_faults(paper72, 0)

    def test_count_k_severs_k_disjoint_pairs(self, paper72):
        faults = canonical_global_faults(paper72, 3)
        assert faults.fault_classes(paper72) == (SEVERED_GROUP_PAIR,)
        for k in range(3):
            for link in paper72.group_links(2 * k, 2 * k + 1):
                assert faults.link_dead(link.src_router, link.dst_router)
        # Disjoint pairs: other groups keep every cable.
        survivor = paper72.group_links(6, 7)[0]
        assert not faults.link_dead(survivor.src_router, survivor.dst_router)

    def test_faults_are_valid_and_kill_no_terminals(self, paper72):
        faults = canonical_global_faults(paper72, 2)
        faults.validate(paper72)
        assert faults.dead_terminals(paper72) == []

    def test_negative_count_rejected(self, paper72):
        with pytest.raises(TopologyError, match="negative"):
            canonical_global_faults(paper72, -1)

    def test_too_many_pairs_rejected(self, paper72):
        # paper-72 has g=9 groups -> at most 4 disjoint pairs.
        with pytest.raises(TopologyError, match="only 9 groups"):
            canonical_global_faults(paper72, 5)


class TestValidationMessages:
    """Errors must name the offending link/router and the fabric bound."""

    def test_router_out_of_range_named(self, paper72):
        with pytest.raises(TopologyError) as excinfo:
            FaultSet.of(routers=[99]).validate(paper72)
        message = str(excinfo.value)
        assert "router fault 99" in message
        assert "routers 0..35" in message

    def test_link_endpoint_out_of_range_named(self, paper72):
        with pytest.raises(TopologyError) as excinfo:
            FaultSet.of(links=[(3, 400)]).validate(paper72)
        message = str(excinfo.value)
        assert "link fault 3<->400" in message
        assert "router 400 does not exist" in message
        assert "routers 0..35" in message

    def test_unwired_pair_named(self, paper72):
        # Routers 0 and 5 exist but sit in different groups with no
        # direct cable between them.
        with pytest.raises(TopologyError) as excinfo:
            FaultSet.of(links=[(0, 5)]).validate(paper72)
        message = str(excinfo.value)
        assert "link fault 0<->5" in message
        assert "no cable is wired between routers 0 and 5" in message
        assert "would degrade nothing" in message

    def test_valid_fault_set_passes(self, paper72):
        link = paper72.group_links(0, 1)[0]
        FaultSet.of(
            links=[(link.src_router, link.dst_router)], routers=[7]
        ).validate(paper72)
