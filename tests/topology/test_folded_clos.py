"""Tests for the folded-Clos (fat tree) topology."""

import pytest

from repro.topology.folded_clos import FoldedClos, levels_required


class TestLevelsRequired:
    @pytest.mark.parametrize("n,radix,expected", [
        (4, 8, 1),
        (16, 8, 2),
        (64, 8, 3),
        (1024, 64, 2),
        (32768, 64, 3),
    ])
    def test_values(self, n, radix, expected):
        assert levels_required(n, radix) == expected

    def test_rejects_odd_radix(self):
        with pytest.raises(ValueError):
            levels_required(16, 7)


class TestSmallFatTree:
    def test_radix4_16_terminals(self):
        clos = FoldedClos(num_terminals=16, radix=4)
        assert clos.levels == 4
        assert clos.switches_per_level == 8
        assert clos.fabric.num_terminals == 16
        assert clos.fabric.is_connected()

    def test_radix8_64_terminals(self):
        clos = FoldedClos(num_terminals=64, radix=8)
        assert clos.levels == 3
        assert clos.num_switches == 3 * 16
        assert clos.fabric.is_connected()

    def test_radix8_16_terminals_two_levels(self):
        clos = FoldedClos(num_terminals=16, radix=8)
        assert clos.levels == 2
        assert clos.num_switches == 2 * 4
        assert clos.fabric.is_connected()

    def test_wrong_terminal_count_rejected(self):
        with pytest.raises(ValueError):
            FoldedClos(num_terminals=60, radix=8)

    def test_leaf_ports(self):
        clos = FoldedClos(num_terminals=16, radix=4)
        # Leaves have 2 terminals and 2 up channels.
        leaf = clos.switch_id(0, 0)
        assert clos.fabric.radix(leaf) == 4

    def test_top_level_uses_only_down_ports(self):
        clos = FoldedClos(num_terminals=16, radix=4)
        top = clos.switch_id(clos.levels - 1, 0)
        assert clos.fabric.radix(top) == 2

    def test_hop_counts(self):
        clos = FoldedClos(num_terminals=16, radix=4)
        assert clos.minimal_hop_count(0, 1) == 0  # same leaf
        assert clos.minimal_hop_count(0, 2) == 2  # adjacent leaf via level 1
        assert clos.minimal_hop_count(0, 15) == 2 * (clos.levels - 1)

    def test_diameter_bounded_by_levels(self):
        clos = FoldedClos(num_terminals=64, radix=8)
        assert clos.fabric.router_diameter() <= 2 * (clos.levels - 1)


class TestButterflyWiring:
    def test_every_middle_switch_fully_wired(self):
        clos = FoldedClos(num_terminals=64, radix=8)
        for index in range(clos.switches_per_level):
            switch = clos.switch_id(0, index)
            assert clos.fabric.radix(switch) == 8

    def test_no_duplicate_channels(self):
        clos = FoldedClos(num_terminals=16, radix=4)
        seen = set()
        for forward, _ in clos.fabric.bidirectional_links():
            key = (forward.src.router, forward.src.port)
            assert key not in seen
            seen.add(key)
